"""Tests for the return address stack."""

import pytest

from repro.frontend.ras import ReturnAddressStack


class TestBasicOperation:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_pop_empty_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_peek_does_not_remove(self):
        ras = ReturnAddressStack(4)
        ras.push(0x300)
        assert ras.peek() == 0x300
        assert len(ras) == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)
        assert ras.overflows == 1
        assert ras.pop() == 0x3
        assert ras.pop() == 0x2
        assert ras.pop() is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestCheckpointing:
    def test_snapshot_restore(self):
        ras = ReturnAddressStack(8)
        for addr in (0x10, 0x20, 0x30):
            ras.push(addr)
        snap = ras.snapshot()
        ras.pop()
        ras.push(0x99)
        ras.restore(snap)
        assert ras.pop() == 0x30
        assert ras.pop() == 0x20

    def test_restore_respects_capacity(self):
        ras = ReturnAddressStack(2)
        snap = (0x1, 0x2, 0x3, 0x4)
        ras.restore(snap)
        assert len(ras) == 2
        assert ras.pop() == 0x4
        assert ras.pop() == 0x3

    def test_clear(self):
        ras = ReturnAddressStack(4)
        ras.push(0x1)
        ras.clear()
        assert len(ras) == 0
        assert ras.peek() is None

    def test_counters(self):
        ras = ReturnAddressStack(4)
        ras.push(0x1)
        ras.pop()
        ras.pop()
        assert ras.pushes == 1
        assert ras.pops == 2
        assert ras.underflows == 1
