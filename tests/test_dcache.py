"""Tests for the probabilistic data-cache model."""

import pytest

from repro.backend.dcache import DataCacheModel, _hash01
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(HierarchyConfig(technology="0.09um"))


class TestHash:
    def test_deterministic(self):
        assert _hash01(123, 7) == _hash01(123, 7)

    def test_range(self):
        for i in range(200):
            assert 0.0 <= _hash01(i, 42) < 1.0

    def test_salt_changes_value(self):
        assert _hash01(5, 1) != _hash01(5, 2)

    def test_roughly_uniform(self):
        values = [_hash01(i, 3) for i in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55


class TestAccess:
    def test_hit_latency(self, hierarchy):
        model = DataCacheModel(hierarchy)
        done = []
        model.access(10, miss_probability=0.0, l2_miss_probability=0.0,
                     on_complete=done.append)
        assert done == [11]
        assert model.stats.loads == 1 and model.stats.dl1_misses == 0

    def test_miss_goes_over_bus(self, hierarchy):
        model = DataCacheModel(hierarchy, mlp_factor=1.0)
        done = []
        model.access(0, miss_probability=1.0, l2_miss_probability=0.0,
                     on_complete=done.append)
        assert not done            # waiting for the bus grant
        hierarchy.tick(0)
        assert done == [17]        # L2 latency at 0.09um
        assert model.stats.dl1_misses == 1

    def test_mlp_factor_reduces_exposed_latency(self, hierarchy):
        model = DataCacheModel(hierarchy, mlp_factor=4.0)
        done = []
        model.access(0, miss_probability=1.0, l2_miss_probability=0.0,
                     on_complete=done.append)
        hierarchy.tick(0)
        assert done == [round(17 / 4)]

    def test_l2_miss_statistics(self, hierarchy):
        model = DataCacheModel(hierarchy, mlp_factor=1.0)
        for _ in range(50):
            model.access(0, miss_probability=1.0, l2_miss_probability=1.0,
                         on_complete=lambda c: None)
        assert model.stats.l2_data_misses == 50

    def test_miss_rate_matches_probability(self, hierarchy):
        model = DataCacheModel(hierarchy)
        for _ in range(2000):
            model.access(0, miss_probability=0.25, l2_miss_probability=0.0,
                         on_complete=lambda c: None)
        assert 0.18 < model.stats.dl1_miss_rate < 0.32

    def test_deterministic_across_instances(self, hierarchy):
        a = DataCacheModel(hierarchy, seed=5)
        b = DataCacheModel(
            MemoryHierarchy(HierarchyConfig(technology="0.09um")), seed=5)
        hits_a, hits_b = [], []
        for _ in range(100):
            a.access(0, 0.3, 0.0, lambda c: hits_a.append(c))
            b.access(0, 0.3, 0.0, lambda c: hits_b.append(c))
        # Hit decisions (which accesses completed immediately) must match.
        assert len(hits_a) == len(hits_b)

    def test_invalid_mlp(self, hierarchy):
        with pytest.raises(ValueError):
            DataCacheModel(hierarchy, mlp_factor=0.5)
