"""Tests for the Fetch Directed Prefetching engine."""

import pytest

from repro.core.engine import FetchEngineConfig
from repro.core.fdp import FDPEngine
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy

from engine_harness import (
    RecordingBackend,
    block_for,
    blocks_on_distinct_lines,
    drive,
)


def make_engine(workload, l0=False, entries=4, pipelined_pb=False,
                filtering="enqueue-cache-probe", **cfg_overrides):
    hierarchy = MemoryHierarchy(HierarchyConfig(
        technology="0.045um", l1_size_bytes=4096,
        l0_size_bytes=256 if l0 else None,
    ))
    config = FetchEngineConfig(
        prebuffer_entries=entries,
        prebuffer_latency=3 if pipelined_pb else 1,
        prebuffer_pipelined=pipelined_pb,
        prefetch_filter=filtering,
        **cfg_overrides,
    )
    return FDPEngine(config, hierarchy, workload.bbdict)


def big_block(workload, min_size=4):
    index = next(i for i, b in enumerate(workload.cfg.all_blocks())
                 if b.size >= min_size)
    return block_for(workload, index)


class TestPrefetchCandidateGeneration:
    def test_uncached_lines_enter_piq(self, tiny_workload):
        engine = make_engine(tiny_workload)
        block = block_for(tiny_workload)
        engine.enqueue_block(block, 0)
        assert list(engine.piq) == block.lines(64)

    def test_filtering_drops_cached_lines(self, tiny_workload):
        engine = make_engine(tiny_workload)
        block = block_for(tiny_workload)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        assert len(engine.piq) == 0
        assert engine.stats.prefetch_source["il1"] >= 1

    def test_null_filtering_keeps_cached_lines(self, tiny_workload):
        engine = make_engine(tiny_workload, filtering="none")
        block = block_for(tiny_workload)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        assert len(engine.piq) > 0

    def test_duplicate_lines_not_enqueued_twice(self, tiny_workload):
        engine = make_engine(tiny_workload)
        block = block_for(tiny_workload)
        engine.enqueue_block(block, 0)
        engine.enqueue_block(block_for(tiny_workload), 0)
        assert len(engine.piq) == len(set(engine.piq))

    def test_piq_capacity_enforced(self, tiny_workload):
        engine = make_engine(tiny_workload, piq_entries=1)
        for block in blocks_on_distinct_lines(tiny_workload, 3):
            engine.enqueue_block(block, 0)
        assert len(engine.piq) == 1
        assert engine.piq_drops >= 1


class TestPrefetchIssueAndUse:
    def test_prefetch_lands_in_buffer(self, tiny_workload):
        engine = make_engine(tiny_workload)
        backend = RecordingBackend()
        block = big_block(tiny_workload)
        line = block.lines(64)[0]
        engine.hierarchy.l2.fill(line)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        assert engine.prefetch_buffer.contains(line)
        drive(engine, backend, 40)
        assert "PB" in backend.sources()

    def test_one_prefetch_issued_per_cycle(self, tiny_workload):
        engine = make_engine(tiny_workload, entries=8)
        for block in blocks_on_distinct_lines(tiny_workload, 4):
            engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        assert engine.stats.prefetches_issued == 1
        engine.prefetch_tick(1)
        assert engine.stats.prefetches_issued == 2

    def test_prefetch_stalls_when_buffer_full_of_inflight(self, tiny_workload):
        engine = make_engine(tiny_workload, entries=1)
        for block in blocks_on_distinct_lines(tiny_workload, 3):
            engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        engine.prefetch_tick(1)
        assert engine.stats.prefetch_buffer_stalls >= 1

    def _fetch_after_prefetch_lands(self, engine, block, cycles_for_prefetch=30):
        """Issue the prefetch for the block's first line, wait for it to
        arrive, then fetch the block.  Returns the recording back-end."""
        backend = RecordingBackend()
        line = block.lines(64)[0]
        engine.hierarchy.l2.fill(line)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        for cycle in range(cycles_for_prefetch):
            engine.hierarchy.tick(cycle)
        drive(engine, backend, 40, start_cycle=cycles_for_prefetch,
              prefetch=False)
        return backend

    def test_used_line_moves_to_l1_and_leaves_buffer(self, tiny_workload):
        engine = make_engine(tiny_workload)
        block = big_block(tiny_workload)
        line = block.lines(64)[0]
        backend = self._fetch_after_prefetch_lands(engine, block)
        assert "PB" in backend.sources()
        assert engine.hierarchy.l1.contains(line)
        assert not engine.prefetch_buffer.contains(line)

    def test_used_line_moves_to_l0_when_present(self, tiny_workload):
        engine = make_engine(tiny_workload, l0=True)
        block = big_block(tiny_workload)
        line = block.lines(64)[0]
        backend = self._fetch_after_prefetch_lands(engine, block)
        assert "PB" in backend.sources()
        assert engine.hierarchy.l0.contains(line)
        assert not engine.hierarchy.l1.contains(line)

    def test_prefetch_served_by_l1_when_probe_enabled(self, tiny_workload):
        engine = make_engine(tiny_workload, filtering="none")
        block = big_block(tiny_workload)
        line = block.lines(64)[0]
        engine.hierarchy.l1.fill(line)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        entry = engine.prefetch_buffer.get(line)
        assert entry is not None
        assert entry.valid and entry.source == "il1"


class TestFlush:
    def test_flush_clears_ftq_and_piq_keeps_buffer(self, tiny_workload):
        engine = make_engine(tiny_workload)
        block = big_block(tiny_workload)
        engine.hierarchy.l2.fill(block.lines(64)[0])
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        engine.hierarchy.tick(0)
        assert engine.prefetch_buffer.occupancy == 1
        engine.flush(1)
        assert len(engine.piq) == 0
        assert len(engine.ftq) == 0
        assert engine.prefetch_buffer.occupancy == 1

    def test_name(self, tiny_workload):
        assert make_engine(tiny_workload).name == "FDP"
        assert make_engine(tiny_workload, l0=True).name == "FDP+L0"
