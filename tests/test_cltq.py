"""Tests for the Cache Line Target Queue (cache-line granularity)."""

from repro.core.cltq import CacheLineTargetQueue
from repro.frontend.fetch_block import FetchBlock


def block(start=0x1000, length=8, **kw):
    return FetchBlock(start=start, length=length, **kw)


class TestBlockToLineExpansion:
    def test_push_splits_into_lines(self):
        cltq = CacheLineTargetQueue(capacity_blocks=8, line_size=64)
        cltq.push_block(block(0x1000 + 48, length=20))  # spans 2 lines
        assert cltq.occupancy_lines == 2
        assert cltq.occupancy_blocks == 1
        assert cltq.enqueued_lines == 2

    def test_entries_carry_prefetched_and_occupied_bits(self):
        cltq = CacheLineTargetQueue()
        cltq.push_block(block())
        entry = cltq.peek_line()
        assert not entry.prefetched
        assert entry.occupied

    def test_lines_pop_in_fetch_order(self):
        cltq = CacheLineTargetQueue(line_size=64)
        cltq.push_block(block(0x1000, length=32))  # 2 lines
        cltq.push_block(block(0x8000, length=4))
        addrs = [cltq.pop_line().line_addr for _ in range(3)]
        assert addrs == [0x1000, 0x1040, 0x8000]

    def test_pop_clears_occupied_bit(self):
        cltq = CacheLineTargetQueue()
        cltq.push_block(block())
        entry = cltq.pop_line()
        assert not entry.occupied


class TestCapacityInBlocks:
    def test_capacity_counts_blocks_not_lines(self):
        cltq = CacheLineTargetQueue(capacity_blocks=2, line_size=64)
        assert cltq.push_block(block(0x1000, length=40))   # 3 lines
        assert cltq.push_block(block(0x8000, length=40))
        assert not cltq.has_space()
        assert not cltq.push_block(block(0xF000))
        assert cltq.dropped_blocks == 1

    def test_block_residency_released_after_last_line(self):
        cltq = CacheLineTargetQueue(capacity_blocks=1, line_size=64)
        cltq.push_block(block(0x1000, length=32))  # 2 lines
        cltq.pop_line()
        assert not cltq.has_space()   # one line of the block still queued
        cltq.pop_line()
        assert cltq.has_space()

    def test_same_opportunities_as_ftq(self):
        """The CLTQ holds the same fetch blocks as an FTQ of equal capacity
        (the paper: both queues give the same prefetch opportunities)."""
        cltq = CacheLineTargetQueue(capacity_blocks=8)
        blocks = [block(0x1000 * (i + 1), length=24) for i in range(8)]
        for b in blocks:
            assert cltq.push_block(b)
        assert cltq.occupancy_blocks == 8
        queued_blocks = {e.block.block_id for e in cltq.iter_entries()}
        assert queued_blocks == {b.block_id for b in blocks}


class TestPrestagingScanHelpers:
    def test_unprefetched_entries_in_order_with_limit(self):
        cltq = CacheLineTargetQueue(line_size=64)
        cltq.push_block(block(0x1000, length=48))  # 3 lines
        entries = cltq.unprefetched_entries(limit=2)
        assert len(entries) == 2
        entries[0].prefetched = True
        remaining = cltq.unprefetched_entries()
        assert all(not e.prefetched for e in remaining)
        assert len(remaining) == 2

    def test_flush_empties_queue_and_residency(self):
        cltq = CacheLineTargetQueue(capacity_blocks=2)
        cltq.push_block(block(0x1000, length=32))
        cltq.flush()
        assert cltq.occupancy_lines == 0
        assert cltq.occupancy_blocks == 0
        assert cltq.has_space()
        assert cltq.pop_line() is None
