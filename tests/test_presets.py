"""Tests for the paper-configuration presets."""

import pytest

from repro.simulator.presets import (
    FIGURE1_SCHEMES,
    FIGURE5_SCHEMES,
    FIGURE6_SCHEMES,
    SCHEMES,
    configs_for_schemes,
    paper_config,
    scheme_descriptions,
)


class TestPaperConfig:
    def test_all_schemes_buildable(self):
        for scheme in SCHEMES:
            config = paper_config(scheme, l1_size_bytes=4096,
                                  technology="0.045um")
            assert config.derived_label() == scheme
            assert config.l1_size_bytes == 4096

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            paper_config("CLGP+L3")

    def test_base_pipelined_sets_pipelined_l1(self):
        assert paper_config("base-pipelined").l1_pipelined
        assert not paper_config("base").l1_pipelined

    def test_ideal_sets_override(self):
        assert paper_config("ideal").ideal_l1

    def test_l0_variants(self):
        assert paper_config("FDP+L0").l0_enabled
        assert not paper_config("FDP").l0_enabled
        assert paper_config("CLGP+L0").engine == "clgp"

    def test_pb16_variants_are_pipelined(self):
        for scheme in ("FDP+L0+PB16", "CLGP+L0+PB16"):
            config = paper_config(scheme)
            assert config.prebuffer_pipelined
            assert config.resolved_prebuffer_entries() == 16

    def test_overrides_pass_through(self):
        config = paper_config("CLGP+L0", max_instructions=1234,
                              clgp_free_on_use=True)
        assert config.max_instructions == 1234
        assert config.clgp_free_on_use


class TestSchemeGroups:
    def test_figure_scheme_lists_are_valid(self):
        for group in (FIGURE1_SCHEMES, FIGURE5_SCHEMES, FIGURE6_SCHEMES):
            assert set(group) <= set(SCHEMES)

    def test_figure5_has_six_configurations(self):
        assert len(FIGURE5_SCHEMES) == 6

    def test_figure6_has_three_configurations(self):
        assert len(FIGURE6_SCHEMES) == 3

    def test_configs_for_schemes(self):
        configs = configs_for_schemes(("base", "CLGP+L0"), 8192, "0.09um")
        assert [c.derived_label() for c in configs] == ["base", "CLGP+L0"]
        assert all(c.l1_size_bytes == 8192 for c in configs)

    def test_descriptions_cover_all_schemes(self):
        assert set(scheme_descriptions()) == set(SCHEMES)
