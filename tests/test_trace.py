"""Tests for dynamic execution: ProgramWalker and CorrectPathOracle."""

import pytest

from repro.workloads.isa import INSTRUCTION_BYTES, BranchKind
from repro.workloads.trace import (
    CorrectPathOracle,
    ProgramWalker,
    build_workload,
)
from repro.workloads.generator import WorkloadProfile


class TestProgramWalker:
    def test_blocks_follow_control_flow(self, tiny_workload):
        walker = ProgramWalker(tiny_workload.cfg, seed=1)
        prev = None
        for _ in range(200):
            rec = walker.next_block()
            if prev is not None:
                assert rec.addr == prev.next_addr
            prev = rec

    def test_taken_implies_target(self, tiny_workload):
        walker = ProgramWalker(tiny_workload.cfg, seed=1)
        for _ in range(300):
            rec = walker.next_block()
            if not rec.taken:
                assert rec.next_addr == rec.end_addr
            if rec.kind is BranchKind.UNCONDITIONAL:
                assert rec.taken

    def test_call_return_pairing(self, tiny_workload):
        """Returns must go back to the instruction after some earlier call."""
        walker = ProgramWalker(tiny_workload.cfg, seed=2)
        call_fallthroughs = []
        checked = 0
        for _ in range(2000):
            rec = walker.next_block()
            if rec.kind is BranchKind.CALL and rec.taken:
                call_fallthroughs.append(rec.end_addr)
            elif rec.kind is BranchKind.RETURN and rec.taken and call_fallthroughs:
                assert rec.next_addr == call_fallthroughs.pop()
                checked += 1
        assert checked > 0

    def test_deterministic_given_seed(self, tiny_workload):
        a = ProgramWalker(tiny_workload.cfg, seed=5)
        b = ProgramWalker(tiny_workload.cfg, seed=5)
        for _ in range(300):
            ra, rb = a.next_block(), b.next_block()
            assert ra == rb

    def test_instruction_counter(self, tiny_workload):
        walker = ProgramWalker(tiny_workload.cfg, seed=1)
        total = sum(walker.next_block().size for _ in range(50))
        assert walker.instructions_executed == total
        assert walker.blocks_executed == 50


class TestCorrectPathOracle:
    def _oracle(self, workload, seed=1):
        return CorrectPathOracle(ProgramWalker(workload.cfg, seed=seed))

    def test_current_address_starts_at_entry(self, tiny_workload):
        oracle = self._oracle(tiny_workload)
        assert oracle.current_address() == tiny_workload.cfg.entry_address

    def test_peek_does_not_advance(self, tiny_workload):
        oracle = self._oracle(tiny_workload)
        first = oracle.peek_stream()
        second = oracle.peek_stream()
        assert first == second
        assert oracle.consumed_instructions == 0

    def test_stream_ends_at_taken_branch_or_cap(self, tiny_workload):
        oracle = self._oracle(tiny_workload)
        for _ in range(100):
            stream = oracle.peek_stream()
            assert 1 <= stream.length <= oracle.max_stream_instructions
            if not stream.ends_taken:
                # Cap-ended streams continue sequentially.
                assert stream.next_addr == stream.end_addr
            oracle.advance(stream.length)

    def test_advance_moves_to_next_stream_start(self, tiny_workload):
        oracle = self._oracle(tiny_workload)
        stream = oracle.peek_stream()
        oracle.advance(stream.length)
        assert oracle.current_address() == stream.next_addr

    def test_partial_advance_lands_mid_stream(self, tiny_workload):
        oracle = self._oracle(tiny_workload)
        stream = oracle.peek_stream()
        if stream.length < 2:
            pytest.skip("first stream too short for a partial advance")
        oracle.advance(stream.length - 1)
        expected = stream.start + (stream.length - 1) * INSTRUCTION_BYTES
        assert oracle.current_address() == expected
        # The remainder of the stream is re-peeked from the middle.
        rest = oracle.peek_stream()
        assert rest.start == expected

    def test_streams_are_contiguous_instruction_stream(self, tiny_workload):
        oracle = self._oracle(tiny_workload)
        consumed = 0
        for _ in range(50):
            stream = oracle.peek_stream()
            oracle.advance(stream.length)
            consumed += stream.length
        assert oracle.consumed_instructions == consumed

    def test_negative_advance_rejected(self, tiny_workload):
        oracle = self._oracle(tiny_workload)
        with pytest.raises(ValueError):
            oracle.advance(-1)

    def test_max_stream_cap_respected(self, tiny_workload):
        oracle = CorrectPathOracle(
            ProgramWalker(tiny_workload.cfg, seed=3), max_stream_instructions=8
        )
        for _ in range(50):
            stream = oracle.peek_stream()
            assert stream.length <= 8
            oracle.advance(stream.length)


class TestWorkload:
    def test_build_workload(self):
        workload = build_workload(WorkloadProfile(name="w", footprint_kb=4, seed=3))
        assert workload.name == "w"
        assert workload.cfg.num_blocks > 0

    def test_new_oracle_is_reproducible(self, tiny_workload):
        a = tiny_workload.new_oracle()
        b = tiny_workload.new_oracle()
        for _ in range(50):
            sa, sb = a.peek_stream(), b.peek_stream()
            assert sa == sb
            a.advance(sa.length)
            b.advance(sb.length)
