"""Tests for the L2 bus and its arbitration policy."""

from repro.memory.bus import BusPriority, L2Bus


def collect(bus, cycle):
    """Tick once and return the grant cycle list recorded by callbacks."""
    grants = []
    bus.tick(cycle)
    return grants


class TestArbitration:
    def test_single_grant_per_cycle(self):
        bus = L2Bus()
        granted = []
        for i in range(3):
            bus.submit(BusPriority.PREFETCH, 0, lambda c, i=i: granted.append((i, c)))
        bus.tick(0)
        assert granted == [(0, 0)]
        bus.tick(1)
        bus.tick(2)
        assert granted == [(0, 0), (1, 1), (2, 2)]

    def test_priority_order(self):
        bus = L2Bus()
        order = []
        bus.submit(BusPriority.PREFETCH, 0, lambda c: order.append("prefetch"))
        bus.submit(BusPriority.INSTRUCTION_DEMAND, 0, lambda c: order.append("ifetch"))
        bus.submit(BusPriority.DATA_DEMAND, 0, lambda c: order.append("data"))
        for cycle in range(3):
            bus.tick(cycle)
        assert order == ["data", "ifetch", "prefetch"]

    def test_fifo_within_same_priority(self):
        bus = L2Bus()
        order = []
        for i in range(3):
            bus.submit(BusPriority.PREFETCH, 0, lambda c, i=i: order.append(i))
        for cycle in range(3):
            bus.tick(cycle)
        assert order == [0, 1, 2]

    def test_late_high_priority_preempts_waiting_low_priority(self):
        bus = L2Bus()
        order = []
        bus.submit(BusPriority.PREFETCH, 0, lambda c: order.append("prefetch"))
        bus.submit(BusPriority.PREFETCH, 0, lambda c: order.append("prefetch2"))
        bus.tick(0)
        # A data demand arriving later still beats the queued prefetch.
        bus.submit(BusPriority.DATA_DEMAND, 1, lambda c: order.append("data"))
        bus.tick(1)
        bus.tick(2)
        assert order == ["prefetch", "data", "prefetch2"]

    def test_multiple_grants_per_cycle_configuration(self):
        bus = L2Bus(grants_per_cycle=2)
        order = []
        for i in range(3):
            bus.submit(BusPriority.PREFETCH, 0, lambda c, i=i: order.append(i))
        assert bus.tick(0) == 2
        assert bus.tick(1) == 1


class TestCancellation:
    def test_cancelled_request_is_skipped(self):
        bus = L2Bus()
        order = []
        request = bus.submit(BusPriority.PREFETCH, 0, lambda c: order.append("a"))
        bus.submit(BusPriority.PREFETCH, 0, lambda c: order.append("b"))
        bus.cancel(request)
        bus.tick(0)
        assert order == ["b"]

    def test_pending_counts(self):
        bus = L2Bus()
        r1 = bus.submit(BusPriority.PREFETCH, 0, lambda c: None)
        bus.submit(BusPriority.DATA_DEMAND, 0, lambda c: None)
        assert bus.pending == 2
        assert bus.pending_by_priority(BusPriority.PREFETCH) == 1
        bus.cancel(r1)
        assert bus.pending == 1


class TestStats:
    def test_wait_cycles(self):
        bus = L2Bus()
        bus.submit(BusPriority.PREFETCH, 0, lambda c: None)
        bus.submit(BusPriority.PREFETCH, 0, lambda c: None)
        bus.tick(0)
        bus.tick(1)
        assert bus.stats.grants[BusPriority.PREFETCH] == 2
        assert bus.stats.total_wait_cycles[BusPriority.PREFETCH] == 1
        assert bus.stats.average_wait(BusPriority.PREFETCH) == 0.5

    def test_requests_counted(self):
        bus = L2Bus()
        bus.submit(BusPriority.DATA_DEMAND, 0, lambda c: None)
        assert bus.stats.requests[BusPriority.DATA_DEMAND] == 1

    def test_empty_tick(self):
        bus = L2Bus()
        assert bus.tick(0) == 0
        assert bus.stats.busy_cycles == 0
