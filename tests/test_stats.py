"""Tests for results aggregation (SimulationResult, harmonic means, ...)."""

import pytest

from repro.simulator.stats import (
    SimulationResult,
    aggregate_fetch_sources,
    aggregate_prefetch_sources,
    harmonic_mean,
    harmonic_mean_ipc,
    result_delta,
    speedup,
    weighted_aggregate,
)


def result(ipc_cycles=(1000, 1000), label="cfg", workload="w", **kw):
    committed, cycles = ipc_cycles
    return SimulationResult(
        config_label=label, workload=workload, cycles=cycles,
        committed_instructions=committed, **kw,
    )


class TestSimulationResult:
    def test_ipc(self):
        assert result((2000, 1000)).ipc == 2.0
        assert result((0, 0)).ipc == 0.0

    def test_misprediction_rate(self):
        r = result(streams_predicted=200, stream_mispredictions=20)
        assert r.misprediction_rate == pytest.approx(0.1)
        assert result().misprediction_rate == 0.0

    def test_fetch_source_fractions_normalised(self):
        r = result(fetch_source_instructions={"PB": 60, "il1": 40})
        fractions = r.fetch_source_fractions()
        assert fractions["PB"] == pytest.approx(0.6)
        assert fractions["il1"] == pytest.approx(0.4)
        assert fractions["Mem"] == 0.0
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fetch_source_fractions_empty(self):
        assert sum(result().fetch_source_fractions().values()) == 0.0

    def test_one_cycle_fetch_fraction(self):
        r = result(fetch_source_instructions={"PB": 50, "il0": 30, "il1": 20})
        assert r.one_cycle_fetch_fraction() == pytest.approx(0.8)

    def test_prefetch_source_fractions(self):
        r = result(prefetch_source={"PB": 25, "ul2": 75})
        assert r.prefetch_source_fractions()["ul2"] == pytest.approx(0.75)

    def test_summary_contains_key_numbers(self):
        text = result((500, 1000), label="CLGP+L0", workload="gcc").summary()
        assert "CLGP+L0" in text and "gcc" in text and "0.500" in text


class TestAggregation:
    def test_harmonic_mean_basics(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 4.0]) == pytest.approx(8 / 3)
        assert harmonic_mean([]) == 0.0
        assert harmonic_mean([1.0, 0.0]) == 0.0

    def test_harmonic_mean_below_arithmetic(self):
        values = [0.5, 1.0, 2.5]
        assert harmonic_mean(values) < sum(values) / len(values)

    def test_harmonic_mean_ipc(self):
        results = [result((1000, 1000)), result((1000, 2000))]
        assert harmonic_mean_ipc(results) == pytest.approx(harmonic_mean([1.0, 0.5]))

    def test_aggregate_fetch_sources(self):
        results = [
            result(fetch_source_instructions={"PB": 80, "il1": 20}),
            result(fetch_source_instructions={"PB": 20, "il1": 80}),
        ]
        agg = aggregate_fetch_sources(results)
        assert agg["PB"] == pytest.approx(0.5)
        assert agg["il1"] == pytest.approx(0.5)

    def test_aggregate_prefetch_sources_empty(self):
        assert sum(aggregate_prefetch_sources([result()]).values()) == 0.0

    def test_speedup(self):
        assert speedup(1.2, 1.0) == pytest.approx(0.2)
        assert speedup(1.0, 0.0) == 0.0


class TestWeightedAggregate:
    """The SimPoint-style combination used by sampled simulation."""

    def test_equal_intervals_reproduce_themselves(self):
        r = result((1000, 2000), l1_hits=100, loads=40,
                   fetch_source_lines={"il1": 10})
        combined = weighted_aggregate([r, r], [0.5, 0.5],
                                      total_instructions=2000)
        assert combined.committed_instructions == 2000
        assert combined.cycles == 4000
        assert combined.ipc == pytest.approx(r.ipc)
        assert combined.l1_hits == 200
        assert combined.loads == 80
        assert combined.fetch_source_lines == {"il1": 20}

    def test_ipc_is_weighted_harmonic_mean(self):
        fast = result((1000, 500))     # IPC 2.0
        slow = result((1000, 2000))    # IPC 0.5
        combined = weighted_aggregate([fast, slow], [0.5, 0.5],
                                      total_instructions=10_000)
        # CPI = 0.5*0.5 + 0.5*2.0 = 1.25 -> IPC 0.8
        assert combined.ipc == pytest.approx(0.8)
        assert combined.cycles == 12_500

    def test_weights_are_normalised(self):
        r = result((1000, 1000))
        a = weighted_aggregate([r, r], [1.0, 1.0], total_instructions=4000)
        b = weighted_aggregate([r, r], [0.5, 0.5], total_instructions=4000)
        assert a == b

    def test_non_additive_extras_preserved(self):
        a = result((1000, 1000), extras={"l1_latency": 3, "ruu_full_stalls": 8})
        b = result((1000, 1000), extras={"l1_latency": 3, "ruu_full_stalls": 2})
        combined = weighted_aggregate([a, b], [0.5, 0.5],
                                      total_instructions=4000)
        assert combined.extras["l1_latency"] == 3
        assert combined.extras["ruu_full_stalls"] == pytest.approx(20)

    def test_validation(self):
        r = result()
        with pytest.raises(ValueError):
            weighted_aggregate([], [])
        with pytest.raises(ValueError):
            weighted_aggregate([r], [0.5, 0.5])
        with pytest.raises(ValueError):
            weighted_aggregate([r], [-1.0])
        with pytest.raises(ValueError):
            weighted_aggregate([r, r], [0.0, 0.0])


class TestResultDelta:
    def test_difference_of_cumulative_results(self):
        before = result((1000, 1500), l1_hits=50, loads=10,
                        fetch_source_lines={"il1": 5},
                        extras={"l1_latency": 3, "commit_stall_cycles": 40})
        after = result((2500, 4000), l1_hits=140, loads=35,
                       fetch_source_lines={"il1": 12, "PB": 4},
                       extras={"l1_latency": 3, "commit_stall_cycles": 90})
        delta = result_delta(after, before)
        assert delta.committed_instructions == 1500
        assert delta.cycles == 2500
        assert delta.l1_hits == 90
        assert delta.loads == 25
        assert delta.fetch_source_lines == {"il1": 7, "PB": 4}
        assert delta.extras["commit_stall_cycles"] == 50
        assert delta.extras["l1_latency"] == 3

    def test_none_before_returns_after(self):
        r = result()
        assert result_delta(r, None) is r
