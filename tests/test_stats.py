"""Tests for results aggregation (SimulationResult, harmonic means, ...)."""

import pytest

from repro.simulator.stats import (
    SimulationResult,
    aggregate_fetch_sources,
    aggregate_prefetch_sources,
    harmonic_mean,
    harmonic_mean_ipc,
    speedup,
)


def result(ipc_cycles=(1000, 1000), label="cfg", workload="w", **kw):
    committed, cycles = ipc_cycles
    return SimulationResult(
        config_label=label, workload=workload, cycles=cycles,
        committed_instructions=committed, **kw,
    )


class TestSimulationResult:
    def test_ipc(self):
        assert result((2000, 1000)).ipc == 2.0
        assert result((0, 0)).ipc == 0.0

    def test_misprediction_rate(self):
        r = result(streams_predicted=200, stream_mispredictions=20)
        assert r.misprediction_rate == pytest.approx(0.1)
        assert result().misprediction_rate == 0.0

    def test_fetch_source_fractions_normalised(self):
        r = result(fetch_source_instructions={"PB": 60, "il1": 40})
        fractions = r.fetch_source_fractions()
        assert fractions["PB"] == pytest.approx(0.6)
        assert fractions["il1"] == pytest.approx(0.4)
        assert fractions["Mem"] == 0.0
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fetch_source_fractions_empty(self):
        assert sum(result().fetch_source_fractions().values()) == 0.0

    def test_one_cycle_fetch_fraction(self):
        r = result(fetch_source_instructions={"PB": 50, "il0": 30, "il1": 20})
        assert r.one_cycle_fetch_fraction() == pytest.approx(0.8)

    def test_prefetch_source_fractions(self):
        r = result(prefetch_source={"PB": 25, "ul2": 75})
        assert r.prefetch_source_fractions()["ul2"] == pytest.approx(0.75)

    def test_summary_contains_key_numbers(self):
        text = result((500, 1000), label="CLGP+L0", workload="gcc").summary()
        assert "CLGP+L0" in text and "gcc" in text and "0.500" in text


class TestAggregation:
    def test_harmonic_mean_basics(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 4.0]) == pytest.approx(8 / 3)
        assert harmonic_mean([]) == 0.0
        assert harmonic_mean([1.0, 0.0]) == 0.0

    def test_harmonic_mean_below_arithmetic(self):
        values = [0.5, 1.0, 2.5]
        assert harmonic_mean(values) < sum(values) / len(values)

    def test_harmonic_mean_ipc(self):
        results = [result((1000, 1000)), result((1000, 2000))]
        assert harmonic_mean_ipc(results) == pytest.approx(harmonic_mean([1.0, 0.5]))

    def test_aggregate_fetch_sources(self):
        results = [
            result(fetch_source_instructions={"PB": 80, "il1": 20}),
            result(fetch_source_instructions={"PB": 20, "il1": 80}),
        ]
        agg = aggregate_fetch_sources(results)
        assert agg["PB"] == pytest.approx(0.5)
        assert agg["il1"] == pytest.approx(0.5)

    def test_aggregate_prefetch_sources_empty(self):
        assert sum(aggregate_prefetch_sources([result()]).values()) == 0.0

    def test_speedup(self):
        assert speedup(1.2, 1.0) == pytest.approx(0.2)
        assert speedup(1.0, 0.0) == 0.0
