"""Tests for the basic-block dictionary (wrong-path static lookup)."""

from repro.workloads.bbdict import BasicBlockDictionary
from repro.workloads.isa import INSTRUCTION_BYTES, BranchKind, InstrClass


class TestViewAt:
    def test_view_at_block_start(self, tiny_workload):
        cfg = tiny_workload.cfg
        block = cfg.all_blocks()[0]
        view = tiny_workload.bbdict.view_at(block.addr)
        assert view.start == block.addr
        assert view.size == block.size
        assert view.kind == block.kind
        assert not view.synthetic

    def test_view_mid_block(self, tiny_workload):
        cfg = tiny_workload.cfg
        block = next(b for b in cfg.all_blocks() if b.size >= 3)
        mid = block.addr + INSTRUCTION_BYTES
        view = tiny_workload.bbdict.view_at(mid)
        assert view.start == mid
        assert view.size == block.size - 1
        assert view.instr_classes == tuple(block.instr_classes[1:])
        assert view.kind == block.kind

    def test_view_outside_program_is_synthetic(self, tiny_workload):
        view = tiny_workload.bbdict.view_at(0x10)
        assert view.synthetic
        assert view.kind is BranchKind.NONE
        assert view.size > 0
        assert all(c is InstrClass.ALU for c in view.instr_classes)

    def test_view_unaligned_address_is_aligned_down(self, tiny_workload):
        block = tiny_workload.cfg.all_blocks()[0]
        view = tiny_workload.bbdict.view_at(block.addr + 2)
        assert view.start == block.addr

    def test_fall_through_and_terminator(self, tiny_workload):
        block = tiny_workload.cfg.all_blocks()[0]
        view = tiny_workload.bbdict.view_at(block.addr)
        assert view.fall_through == block.end_addr
        assert view.terminator_addr == block.terminator_addr
        assert view.ends_in_branch == block.ends_in_branch

    def test_block_at_passthrough(self, tiny_workload):
        block = tiny_workload.cfg.all_blocks()[0]
        assert tiny_workload.bbdict.block_at(block.addr) is block
        assert tiny_workload.bbdict.block_at(block.addr + 4) is None

    def test_cfg_property(self, tiny_workload):
        assert tiny_workload.bbdict.cfg is tiny_workload.cfg

    def test_every_block_viewable(self, tiny_workload):
        bbdict = tiny_workload.bbdict
        for block in tiny_workload.cfg.all_blocks():
            view = bbdict.view_at(block.addr)
            assert view.size == block.size
            assert len(view.instr_classes) == view.size
