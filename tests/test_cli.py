"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "CLGP+L0", "--l1-size", "8192", "--benchmarks", "gzip"])
        assert args.scheme == "CLGP+L0"
        assert args.l1_size == 8192

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE"])


class TestCommands:
    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out
        assert "0.045um" in out

    def test_run_command_small(self, capsys):
        code = main(["run", "base", "--benchmarks", "gzip",
                     "--instructions", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "HMEAN IPC" in out

    def test_figure_command_small(self, capsys):
        code = main(["figure", "4", "--benchmarks", "gzip",
                     "--instructions", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CLGP" in out

    def test_speedups_command_small(self, capsys):
        code = main(["speedups", "--benchmarks", "gzip",
                     "--instructions", "1000"])
        assert code == 0
        assert "CLGP vs FDP" in capsys.readouterr().out

    def test_run_accepts_jobs(self, capsys):
        code = main(["run", "base", "--benchmarks", "gzip,mcf",
                     "--instructions", "800", "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        # Parallel output keeps the serial benchmark order.
        assert out.index("gzip") < out.index("mcf")

    def test_figure_accepts_jobs(self, capsys):
        code = main(["figure", "4", "--benchmarks", "gzip",
                     "--instructions", "800", "--jobs", "2"])
        assert code == 0
        assert "CLGP" in capsys.readouterr().out

    def test_negative_jobs_rejected_via_resolver(self, capsys):
        for argv in (["run", "base"], ["figure", "5"], ["speedups"]):
            code = main(argv + ["--benchmarks", "gzip",
                                "--instructions", "800", "--jobs", "-3"])
            assert code == 2
            assert "jobs" in capsys.readouterr().err

    def test_figure_sampled(self, capsys):
        code = main(["figure", "4", "--benchmarks", "gzip",
                     "--instructions", "4000", "--sampled"])
        assert code == 0
        assert "[sampled]" in capsys.readouterr().out


class TestFigure6DefaultDetection:
    """`figure 6` falls back to the full SPECint list only when the user
    did not override --benchmarks; the comparison must be on parsed lists,
    not raw strings (whitespace or trailing commas are not overrides)."""

    def _capture(self, monkeypatch):
        calls = {}

        def fake_series(session, **kwargs):
            calls.update(kwargs)
            return {"HMEAN": {}}

        from repro.api import Session
        monkeypatch.setattr(Session, "figure6_series", fake_series)
        return calls

    def test_whitespace_default_mix_means_no_override(self, monkeypatch, capsys):
        calls = self._capture(monkeypatch)
        assert main(["figure", "6", "--benchmarks", " gzip, gcc , eon,mcf,",
                     "--instructions", "500"]) == 0
        assert calls["benchmarks"] is None

    def test_reordered_mix_is_an_override(self, monkeypatch, capsys):
        calls = self._capture(monkeypatch)
        assert main(["figure", "6", "--benchmarks", "mcf,gzip,gcc,eon",
                     "--instructions", "500"]) == 0
        assert calls["benchmarks"] == ["mcf", "gzip", "gcc", "eon"]


class TestSampleCommand:
    def test_selection_table(self, capsys):
        code = main(["sample", "gzip", "--instructions", "6000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Interval selection for gzip" in out
        assert "coverage" in out
        assert "Sampled run" in out

    def test_compare_reports_error_and_speedup(self, capsys):
        code = main(["sample", "gzip", "--instructions", "6000",
                     "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Full run" in out
        assert "relative IPC error" in out

    def test_kmeans_method(self, capsys):
        code = main(["sample", "gzip", "--instructions", "6000",
                     "--method", "kmeans", "--intervals", "2"])
        assert code == 0
        assert "method kmeans" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self, capsys):
        code = main(["sample", "quake"])
        assert code == 2
        assert "quake" in capsys.readouterr().err
