"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "CLGP+L0", "--l1-size", "8192", "--benchmarks", "gzip"])
        assert args.scheme == "CLGP+L0"
        assert args.l1_size == 8192

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE"])


class TestCommands:
    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out
        assert "0.045um" in out

    def test_run_command_small(self, capsys):
        code = main(["run", "base", "--benchmarks", "gzip",
                     "--instructions", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "HMEAN IPC" in out

    def test_figure_command_small(self, capsys):
        code = main(["figure", "4", "--benchmarks", "gzip",
                     "--instructions", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CLGP" in out

    def test_speedups_command_small(self, capsys):
        code = main(["speedups", "--benchmarks", "gzip",
                     "--instructions", "1000"])
        assert code == 0
        assert "CLGP vs FDP" in capsys.readouterr().out
