"""Tests for the experiment runner and its environment knobs."""

import pytest

from repro.simulator.config import SimulationConfig
from repro.simulator.plan import ExperimentPlan, SimTask
from repro.simulator.runner import (
    bench_benchmark_names,
    bench_instruction_budget,
    bench_l1_sizes,
    clear_workload_cache,
    get_workload,
    resolve_jobs,
    run_tasks,
)


def fast_config(**kw):
    base = dict(engine="baseline", technology="0.045um", l1_size_bytes=4096,
                max_instructions=800, warmup_instructions=2000)
    base.update(kw)
    return SimulationConfig(**base)


def run_plan(config, benchmarks, instructions, jobs=1, key=None):
    plan = ExperimentPlan("t")
    for name in benchmarks:
        plan.add(config, name, instructions,
                 key=key if key is not None else ())
    return plan.run(jobs=jobs)


class TestWorkloadCache:
    def test_same_object_returned(self):
        clear_workload_cache()
        assert get_workload("gzip") is get_workload("gzip")

    def test_clear(self):
        a = get_workload("gzip")
        clear_workload_cache()
        assert get_workload("gzip") is not a


class TestEnvironmentKnobs:
    def test_instruction_budget_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_INSTRUCTIONS", raising=False)
        assert bench_instruction_budget(12345) == 12345

    def test_instruction_budget_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "5000")
        assert bench_instruction_budget() == 5000

    def test_instruction_budget_floor_and_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "10")
        assert bench_instruction_budget() == 1000
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "lots")
        assert bench_instruction_budget(777) == 777

    def test_benchmarks_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BENCHMARKS", raising=False)
        assert bench_benchmark_names(["gcc"]) == ["gcc"]

    def test_benchmarks_env_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BENCHMARKS", "gzip, mcf")
        assert bench_benchmark_names() == ["gzip", "mcf"]

    def test_benchmarks_env_all(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BENCHMARKS", "all")
        assert len(bench_benchmark_names()) == 12

    def test_benchmarks_env_invalid_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BENCHMARKS", "quake")
        with pytest.raises(KeyError):
            bench_benchmark_names()

    def test_sizes_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SIZES", raising=False)
        assert bench_l1_sizes([1024]) == [1024]
        monkeypatch.setenv("REPRO_BENCH_SIZES", "256,4K,64KB")
        assert bench_l1_sizes() == [256, 4096, 65536]


class TestRunning:
    def test_single_task(self):
        (result,) = run_tasks([(fast_config(), "gzip", 800)])
        assert result.workload == "gzip"
        assert result.committed_instructions >= 800

    def test_results_keep_task_order(self):
        results = run_tasks([(fast_config(), name, 600)
                             for name in ("mcf", "gzip")])
        assert [r.workload for r in results] == ["mcf", "gzip"]

    def test_plan_hmean_aggregates(self):
        out = run_plan(fast_config(), ["gzip", "mcf"], 600, key=("mix",))
        assert len(out.results) == 2
        assert out.hmean_by_key()[("mix",)] > 0


class TestResolveJobs:
    def test_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_all_cores(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) == resolve_jobs(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestExperimentPlan:
    def test_tasks_keep_insertion_order_and_keys(self):
        plan = ExperimentPlan("t")
        config = fast_config()
        plan.add(config, "gzip", 500, key=("a",))
        plan.add(config, "mcf", 500, key=("b",))
        results = plan.run()
        assert [r.workload for r in results] == ["gzip", "mcf"]
        grouped = results.by_key()
        assert list(grouped) == [("a",), ("b",)]
        assert grouped[("a",)][0].workload == "gzip"

    def test_hmean_by_key(self):
        plan = ExperimentPlan("t")
        config = fast_config()
        for name in ("gzip", "mcf"):
            plan.add(config, name, 500, key=("mix",))
        hmeans = plan.run().hmean_by_key()
        assert set(hmeans) == {("mix",)}
        assert hmeans[("mix",)] > 0

    def test_run_tasks_accepts_simtasks_and_tuples(self):
        config = fast_config()
        mixed = [
            SimTask(config=config, benchmark="gzip", max_instructions=500),
            (config, "gzip", 500),
        ]
        a, b = run_tasks(mixed)
        assert a == b

    def test_sampled_task_dispatches_to_sampled_runner(self):
        config = fast_config(max_instructions=4000)
        task = SimTask(config=config, benchmark="gzip",
                       max_instructions=4000, sampled=True)
        (result,) = run_tasks([task])
        assert result.extras.get("sampled") == 1.0


class TestParallelOrdering:
    def test_sweep_results_identical_to_serial(self):
        """jobs>1 must reproduce the serial run exactly: same keys, same
        per-benchmark result ordering, same numbers."""
        def sweep(jobs):
            plan = ExperimentPlan("sweep")
            for size, engine in ((1024, "baseline"), (1024, "fdp"),
                                 (4096, "baseline")):
                config = fast_config(l1_size_bytes=size, engine=engine)
                for name in ("gzip", "mcf"):
                    plan.add(config, name, 500, key=(engine, size))
            return plan.run(jobs=jobs)

        serial, parallel = sweep(1), sweep(2)
        assert serial.results == parallel.results
        assert serial.hmean_by_key() == parallel.hmean_by_key()
        assert list(serial.by_key()) == list(parallel.by_key())

    def test_parallel_results_keep_task_order(self):
        results = run_tasks([(fast_config(), name, 500)
                             for name in ("mcf", "gzip", "eon")], jobs=2)
        assert [r.workload for r in results] == ["mcf", "gzip", "eon"]


class TestSharedPoolReuse:
    def test_busy_pool_is_not_resized_by_a_differently_sized_run(self):
        """A concurrent same-policy run asking for a different worker
        count must share the live pool (``processes`` is only an upper
        bound), not tear it down under the sibling's sweep."""
        from repro.simulator import runner

        runner.shutdown_pool()
        try:
            first = runner._shared_pool(1)
            runner._POOL_USERS += 1   # a sibling is fanned out
            try:
                assert runner._shared_pool(2) is first
                assert runner._POOL_PROCESSES == 1
            finally:
                runner._POOL_USERS -= 1
            # Idle again: a size mismatch may now rebuild.
            assert runner._shared_pool(2) is not first
            assert runner._POOL_PROCESSES == 2
        finally:
            runner.shutdown_pool()
