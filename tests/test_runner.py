"""Tests for the experiment runner and its environment knobs."""

import pytest

from repro.simulator.config import SimulationConfig
from repro.simulator.runner import (
    bench_benchmark_names,
    bench_instruction_budget,
    bench_l1_sizes,
    clear_workload_cache,
    get_workload,
    run_benchmarks,
    run_mix,
    run_single,
    sweep_l1_sizes,
)


def fast_config(**kw):
    base = dict(engine="baseline", technology="0.045um", l1_size_bytes=4096,
                max_instructions=800, warmup_instructions=2000)
    base.update(kw)
    return SimulationConfig(**base)


class TestWorkloadCache:
    def test_same_object_returned(self):
        clear_workload_cache()
        assert get_workload("gzip") is get_workload("gzip")

    def test_clear(self):
        a = get_workload("gzip")
        clear_workload_cache()
        assert get_workload("gzip") is not a


class TestEnvironmentKnobs:
    def test_instruction_budget_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_INSTRUCTIONS", raising=False)
        assert bench_instruction_budget(12345) == 12345

    def test_instruction_budget_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "5000")
        assert bench_instruction_budget() == 5000

    def test_instruction_budget_floor_and_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "10")
        assert bench_instruction_budget() == 1000
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "lots")
        assert bench_instruction_budget(777) == 777

    def test_benchmarks_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BENCHMARKS", raising=False)
        assert bench_benchmark_names(["gcc"]) == ["gcc"]

    def test_benchmarks_env_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BENCHMARKS", "gzip, mcf")
        assert bench_benchmark_names() == ["gzip", "mcf"]

    def test_benchmarks_env_all(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BENCHMARKS", "all")
        assert len(bench_benchmark_names()) == 12

    def test_benchmarks_env_invalid_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BENCHMARKS", "quake")
        with pytest.raises(KeyError):
            bench_benchmark_names()

    def test_sizes_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SIZES", raising=False)
        assert bench_l1_sizes([1024]) == [1024]
        monkeypatch.setenv("REPRO_BENCH_SIZES", "256,4K,64KB")
        assert bench_l1_sizes() == [256, 4096, 65536]


class TestRunning:
    def test_run_single(self):
        result = run_single(fast_config(), "gzip", 800)
        assert result.workload == "gzip"
        assert result.committed_instructions >= 800

    def test_run_benchmarks_order(self):
        results = run_benchmarks(fast_config(), ["mcf", "gzip"], 600)
        assert [r.workload for r in results] == ["mcf", "gzip"]

    def test_run_mix_aggregates(self):
        out = run_mix(fast_config(), ["gzip", "mcf"], 600)
        assert set(out) == {"results", "hmean_ipc"}
        assert out["hmean_ipc"] > 0
        assert len(out["results"]) == 2

    def test_sweep_l1_sizes(self):
        configs = {
            1024: fast_config(l1_size_bytes=1024),
            4096: [fast_config(l1_size_bytes=4096)],
        }
        out = sweep_l1_sizes(configs, ["gzip"], 500)
        assert set(out) == {1024, 4096}
        for per_size in out.values():
            for data in per_size.values():
                assert data["hmean_ipc"] > 0
