"""Tests for the CACTI-like latency model (paper Table 3)."""

import pytest

from repro.memory.latency import (
    L1_SIZES_BYTES,
    L2_SIZE_BYTES,
    MEMORY_LATENCY_CYCLES,
    CactiLikeModel,
    access_latency,
    l1_latency_table,
    l2_latency,
    one_cycle_prebuffer_entries,
    pipelined_prebuffer_stages,
    table3_rows,
)

#: The exact latencies printed in the paper's Table 3.
PAPER_TABLE3_090 = {
    256: 1, 512: 1, 1024: 2, 2048: 2, 4096: 3,
    8192: 3, 16384: 3, 32768: 3, 65536: 3, L2_SIZE_BYTES: 17,
}
PAPER_TABLE3_045 = {
    256: 1, 512: 2, 1024: 3, 2048: 4, 4096: 4,
    8192: 4, 16384: 4, 32768: 4, 65536: 5, L2_SIZE_BYTES: 24,
}


class TestTable3Exact:
    @pytest.mark.parametrize("size,expected", sorted(PAPER_TABLE3_090.items()))
    def test_090um_latencies(self, size, expected):
        assert access_latency(size, "0.09um") == expected

    @pytest.mark.parametrize("size,expected", sorted(PAPER_TABLE3_045.items()))
    def test_045um_latencies(self, size, expected):
        assert access_latency(size, "0.045um") == expected

    def test_table3_rows_match_paper(self):
        rows = table3_rows()
        assert rows["0.09um"] == PAPER_TABLE3_090
        assert rows["0.045um"] == PAPER_TABLE3_045

    def test_l1_latency_table_covers_all_sweep_sizes(self):
        table = l1_latency_table("0.045um")
        assert set(table) == set(L1_SIZES_BYTES)

    def test_l2_latency(self):
        assert l2_latency("0.09um") == 17
        assert l2_latency("0.045um") == 24

    def test_memory_latency_constant(self):
        assert MEMORY_LATENCY_CYCLES == 200


class TestInterpolation:
    def test_latency_monotonic_in_size(self):
        model = CactiLikeModel("0.045um")
        sizes = [256, 384, 512, 768, 1024, 3072, 4096, 131072, 1 << 20]
        latencies = [model.access_latency_cycles(s) for s in sizes]
        assert latencies == sorted(latencies)

    def test_intermediate_size_between_anchors(self):
        model = CactiLikeModel("0.09um")
        # 3 KB sits between 2 KB (2 cycles) and 4 KB (3 cycles).
        assert 2 <= model.access_latency_cycles(3072) <= 3

    def test_access_time_positive_and_monotonic(self):
        model = CactiLikeModel("0.09um")
        previous = 0.0
        for size in (256, 1024, 4096, 65536, 1 << 20):
            t = model.access_time_ns(size)
            assert t > 0
            assert t >= previous
            previous = t

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CactiLikeModel("0.09um").access_time_ns(0)

    def test_unlisted_technology_scales(self):
        # 0.13um is in the roadmap but not in Table 3; the model must still
        # produce sane monotonic latencies.
        model = CactiLikeModel(0.13)
        assert model.access_latency_cycles(256) >= 1
        assert (
            model.access_latency_cycles(1 << 20)
            > model.access_latency_cycles(4096)
        )


class TestDerivedSizing:
    def test_one_cycle_capacity_matches_paper(self):
        assert CactiLikeModel("0.09um").one_cycle_capacity_bytes(64) == 512
        assert CactiLikeModel("0.045um").one_cycle_capacity_bytes(64) == 256

    def test_prebuffer_entries_match_paper(self):
        # "512 bytes at 0.09um and 256 bytes at 0.045um" -> 8 and 4 lines.
        assert one_cycle_prebuffer_entries("0.09um") == 8
        assert one_cycle_prebuffer_entries("0.045um") == 4

    def test_pipelined_prebuffer_stages_match_paper(self):
        # 16-entry pre-buffer: two stages at 0.09um, three at 0.045um.
        assert pipelined_prebuffer_stages("0.09um", entries=16) == 2
        assert pipelined_prebuffer_stages("0.045um", entries=16) == 3
