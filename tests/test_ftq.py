"""Tests for the Fetch Target Queue (fetch-block granularity)."""

from repro.core.ftq import FetchTargetQueue
from repro.frontend.fetch_block import FetchBlock


def block(start=0x1000, length=8, **kw):
    return FetchBlock(start=start, length=length, **kw)


class TestCapacity:
    def test_has_space_until_capacity(self):
        ftq = FetchTargetQueue(capacity_blocks=2)
        assert ftq.push(block(0x1000))
        assert ftq.push(block(0x2000))
        assert not ftq.has_space()
        assert not ftq.push(block(0x3000))
        assert ftq.dropped_blocks == 1

    def test_head_expansion_counts_towards_capacity(self):
        ftq = FetchTargetQueue(capacity_blocks=2)
        ftq.push(block(0x1000, length=20))
        ftq.push(block(0x2000))
        ftq.pop_line()  # starts expanding the head block
        assert not ftq.has_space()

    def test_occupancy_and_len(self):
        ftq = FetchTargetQueue(capacity_blocks=4)
        ftq.push(block(0x1000))
        ftq.push(block(0x2000))
        assert len(ftq) == 2
        assert bool(ftq)


class TestLineExpansion:
    def test_lines_pop_in_order(self):
        ftq = FetchTargetQueue(capacity_blocks=4, line_size=64)
        ftq.push(block(0x1000 + 56, length=10))  # spans 2 lines
        first = ftq.pop_line()
        second = ftq.pop_line()
        assert first.line_addr == 0x1000
        assert second.line_addr == 0x1040
        assert first.num_instructions + second.num_instructions == 10

    def test_peek_does_not_consume(self):
        ftq = FetchTargetQueue(capacity_blocks=4)
        ftq.push(block(0x1000))
        assert ftq.peek_line() is ftq.peek_line()
        assert ftq.pop_line() is not None

    def test_pop_across_blocks(self):
        ftq = FetchTargetQueue(capacity_blocks=4)
        ftq.push(block(0x1000, length=4))
        ftq.push(block(0x2000, length=4))
        a = ftq.pop_line()
        b = ftq.pop_line()
        assert a.block.start == 0x1000
        assert b.block.start == 0x2000

    def test_empty_queue_returns_none(self):
        ftq = FetchTargetQueue()
        assert ftq.pop_line() is None
        assert ftq.peek_line() is None

    def test_pending_blocks_excludes_head_in_expansion(self):
        ftq = FetchTargetQueue(capacity_blocks=4)
        ftq.push(block(0x1000))
        ftq.push(block(0x2000))
        ftq.pop_line()
        pending = ftq.pending_blocks()
        assert [b.start for b in pending] == [0x2000]


class TestFlush:
    def test_flush_discards_everything(self):
        ftq = FetchTargetQueue(capacity_blocks=4)
        ftq.push(block(0x1000, length=20))
        ftq.push(block(0x2000))
        ftq.pop_line()
        ftq.flush()
        assert len(ftq) == 0
        assert ftq.pop_line() is None
        assert ftq.has_space()

    def test_counters(self):
        ftq = FetchTargetQueue(capacity_blocks=1)
        ftq.push(block(0x1000))
        ftq.push(block(0x2000))
        assert ftq.enqueued_blocks == 1
        assert ftq.dropped_blocks == 1
