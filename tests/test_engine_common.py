"""Tests for fetch-engine machinery shared by all engines (engine.py)."""

import pytest

from repro.core.clgp import CLGPEngine
from repro.core.engine import FetchEngineConfig, FetchStats
from repro.core.fdp import FDPEngine
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy

from engine_harness import RecordingBackend, blocks_on_distinct_lines, drive


def make_engine(workload, cls=FDPEngine, lookahead=2, l1_size=4096, **cfg):
    hierarchy = MemoryHierarchy(HierarchyConfig(
        technology="0.045um", l1_size_bytes=l1_size))
    config = FetchEngineConfig(prebuffer_entries=4, fetch_lookahead=lookahead,
                               **cfg)
    return cls(config, hierarchy, workload.bbdict)


class TestFetchStats:
    def test_record_stall(self):
        stats = FetchStats()
        stats.record_stall("il1")
        stats.record_stall("il1")
        stats.record_stall("empty")
        assert stats.stall_cycles == {"il1": 2, "empty": 1}

    def test_fraction_helpers_empty(self):
        stats = FetchStats()
        assert sum(stats.fetch_source_fractions().values()) == 0.0
        assert sum(stats.prefetch_source_fractions().values()) == 0.0


class TestFastPathClassification:
    def test_line_on_fast_path_variants(self, tiny_workload):
        engine = make_engine(tiny_workload)
        line = 0x4000
        assert not engine._line_on_fast_path(line)
        engine.hierarchy.l1.fill(line)
        assert engine._line_on_fast_path(line)
        engine.hierarchy.l1.invalidate(line)
        engine.prefetch_buffer.allocate(line)   # even in-flight counts
        assert engine._line_on_fast_path(line)


class TestDemandMissSerialisation:
    def test_only_head_may_be_a_demand_miss(self, tiny_workload):
        """With several queued lines that all miss, the fetch unit keeps a
        single outstanding demand request (the prefetcher, not the fetch
        unit, is what overlaps long-latency fetches)."""
        engine = make_engine(tiny_workload, lookahead=4)
        backend = RecordingBackend()
        blocks = blocks_on_distinct_lines(tiny_workload, 3)
        for block in blocks:
            engine.hierarchy.l2.fill(block.lines(64)[0])
            engine.enqueue_block(block, 0)
        engine.fetch_tick(0, backend)
        # Only the head line's demand request was issued to the bus.
        assert engine.hierarchy.bus.pending == 1
        assert len(engine._inflight) == 1

    def test_fast_path_lines_fill_the_lookahead(self, tiny_workload):
        engine = make_engine(tiny_workload, lookahead=4)
        backend = RecordingBackend()
        blocks = blocks_on_distinct_lines(tiny_workload, 3)
        for block in blocks:
            engine.hierarchy.l1.fill(block.lines(64)[0])
            for line in block.lines(64):
                engine.hierarchy.l1.fill(line)
            engine.enqueue_block(block, 0)
        engine.fetch_tick(0, backend)
        assert len(engine._inflight) >= 2


class TestStallAccounting:
    def test_empty_stall_recorded(self, tiny_workload):
        engine = make_engine(tiny_workload)
        backend = RecordingBackend()
        engine.fetch_tick(0, backend)
        assert engine.stats.stall_cycles.get("empty") == 1

    def test_latency_stall_attributed_to_source(self, tiny_workload):
        engine = make_engine(tiny_workload)   # 4-cycle L1
        backend = RecordingBackend()
        block = blocks_on_distinct_lines(tiny_workload, 1)[0]
        for line in block.lines(64):
            engine.hierarchy.l1.fill(line)
        engine.enqueue_block(block, 0)
        for cycle in range(3):
            engine.fetch_tick(cycle, backend)
        assert engine.stats.stall_cycles.get("il1", 0) >= 2


class TestPrebufferWaitEscalation:
    def test_wait_on_inflight_prefetch_resolves(self, tiny_workload):
        """A fetch that finds its line being prefetched waits for it and is
        then served from the pre-buffer."""
        engine = make_engine(tiny_workload, cls=CLGPEngine)
        backend = RecordingBackend()
        block = blocks_on_distinct_lines(tiny_workload, 1, min_size=4)[0]
        engine.hierarchy.l2.fill(block.lines(64)[0])
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)            # allocate + issue the prefetch
        drive(engine, backend, 60, prefetch=False)
        assert backend.count >= 1
        assert backend.sources()[0] == "PB"
        assert engine.stats.stall_cycles.get("PB-wait", 0) >= 1

    def test_wait_escalates_to_demand_if_entry_replaced(self, tiny_workload):
        """If the awaited prestage entry is replaced before its line ever
        arrives, the fetch unit escalates to a demand request instead of
        hanging."""
        engine = make_engine(tiny_workload, cls=CLGPEngine)
        backend = RecordingBackend()
        block = blocks_on_distinct_lines(tiny_workload, 1, min_size=4)[0]
        line = block.lines(64)[0]
        engine.hierarchy.l2.fill(line)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        # Start the fetch: it begins waiting on the in-flight entry.
        engine.fetch_tick(0, backend)
        # Simulate the entry being stolen: reset consumers and overwrite the
        # buffer with other lines before the bus ever granted the prefetch.
        engine.prestage_buffer.reset_consumers()
        for i in range(1, 5):
            engine.prestage_buffer.allocate_for_prefetch(0x9000 + i * 64)
        drive(engine, backend, 80, start_cycle=1, prefetch=False)
        assert backend.count >= 1   # fetch made progress regardless
