"""Tests for the cache access-port timing model."""

import pytest

from repro.memory.port import AccessPort


class TestBlockingPort:
    def test_single_access_latency(self):
        port = AccessPort(latency=3)
        assert port.issue(10) == 13

    def test_blocks_until_completion(self):
        port = AccessPort(latency=3)
        port.issue(10)
        # The next access cannot start before cycle 13.
        assert port.earliest_start(11) == 13
        assert port.issue(11) == 16

    def test_free_after_completion(self):
        port = AccessPort(latency=2)
        port.issue(0)
        assert port.is_free(2)
        assert port.issue(5) == 7

    def test_stall_cycles_accounted(self):
        port = AccessPort(latency=4)
        port.issue(0)
        port.issue(1)   # must wait until cycle 4
        assert port.stats.stall_cycles == 3
        assert port.stats.accesses == 2


class TestPipelinedPort:
    def test_back_to_back_issues(self):
        port = AccessPort(latency=3, pipelined=True)
        assert port.issue(0) == 3
        assert port.issue(1) == 4
        assert port.issue(2) == 5

    def test_single_port_limits_same_cycle_issues(self):
        port = AccessPort(latency=3, pipelined=True, ports=1)
        assert port.issue(0) == 3
        # Second access in the same cycle starts one cycle later.
        assert port.issue(0) == 4

    def test_two_ports_allow_two_per_cycle(self):
        port = AccessPort(latency=2, pipelined=True, ports=2)
        assert port.issue(0) == 2
        assert port.issue(0) == 2
        assert port.issue(0) == 3

    def test_completion_if_issued_is_side_effect_free(self):
        port = AccessPort(latency=3, pipelined=True)
        before = port.completion_if_issued(5)
        after = port.completion_if_issued(5)
        assert before == after == 8
        assert port.stats.accesses == 0


class TestValidationAndReset:
    @pytest.mark.parametrize("latency,ports", [(0, 1), (1, 0), (-1, 1)])
    def test_invalid_parameters(self, latency, ports):
        with pytest.raises(ValueError):
            AccessPort(latency=latency, ports=ports)

    def test_reset(self):
        port = AccessPort(latency=5)
        port.issue(0)
        port.reset()
        assert port.issue(0) == 5
