"""Tests for fault-tolerant execution: the deterministic fault injector,
the supervised runner (worker loss, retry with backoff, deadlines), the
resilient artifact store, and the typed-failure surfaces of the façade
and the CLI.

The chaos tests are the point of the subsystem: with a fixed fault seed,
runs under injected worker kills and artifact corruption must complete
without hanging and produce results bit-identical to a fault-free run.
"""

import errno
import os
import warnings

import pytest

from repro import faults
from repro.cache import ArtifactStore, temporary_cache_dir
from repro.cache.store import frame_digest, unframe_digest
from repro.faults import (
    NO_FAULTS,
    FaultPlan,
    active_plan,
    configure_faults,
    corrupt_artifact,
    maybe_kill_worker,
    resolve_plan,
    restore_faults,
    snapshot_faults,
)
from repro.simulator.config import SimulationConfig
from repro.simulator.plan import (
    ExperimentPlan,
    TaskFailure,
    TaskFailureError,
)
from repro.simulator.runner import (
    _execute_single,
    clear_process_caches,
    reset_supervisor_stats,
    run_tasks,
    shutdown_pool,
    supervisor_stats,
)


def fast_config(**kw):
    base = dict(engine="baseline", technology="0.045um", l1_size_bytes=4096,
                max_instructions=800, warmup_instructions=2000)
    base.update(kw)
    return SimulationConfig(**base)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Fault plans and supervisor counters are process-wide; never let a
    chaos test leak its configuration into the next one."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
    yield
    configure_faults(None)
    reset_supervisor_stats()
    shutdown_pool()
    clear_process_caches()


# ----------------------------------------------------------------------
# plan parsing and resolution
# ----------------------------------------------------------------------
class TestFaultPlanParsing:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "worker_kill:0.1,artifact_corrupt:0.05,io_error:0.02,"
            "write_crash:0.03,io_delay:20ms,seed:7")
        assert plan == FaultPlan(worker_kill=0.1, artifact_corrupt=0.05,
                                 io_error=0.02, write_crash=0.03,
                                 io_delay=0.02, seed=7)

    @pytest.mark.parametrize("token,seconds", [
        ("20ms", 0.02), ("1.5s", 1.5), ("0.25", 0.25), ("0", 0.0),
    ])
    def test_io_delay_units(self, token, seconds):
        assert FaultPlan.parse(f"io_delay:{token}").io_delay == seconds

    def test_empty_spec_is_no_faults(self):
        assert FaultPlan.parse("") == NO_FAULTS
        assert not NO_FAULTS.active()

    def test_describe_round_trips(self):
        plan = FaultPlan(worker_kill=0.25, artifact_corrupt=0.5,
                         io_error=0.125, write_crash=0.75,
                         io_delay=0.01, seed=42)
        assert FaultPlan.parse(plan.describe()) == plan

    def test_store_fault_sites_activate_the_plan(self):
        assert FaultPlan.parse("io_error:0.1").active()
        assert FaultPlan.parse("write_crash:0.1").active()

    @pytest.mark.parametrize("spec", [
        "worker_kill:2.0",          # probability out of range
        "worker_kill:lots",         # not a number
        "explode:0.5",              # unknown fault
        "worker_kill",              # missing value
        "seed:7.5",                 # non-integer seed
        "io_delay:-5ms",            # negative duration
        "io_error:1.5",             # probability out of range
        "write_crash:nope",         # not a number
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_resolve_plan(self):
        assert resolve_plan(None) is None
        plan = FaultPlan(worker_kill=0.1)
        assert resolve_plan(plan) is plan
        assert resolve_plan("worker_kill:0.1") == plan


class TestPlanResolution:
    def test_environment_activates_and_tracks_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:0.3")
        assert active_plan().worker_kill == 0.3
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:0.6")
        assert active_plan().worker_kill == 0.6
        monkeypatch.delenv("REPRO_FAULTS")
        assert active_plan() == NO_FAULTS

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:0.3")
        configure_faults("worker_kill:0.9")
        assert active_plan().worker_kill == 0.9
        configure_faults(None)
        assert active_plan().worker_kill == 0.3

    def test_snapshot_restore(self):
        snapshot = snapshot_faults()
        configure_faults("io_delay:5ms")
        assert active_plan().io_delay == 0.005
        restore_faults(snapshot)
        assert active_plan() == NO_FAULTS


# ----------------------------------------------------------------------
# deterministic decisions
# ----------------------------------------------------------------------
class TestDecisions:
    def test_decisions_are_pure_and_distinct(self):
        a = faults._decision(7, "worker_kill", 3, 1)
        assert a == faults._decision(7, "worker_kill", 3, 1)
        assert 0.0 <= a < 1.0
        assert a != faults._decision(7, "worker_kill", 3, 2)
        assert a != faults._decision(8, "worker_kill", 3, 1)
        assert a != faults._decision(7, "artifact_corrupt", 3, 1)

    def test_corrupt_artifact_is_deterministic_per_key(self):
        configure_faults("artifact_corrupt:1.0,seed:3")
        payload = bytes(range(256)) * 8
        once = corrupt_artifact("trace", "k1", payload)
        assert once == corrupt_artifact("trace", "k1", payload)
        assert once != payload
        assert corrupt_artifact("trace", "k2", payload) != payload

    def test_corrupt_artifact_noop_without_plan(self):
        payload = b"untouched"
        assert corrupt_artifact("trace", "k1", payload) == payload

    def test_kill_is_noop_outside_workers(self):
        configure_faults("worker_kill:1.0")
        maybe_kill_worker(0, 1)   # would os._exit if worker-gated wrongly


# ----------------------------------------------------------------------
# chaos execution: the acceptance criteria
# ----------------------------------------------------------------------
class TestChaosExecution:
    def _tasks(self, count=4, instructions=600):
        names = ("gzip", "mcf", "eon", "gcc")
        return [(fast_config(), names[i % len(names)], instructions)
                for i in range(count)]

    def test_worker_kills_retry_to_bit_identical_results(self):
        """A chaos run under heavy worker kills completes, retries at
        least once, and matches the fault-free results exactly."""
        baseline = run_tasks(self._tasks(), jobs=2)
        shutdown_pool()
        reset_supervisor_stats()
        configure_faults("worker_kill:0.7,seed:1")
        chaotic = run_tasks(self._tasks(), jobs=2, max_retries=10)
        assert chaotic == baseline
        stats = supervisor_stats()
        assert stats.retries > 0
        assert stats.worker_losses > 0

    def test_certain_kills_exhaust_retries_without_hanging(self):
        configure_faults("worker_kill:1.0,seed:1")
        with pytest.raises(TaskFailureError) as excinfo:
            run_tasks(self._tasks(count=2), jobs=2, max_retries=1)
        failures = excinfo.value.failures
        assert failures
        assert all(f.kind == "worker-lost" for f in failures)
        assert all(f.attempts == 2 for f in failures)

    def test_env_chaos_is_reproducible_end_to_end(self, monkeypatch):
        """REPRO_FAULTS with a fixed seed: two chaos runs agree with each
        other and with the fault-free run (decisions are pure functions,
        not RNG state)."""
        baseline = run_tasks(self._tasks(count=3), jobs=2)
        shutdown_pool()
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:0.5,seed:9")
        first = run_tasks(self._tasks(count=3), jobs=2, max_retries=10)
        shutdown_pool()
        second = run_tasks(self._tasks(count=3), jobs=2, max_retries=10)
        assert first == second == baseline

    def test_in_task_errors_are_typed_failures(self):
        bad = SimulationConfig(engine="baseline", technology="0.045um",
                               l1_size_bytes=4096, max_instructions=800)
        tasks = [(bad, "no-such-benchmark", 800)]
        with pytest.raises(TaskFailureError) as excinfo:
            run_tasks(tasks, jobs=1, max_retries=0)
        (failure,) = excinfo.value.failures
        assert failure.kind == "error"
        assert failure.benchmark == "no-such-benchmark"
        assert "no-such-benchmark" in str(failure)


class TestDeadlines:
    def test_overrunning_task_fails_typed_and_siblings_succeed(self):
        """A task past its deadline is killed and completes as a typed
        TaskFailure while the other task's result still arrives."""
        from repro.api import ExecutionOptions, Session

        plan = ExperimentPlan("deadline")
        plan.add(fast_config(max_instructions=50_000_000), "gzip",
                 50_000_000, key=("slow",))
        plan.add(fast_config(), "mcf", 600, key=("fast",))
        with Session(cache=False) as session:
            handle = session.submit(
                plan, options=ExecutionOptions(task_timeout=1.0))
            result = handle.result()
        (failure,) = result.failed_tasks
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "timeout"
        assert failure.benchmark == "gzip"
        assert len(result.successes) == 1
        assert result.successes[0].workload == "mcf"
        kinds = [e.kind for e in handle.event_log]
        assert "task-failed" in kinds
        assert kinds[-1] == "done"
        failed_events = [e for e in handle.event_log
                         if e.kind == "task-failed"]
        assert failed_events[0].error.startswith("timeout")
        stats = supervisor_stats()
        assert stats.timeouts >= 1

    def test_strict_surface_raises_on_timeout(self):
        with pytest.raises(TaskFailureError):
            run_tasks([(fast_config(max_instructions=50_000_000),
                        "gzip", 50_000_000)],
                      jobs=1, task_timeout=1.0)


class TestArtifactCorruptionChaos:
    def test_full_corruption_still_produces_correct_results(self, tmp_path):
        """artifact_corrupt:1.0 -- every write is damaged; every read must
        detect it and recompute, so results match the fault-free run."""
        config = fast_config(engine="clgp", max_instructions=1500)
        with temporary_cache_dir(tmp_path / "clean"):
            clear_process_caches()
            clean = _execute_single(config, "gzip", 1500)
        configure_faults("artifact_corrupt:1.0,seed:5")
        with temporary_cache_dir(tmp_path / "chaos") as disk:
            clear_process_caches()
            first = _execute_single(config, "gzip", 1500)
            clear_process_caches()
            second = _execute_single(config, "gzip", 1500)
            assert disk.stats.corrupt > 0
        assert first == second == clean

    def test_io_delay_only_slows_io(self, tmp_path):
        configure_faults("io_delay:1ms")
        store = ArtifactStore(tmp_path / "cache")
        store.put("kindA", "key", [1, 2, 3])
        assert store.get("kindA", "key") == [1, 2, 3]


# ----------------------------------------------------------------------
# store resilience
# ----------------------------------------------------------------------
class TestStoreIoResilience:
    @staticmethod
    def _flaky_replace(fail_times):
        real_replace = os.replace
        remaining = {"n": fail_times}

        def replace(src, dst):
            if remaining["n"] > 0:
                remaining["n"] -= 1
                raise OSError(errno.EIO, "injected I/O error")
            return real_replace(src, dst)

        return replace

    def test_transient_write_error_is_retried(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "cache")
        monkeypatch.setattr(os, "replace", self._flaky_replace(1))
        with warnings.catch_warnings():
            warnings.simplefilter("error")   # a retried write must not warn
            store.put("kindA", "key", [1, 2])
        assert store.stats.io_retries == 1
        assert store.stats.write_errors == 0
        assert store.get("kindA", "key") == [1, 2]

    def test_persistent_write_failure_degrades_and_warns_once(
            self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "cache")
        monkeypatch.setattr(os, "replace", self._flaky_replace(10 ** 9))
        with pytest.warns(RuntimeWarning, match="cache stats"):
            store.put("kindA", "key", [1, 2])
        assert store.stats.write_errors == 1
        assert store.stats.stores == 0
        with warnings.catch_warnings():
            warnings.simplefilter("error")   # second failure stays quiet
            store.put("kindA", "key2", [3])
        assert store.stats.write_errors == 2
        # No temp litter, and reads degrade to ordinary misses.
        assert not list((tmp_path / "cache").rglob("*.tmp"))
        assert store.get("kindA", "key") is None

    def test_transient_read_error_is_retried(self, tmp_path, monkeypatch):
        from pathlib import Path

        store = ArtifactStore(tmp_path / "cache")
        store.put("kindA", "key", [1, 2])
        real_read = Path.read_bytes
        remaining = {"n": 1}

        def flaky_read(self):
            if remaining["n"] > 0:
                remaining["n"] -= 1
                raise OSError(errno.EIO, "injected I/O error")
            return real_read(self)

        monkeypatch.setattr(Path, "read_bytes", flaky_read)
        assert store.get("kindA", "key") == [1, 2]
        assert store.stats.io_retries == 1
        assert store.stats.read_errors == 0


class TestStoreFaultSites:
    """The storage-layer chaos sites: injected I/O errors and simulated
    writer death between the temp write and the atomic rename."""

    def test_write_crash_leaves_tmp_without_publishing(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        configure_faults("write_crash:1.0,seed:3")
        store.put("kindA", "key", [1, 2])
        assert store.stats.crashed_writes == 1
        assert store.stats.stores == 0
        assert not store.path_for("kindA", "key").exists()
        assert len(list((tmp_path / "cache").rglob(".*.tmp"))) == 1
        # The next gc pass reaps (and reports) the stranded temp file.
        configure_faults(None)
        report = store.gc(10 ** 9)
        assert report.tmp_files_removed == 1
        assert not list((tmp_path / "cache").rglob(".*.tmp"))

    def test_io_error_site_fails_reads_and_degrades_writes(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("kindA", "key", [1])
        configure_faults("io_error:1.0,seed:1")
        with pytest.warns(RuntimeWarning, match="cache stats"):
            assert store.get("kindA", "key") is None
        assert store.stats.read_errors == 1
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            store.put("kindA", "other", [2])
        assert store.stats.write_errors == 1
        assert store.read_only()        # write faults raise ENOSPC
        configure_faults(None)
        # A read fault is not corruption: the artifact itself is intact.
        assert store.get("kindA", "key") == [1]

    def test_enospc_degrades_immediately_then_reprobes(
            self, tmp_path, monkeypatch):
        import time

        store = ArtifactStore(tmp_path / "cache")
        monkeypatch.setattr(store, "DEGRADE_BACKOFF", 0.05)
        real_replace = os.replace
        disk_full = {"on": True}

        def replace(src, dst):
            if disk_full["on"]:
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", replace)
        with pytest.warns(RuntimeWarning, match="cache stats"):
            store.put("kindA", "k1", [1])
        assert store.stats.write_errors == 1
        assert store.stats.io_retries == 0      # ENOSPC is never retried
        assert store.read_only()
        store.put("kindA", "k2", [2])           # inside the backoff window
        assert store.stats.skipped_writes == 1
        # The disk frees up; after the backoff the next write re-probes
        # and restores cached operation instead of staying degraded for
        # the process lifetime.
        disk_full["on"] = False
        time.sleep(0.06)
        store.put("kindA", "k3", [3])
        assert store.stats.reprobes == 1
        assert store.stats.recoveries == 1
        assert store.stats.stores == 1
        assert not store.read_only()
        assert store.get("kindA", "k3") == [3]
        # Degrading again warns again: recovery re-armed the warning.
        disk_full["on"] = True
        with pytest.warns(RuntimeWarning, match="cache stats"):
            store.put("kindA", "k4", [4])


class TestDigestFraming:
    def test_round_trip(self):
        payload = b"simulator state" * 100
        assert unframe_digest(frame_digest(payload)) == payload

    def test_tampered_payload_is_rejected(self):
        framed = bytearray(frame_digest(b"simulator state" * 100))
        framed[40] ^= 0x01
        assert unframe_digest(bytes(framed)) is None

    def test_short_or_missing_frames_are_rejected(self):
        assert unframe_digest(None) is None
        assert unframe_digest(b"short") is None
        assert unframe_digest(b"\x00" * 32) is None


# ----------------------------------------------------------------------
# façade and CLI surfaces
# ----------------------------------------------------------------------
class TestFacadeFaultSurface:
    def test_execution_options_validate_fault_knobs(self):
        from repro.api import ExecutionOptions

        with pytest.raises(ValueError, match="task_timeout"):
            ExecutionOptions(task_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            ExecutionOptions(max_retries=-1)
        with pytest.raises(ValueError, match="unknown fault"):
            ExecutionOptions(faults="explode:0.5")
        options = ExecutionOptions(faults="worker_kill:0.1")
        assert isinstance(options.faults, FaultPlan)

    def test_session_scopes_faults_to_the_submission(self):
        from repro.api import ExecutionOptions, ExperimentSpec, Session

        spec = ExperimentSpec("base", benchmarks=("gzip",),
                              max_instructions=600)
        with Session(jobs=2, cache=False) as session:
            result = session.run(spec, options=ExecutionOptions(
                faults="worker_kill:0.7,seed:1", max_retries=10))
            assert active_plan() == NO_FAULTS   # restored after the run
        assert not result.failed_tasks
        assert result.task_retries >= 0

    def test_run_events_report_retries(self):
        from repro.api import ExecutionOptions, ExperimentSpec, Session

        spec = ExperimentSpec("base", benchmarks=("gzip", "mcf", "eon"),
                              max_instructions=600)
        with Session(jobs=2, cache=False) as session:
            baseline = session.run(spec)
            handle = session.submit(spec, options=ExecutionOptions(
                faults="worker_kill:0.7,seed:1", max_retries=10))
            chaotic = handle.result()
        assert chaotic.results == baseline.results
        assert chaotic.task_retries > 0
        task_events = [e for e in handle.event_log if e.kind == "task"]
        assert sum(e.retries for e in task_events) == chaotic.task_retries


class TestCliFaults:
    RUN_ARGS = ["run", "base", "--benchmarks", "gzip,mcf",
                "--instructions", "800", "--no-cache"]

    def test_chaos_stdout_matches_fault_free_run(self, capsys):
        from repro.cli import main

        assert main(self.RUN_ARGS + ["--jobs", "1"]) == 0
        clean = capsys.readouterr()
        clear_process_caches()
        assert main(self.RUN_ARGS + [
            "--jobs", "2", "--faults", "worker_kill:0.7,seed:1",
            "--max-retries", "10"]) == 0
        chaos = capsys.readouterr()
        assert chaos.out == clean.out          # stdout is byte-comparable
        assert "retr" in chaos.err             # retries reported on stderr

    def test_invalid_faults_spec_is_a_usage_error(self, capsys):
        from repro.cli import main

        assert main(self.RUN_ARGS + ["--faults", "explode:1"]) == 2
        assert "unknown fault" in capsys.readouterr().err

    def test_exhausted_retries_exit_nonzero_with_partial_output(
            self, capsys):
        from repro.cli import main

        assert main(self.RUN_ARGS + [
            "--jobs", "2", "--faults", "worker_kill:1.0,seed:1",
            "--max-retries", "1"]) == 1
        captured = capsys.readouterr()
        assert "worker-lost" in captured.err
        assert "failed" in captured.err
