"""Tests for the area / access-energy extension model."""

import pytest

from repro.memory.area import (
    PIPELINING_AREA_OVERHEAD,
    FrontEndBudget,
    estimate_structure,
    front_end_budget,
)
from repro.simulator.presets import paper_config


class TestEstimateStructure:
    def test_area_grows_with_capacity(self):
        small = estimate_structure("a", 1024, "0.09um")
        large = estimate_structure("b", 65536, "0.09um")
        assert large.area_mm2 > 10 * small.area_mm2

    def test_area_shrinks_with_feature_size(self):
        old = estimate_structure("a", 4096, "0.09um")
        new = estimate_structure("a", 4096, "0.045um")
        assert new.area_mm2 < old.area_mm2

    def test_pipelining_overhead_applied(self):
        plain = estimate_structure("a", 16384, "0.09um")
        pipelined = estimate_structure("a", 16384, "0.09um", pipelined=True)
        assert pipelined.area_mm2 == pytest.approx(
            plain.area_mm2 * PIPELINING_AREA_OVERHEAD)
        assert pipelined.access_energy_nj > plain.access_energy_nj

    def test_fully_associative_costs_more(self):
        sa = estimate_structure("a", 512, "0.045um", associativity=2)
        fa = estimate_structure("a", 512, "0.045um", fully_associative=True)
        assert fa.area_mm2 > sa.area_mm2
        assert fa.access_energy_nj > sa.access_energy_nj

    def test_energy_scales_sublinearly(self):
        small = estimate_structure("a", 4096, "0.045um")
        large = estimate_structure("a", 16384, "0.045um")
        assert 1.5 < large.access_energy_nj / small.access_energy_nj < 3.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            estimate_structure("a", 0, "0.09um")

    def test_unlisted_node_scales(self):
        est = estimate_structure("a", 4096, 0.13)
        assert est.area_mm2 > 0

    def test_scaled_helper(self):
        est = estimate_structure("a", 4096, "0.09um")
        doubled = est.scaled(2.0)
        assert doubled.area_mm2 == pytest.approx(2 * est.area_mm2)


class TestFrontEndBudget:
    def test_clgp_small_budget_beats_large_pipelined_cache_area(self):
        """The paper's 2.5KB CLGP budget should occupy far less area than a
        16KB pipelined I-cache."""
        clgp = front_end_budget(paper_config(
            "CLGP+L0+PB16", l1_size_bytes=1024, technology="0.09um"))
        pipelined = front_end_budget(paper_config(
            "base-pipelined", l1_size_bytes=16384, technology="0.09um"))
        assert clgp.capacity_bytes < pipelined.capacity_bytes
        assert clgp.area_mm2 < 0.6 * pipelined.area_mm2

    def test_budget_includes_prebuffer_only_for_prefetchers(self):
        base = front_end_budget(paper_config("base", l1_size_bytes=4096))
        fdp = front_end_budget(paper_config("FDP", l1_size_bytes=4096))
        assert fdp.capacity_bytes > base.capacity_bytes
        assert fdp.area_mm2 > base.area_mm2

    def test_energy_weighted_by_fetch_sources(self):
        config = paper_config("CLGP+L0", l1_size_bytes=4096,
                              technology="0.045um")
        cheap = front_end_budget(config, {"PB": 0.95, "il1": 0.05})
        expensive = front_end_budget(config, {"il1": 0.7, "ul2": 0.3})
        assert cheap.energy_per_line_fetch_nj < expensive.energy_per_line_fetch_nj

    def test_label_defaults_to_config_label(self):
        budget = front_end_budget(paper_config("CLGP+L0"))
        assert isinstance(budget, FrontEndBudget)
        assert budget.label == "CLGP+L0"
