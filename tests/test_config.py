"""Tests for SimulationConfig derivation logic."""

import pytest

from repro.simulator.config import SimulationConfig


class TestValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(engine="markov")

    def test_nonpositive_instructions_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_instructions=0)


class TestTechnologyDerivedSizing:
    def test_prebuffer_entries_from_one_cycle_capacity(self):
        assert SimulationConfig(technology="0.09um").resolved_prebuffer_entries() == 8
        assert SimulationConfig(technology="0.045um").resolved_prebuffer_entries() == 4

    def test_prebuffer_explicit_override(self):
        config = SimulationConfig(technology="0.045um", prebuffer_entries=12)
        assert config.resolved_prebuffer_entries() == 12

    def test_pipelined_prebuffer_defaults_to_16_entries(self):
        config = SimulationConfig(technology="0.045um", prebuffer_pipelined=True)
        assert config.resolved_prebuffer_entries() == 16
        assert config.resolved_prebuffer_latency() == 3

    def test_pipelined_prebuffer_stages_at_009(self):
        config = SimulationConfig(technology="0.09um", prebuffer_pipelined=True)
        assert config.resolved_prebuffer_latency() == 2

    def test_l0_size_from_one_cycle_capacity(self):
        assert SimulationConfig(technology="0.09um",
                                l0_enabled=True).resolved_l0_size() == 512
        assert SimulationConfig(technology="0.045um",
                                l0_enabled=True).resolved_l0_size() == 256
        assert SimulationConfig(l0_enabled=False).resolved_l0_size() is None

    def test_l1_latency_from_table3(self):
        assert SimulationConfig(technology="0.045um",
                                l1_size_bytes=4096).resolved_l1_latency() == 4
        assert SimulationConfig(technology="0.09um",
                                l1_size_bytes=4096).resolved_l1_latency() == 3

    def test_ideal_l1_forces_one_cycle(self):
        config = SimulationConfig(ideal_l1=True, l1_size_bytes=65536)
        assert config.resolved_l1_latency() == 1
        assert config.hierarchy_config().l1_latency_override == 1


class TestStructureConfigs:
    def test_hierarchy_config_fields(self):
        config = SimulationConfig(technology="0.045um", l1_size_bytes=8192,
                                  l0_enabled=True, l1_pipelined=True)
        h = config.hierarchy_config()
        assert h.l1_size_bytes == 8192
        assert h.l1_pipelined
        assert h.l0_size_bytes == 256

    def test_engine_config_fields(self):
        config = SimulationConfig(engine="clgp", technology="0.045um",
                                  clgp_free_on_use=True)
        e = config.engine_config()
        assert e.prebuffer_entries == 4
        assert e.clgp_free_on_use

    def test_lookahead_raised_for_pipelined_structures(self):
        plain = SimulationConfig(technology="0.045um")
        pipelined_pb = SimulationConfig(technology="0.045um",
                                        prebuffer_pipelined=True)
        pipelined_l1 = SimulationConfig(technology="0.045um", l1_pipelined=True,
                                        l1_size_bytes=4096)
        assert plain.engine_config().fetch_lookahead == plain.fetch_lookahead
        assert pipelined_pb.engine_config().fetch_lookahead >= 4
        assert pipelined_l1.engine_config().fetch_lookahead >= 5

    def test_warmup_resolution(self):
        assert SimulationConfig(warmup_instructions=0).resolved_warmup_instructions() == 0
        assert SimulationConfig(warmup_instructions=123).resolved_warmup_instructions() == 123
        auto = SimulationConfig(max_instructions=10_000).resolved_warmup_instructions()
        assert auto >= 50_000


class TestLabelsAndBudget:
    @pytest.mark.parametrize("kwargs,expected", [
        (dict(engine="baseline"), "base"),
        (dict(engine="baseline", l1_pipelined=True), "base pipelined"),
        (dict(engine="baseline", ideal_l1=True), "ideal"),
        (dict(engine="baseline", l0_enabled=True), "base + L0"),
        (dict(engine="fdp", l0_enabled=True), "FDP + L0"),
        (dict(engine="clgp", l0_enabled=True, prebuffer_pipelined=True),
         "CLGP + L0 + PB:16"),
    ])
    def test_derived_labels(self, kwargs, expected):
        assert SimulationConfig(**kwargs).derived_label() == expected

    def test_explicit_label_wins(self):
        assert SimulationConfig(label="xyz").derived_label() == "xyz"

    def test_with_overrides_copies(self):
        a = SimulationConfig(l1_size_bytes=4096)
        b = a.with_overrides(l1_size_bytes=8192)
        assert a.l1_size_bytes == 4096 and b.l1_size_bytes == 8192

    def test_total_fast_budget(self):
        config = SimulationConfig(engine="clgp", technology="0.09um",
                                  l1_size_bytes=1024, l0_enabled=True,
                                  prebuffer_pipelined=True)
        # 1KB L1 + 512B L0 + 16 * 64B pre-buffer = 2.5 KB (paper section 5.1)
        assert config.total_fast_budget_bytes() == 1024 + 512 + 1024

    def test_budget_without_prebuffer_for_baseline(self):
        config = SimulationConfig(engine="baseline", l1_size_bytes=4096)
        assert config.total_fast_budget_bytes() == 4096
