"""Integration tests for the paper's qualitative claims.

These run small but real simulations (a few thousand instructions on a
large-footprint benchmark) and assert the *relationships* the paper
establishes, with generous margins so the tests are robust to modelling
noise:

1. prefetching (FDP, CLGP) beats the no-prefetch baseline on benchmarks
   whose code does not fit in the L1;
2. CLGP serves more of its fetches from one-cycle storage than FDP;
3. CLGP is at least as fast as FDP at the paper's headline design point;
4. CLGP is far less sensitive to L1 size than the baseline;
5. prefetch requests in CLGP hit the prestage buffer more often than FDP's
   hit its prefetch buffer (paper Figure 8: 28% vs 21.5%);
6. the prestaging claim that most fetches come from the prestage buffer.
"""

import pytest

from repro.simulator.presets import paper_config
from repro.simulator.runner import _execute_single

INSTRUCTIONS = 6000
BENCH = "gcc"          # large instruction footprint


def run(scheme, benchmark=BENCH, l1_size=4096, tech="0.045um", **overrides):
    config = paper_config(scheme, l1_size_bytes=l1_size, technology=tech,
                          max_instructions=INSTRUCTIONS, **overrides)
    return _execute_single(config, benchmark, INSTRUCTIONS)


@pytest.fixture(scope="module")
def results():
    schemes = ("base", "base-pipelined", "base+L0", "ideal",
               "FDP+L0", "CLGP+L0", "FDP+L0+PB16", "CLGP+L0+PB16")
    return {scheme: run(scheme) for scheme in schemes}


class TestPrefetchingBeatsBaselines:
    def test_fdp_beats_base(self, results):
        assert results["FDP+L0"].ipc > results["base"].ipc * 1.1

    def test_clgp_beats_base_pipelined(self, results):
        assert results["CLGP+L0"].ipc > results["base-pipelined"].ipc * 1.15

    def test_clgp_pb16_is_best_overall(self, results):
        best_baseline = max(results[s].ipc for s in
                            ("base", "base-pipelined", "base+L0", "ideal"))
        assert results["CLGP+L0+PB16"].ipc > best_baseline


class TestCLGPvsFDP:
    def test_clgp_not_slower_than_fdp(self, results):
        assert results["CLGP+L0"].ipc >= results["FDP+L0"].ipc * 0.97

    def test_clgp_serves_more_fetches_from_prebuffer(self, results):
        clgp = results["CLGP+L0"].fetch_source_fractions()["PB"]
        fdp = results["FDP+L0"].fetch_source_fractions()["PB"]
        assert clgp > fdp + 0.15

    def test_clgp_one_cycle_fraction_dominates(self, results):
        assert (results["CLGP+L0"].one_cycle_fetch_fraction()
                > results["FDP+L0"].one_cycle_fetch_fraction())

    def test_clgp_reduces_slow_cache_fetches(self, results):
        def slow_fraction(result):
            fractions = result.fetch_source_fractions()
            return fractions["il1"] + fractions["ul2"] + fractions["Mem"]
        assert slow_fraction(results["CLGP+L0"]) < slow_fraction(results["FDP+L0"])

    def test_clgp_prefetch_requests_hit_prebuffer_more(self, results):
        clgp = results["CLGP+L0"].prefetch_source_fractions()["PB"]
        fdp = results["FDP+L0"].prefetch_source_fractions()["PB"]
        assert clgp >= fdp

    def test_prestage_buffer_supplies_majority_of_fetches(self, results):
        assert results["CLGP+L0"].fetch_source_fractions()["PB"] > 0.5


class TestCacheSizeInsensitivity:
    def test_clgp_flat_baseline_steep(self):
        small_clgp = run("CLGP+L0", l1_size=512)
        large_clgp = run("CLGP+L0", l1_size=32768)
        small_base = run("base-pipelined", l1_size=512)
        large_base = run("base-pipelined", l1_size=32768)
        clgp_gain = large_clgp.ipc / small_clgp.ipc
        base_gain = large_base.ipc / small_base.ipc
        assert clgp_gain < base_gain

    def test_tiny_budget_clgp_matches_large_pipelined_cache(self):
        """Paper section 5.1: CLGP with a small budget rivals a much larger
        pipelined I-cache without prefetching."""
        clgp_small = run("CLGP+L0+PB16", l1_size=1024)
        pipelined_large = run("base-pipelined", l1_size=16384)
        assert clgp_small.ipc >= pipelined_large.ipc * 0.9


class TestSmallCodeBenchmark:
    def test_gzip_schemes_are_close(self):
        """For a benchmark that fits in the L1, prefetching neither helps
        much nor hurts much (paper Figure 6: gzip is the exception where
        the pipelined baseline wins slightly)."""
        clgp = run("CLGP+L0+PB16", benchmark="gzip", l1_size=8192)
        base = run("base-pipelined", benchmark="gzip", l1_size=8192)
        assert abs(clgp.ipc - base.ipc) / base.ipc < 0.35

    def test_mcf_is_data_bound_everywhere(self):
        clgp = run("CLGP+L0", benchmark="mcf")
        base = run("base-pipelined", benchmark="mcf")
        # Instruction prefetching cannot buy much on a data-bound benchmark.
        assert clgp.ipc < base.ipc * 1.3
