"""Determinism guard for the event-driven simulation loop.

The event-driven loop (``loop="event"``) fast-forwards across provably-idle
cycle stretches and replays the skipped per-cycle stall counters in bulk.
These tests pin down its core contract: for every engine, every field of
``SimulationResult`` -- and the engine's full stall breakdown -- must be
bit-identical to the straight per-cycle loop (``loop="cycle"``).
"""

import dataclasses
import random

import pytest

from repro.simulator.simulator import Simulator
from repro.simulator.testing import make_sim_config
from repro.workloads.generator import WorkloadProfile
from repro.workloads.trace import build_workload

ENGINES = ["baseline", "fdp", "clgp", "next-line", "target-line"]


def _run(config, workload, loop):
    sim = Simulator(config, workload)
    result = sim.run(loop=loop)
    return sim, result


def _assert_identical(a, b):
    if a == b:
        return
    diffs = [
        f"{f.name}: cycle={getattr(a, f.name)!r} event={getattr(b, f.name)!r}"
        for f in dataclasses.fields(a)
        if getattr(a, f.name) != getattr(b, f.name)
    ]
    raise AssertionError("event loop diverged from per-cycle loop:\n  "
                         + "\n  ".join(diffs))


class TestEventLoopDeterminism:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_result_identical_to_cycle_loop(self, medium_workload, engine):
        config = make_sim_config(engine=engine, max_instructions=2500)
        cycle_sim, cycle_result = _run(config, medium_workload, "cycle")
        event_sim, event_result = _run(config, medium_workload, "event")
        _assert_identical(cycle_result, event_result)
        # The per-cause stall breakdown is not part of SimulationResult but
        # is exactly what the fast-forward replays; compare it too.
        assert cycle_sim.engine.stats.stall_cycles == event_sim.engine.stats.stall_cycles
        assert cycle_sim.backend.stats == event_sim.backend.stats

    @pytest.mark.parametrize("engine", ["baseline", "fdp", "clgp"])
    def test_identical_with_l0_cache(self, medium_workload, engine):
        config = make_sim_config(engine=engine, l0_enabled=True,
                                 max_instructions=2000)
        _, cycle_result = _run(config, medium_workload, "cycle")
        _, event_result = _run(config, medium_workload, "event")
        _assert_identical(cycle_result, event_result)

    @pytest.mark.parametrize("engine", ["fdp", "clgp"])
    @pytest.mark.parametrize("prefetches_per_cycle", [0, 1, 2])
    def test_identical_across_prefetch_ablations(self, medium_workload, engine,
                                                 prefetches_per_cycle):
        # prefetches_per_cycle=0 stresses the quiescence classification:
        # the scan may still mutate state (consumer counts, filter bits)
        # even though it can never allocate.
        kwargs = dict(engine=engine, l1_size_bytes=512,
                      prefetches_per_cycle=prefetches_per_cycle,
                      max_instructions=2000)
        if engine == "clgp":
            kwargs["clgp_use_filtering"] = True
        config = make_sim_config(**kwargs)
        _, cycle_result = _run(config, medium_workload, "cycle")
        _, event_result = _run(config, medium_workload, "event")
        _assert_identical(cycle_result, event_result)

    def test_identical_under_small_cache_pressure(self, medium_workload):
        # A tiny L1 forces long memory stalls -- the regime the
        # fast-forward is designed to skip.
        config = make_sim_config(engine="clgp", l1_size_bytes=512,
                                 max_instructions=2000)
        _, cycle_result = _run(config, medium_workload, "cycle")
        _, event_result = _run(config, medium_workload, "event")
        _assert_identical(cycle_result, event_result)

    def test_identical_when_cycle_limit_hit(self, tiny_workload):
        config = make_sim_config(max_instructions=10**9, max_cycles=400)
        _, cycle_result = _run(config, tiny_workload, "cycle")
        _, event_result = _run(config, tiny_workload, "event")
        assert cycle_result.cycles == event_result.cycles <= 400
        _assert_identical(cycle_result, event_result)

    def test_step_driven_matches_run_loop(self, medium_workload):
        """run() unrolls step() with pre-bound methods for speed; the two
        copies of the per-cycle ordering must never diverge."""
        config = make_sim_config(engine="fdp", max_instructions=1500)
        run_result = Simulator(config, medium_workload).run(loop="cycle")

        stepped = Simulator(config, medium_workload)
        stepped.warm_up()
        target = config.max_instructions
        limit = target * 400   # simulator's default cycle-limit rule
        while (stepped.backend.stats.committed_instructions < target
               and stepped.cycle < limit):
            stepped.step()
        _assert_identical(run_result, stepped._collect_results())

    def test_event_loop_is_default(self, tiny_workload):
        config = make_sim_config()
        assert config.sim_loop == "event"

    def test_config_rejects_unknown_loop(self):
        with pytest.raises(ValueError):
            make_sim_config(sim_loop="warp")

    def test_run_rejects_unknown_loop(self, tiny_workload):
        sim = Simulator(make_sim_config(max_instructions=100), tiny_workload)
        with pytest.raises(ValueError):
            sim.run(loop="warp")

    @pytest.mark.parametrize("seed", range(20))
    def test_randomized_short_workloads_bit_identical(self, seed):
        """Differential fuzzing of the cycle-skipping fast-forward: 20
        randomized (workload, configuration) pairs, each compared
        field-for-field (plus the stall breakdown and back-end counters)
        against the per-cycle reference loop.  The fixed-workload tests
        above pin known regimes; this sweep covers the engine x cache x
        warm-up x prefetch-rate cross products none of them hand-pick."""
        rng = random.Random(59999 + seed)
        profile = WorkloadProfile(
            name=f"event-diff-{seed}",
            footprint_kb=rng.choice([4.0, 8.0, 16.0]),
            num_functions=rng.randint(3, 12),
            avg_block_size=rng.uniform(4.0, 7.0),
            hard_branch_fraction=rng.uniform(0.05, 0.20),
            loop_fraction=rng.uniform(0.05, 0.25),
            avg_loop_iterations=rng.uniform(3.0, 8.0),
            call_fraction=rng.uniform(0.04, 0.12),
            dl1_miss_rate=rng.uniform(0.01, 0.08),
            seed=seed,
        )
        workload = build_workload(profile)
        kwargs = dict(
            engine=rng.choice(ENGINES),
            l1_size_bytes=rng.choice([512, 1024, 4096]),
            max_instructions=rng.randint(500, 1200),
            warmup_instructions=rng.choice([0, 1000, 3000]),
            prefetches_per_cycle=rng.choice([1, 2]),
        )
        if rng.random() < 0.3:
            kwargs["l0_enabled"] = True
        if kwargs["engine"] == "clgp" and rng.random() < 0.5:
            kwargs["clgp_use_filtering"] = True
        config = make_sim_config(**kwargs)
        cycle_sim, cycle_result = _run(config, workload, "cycle")
        event_sim, event_result = _run(config, workload, "event")
        _assert_identical(cycle_result, event_result)
        assert (cycle_sim.engine.stats.stall_cycles
                == event_sim.engine.stats.stall_cycles)
        assert cycle_sim.backend.stats == event_sim.backend.stats

    def test_fast_forward_actually_skips(self, medium_workload):
        """The event loop must step strictly fewer cycles than it simulates
        (otherwise the fast-forward silently stopped firing)."""
        config = make_sim_config(engine="baseline", l1_size_bytes=512,
                                 max_instructions=2000)
        sim = Simulator(config, medium_workload)
        stepped = 0
        original = sim._fast_forward

        def counting(limit):
            nonlocal stepped
            stepped += 1
            return original(limit)

        sim._fast_forward = counting
        result = sim.run()
        assert stepped < result.cycles
