"""Shared fixtures for the test suite.

The fixtures build small, fast objects: a tiny synthetic workload, a
hierarchy at each technology node, and ready-made engine/simulator
factories.  Anything that runs a timing simulation uses a few thousand
instructions at most so the whole suite stays quick.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import FetchEngineConfig
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.simulator.testing import make_sim_config
from repro.workloads.generator import WorkloadProfile
from repro.workloads.trace import Workload, build_workload


TINY_PROFILE = WorkloadProfile(
    name="tiny",
    footprint_kb=4.0,
    num_functions=4,
    avg_block_size=5.0,
    hard_branch_fraction=0.10,
    loop_fraction=0.20,
    avg_loop_iterations=6.0,
    call_fraction=0.10,
    dl1_miss_rate=0.05,
    seed=7,
)

MEDIUM_PROFILE = WorkloadProfile(
    name="medium",
    footprint_kb=48.0,
    num_functions=32,
    avg_block_size=5.0,
    hard_branch_fraction=0.10,
    loop_fraction=0.10,
    avg_loop_iterations=5.0,
    call_fraction=0.08,
    dl1_miss_rate=0.03,
    seed=11,
)


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Route the persistent artifact cache into a session tmp directory.

    Keeps test runs from touching (or depending on) a developer's real
    ``.repro-cache/``; tests that exercise the store itself use their own
    explicit directories on top.
    """
    from repro.cache import reset_configuration
    from repro.cache.store import ENV_CACHE_DIR

    cache_dir = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get(ENV_CACHE_DIR)
    os.environ[ENV_CACHE_DIR] = str(cache_dir)
    reset_configuration()
    yield
    if previous is None:
        os.environ.pop(ENV_CACHE_DIR, None)
    else:
        os.environ[ENV_CACHE_DIR] = previous
    reset_configuration()


@pytest.fixture(scope="session")
def tiny_workload() -> Workload:
    """A small synthetic workload shared by most tests (read-only)."""
    return build_workload(TINY_PROFILE)


@pytest.fixture(scope="session")
def medium_workload() -> Workload:
    """A larger workload whose dynamic footprint exceeds small caches."""
    return build_workload(MEDIUM_PROFILE)


@pytest.fixture
def hierarchy_090() -> MemoryHierarchy:
    return MemoryHierarchy(HierarchyConfig(technology="0.09um", l1_size_bytes=4096))


@pytest.fixture
def hierarchy_045() -> MemoryHierarchy:
    return MemoryHierarchy(HierarchyConfig(technology="0.045um", l1_size_bytes=4096))


@pytest.fixture
def hierarchy_l0() -> MemoryHierarchy:
    return MemoryHierarchy(
        HierarchyConfig(technology="0.045um", l1_size_bytes=4096, l0_size_bytes=256)
    )


@pytest.fixture
def engine_config() -> FetchEngineConfig:
    return FetchEngineConfig(prebuffer_entries=4)


@pytest.fixture
def sim_config_factory():
    return make_sim_config
