"""Tests for the persistent artifact cache (store, keys, reuse semantics).

Four contracts:

* **Stable keys** -- content keys are identical across processes (no
  hash-randomization dependence), independent of dataclass field order,
  and sensitive to every field value.
* **Robust store** -- corrupted artifacts and schema-version mismatches
  degrade to recompute-and-republish, never to wrong results.
* **Reuse** -- a second (cold-process) run of the same work loads every
  artifact from disk instead of recomputing (asserted via store
  counters), ``--no-cache``/disabled stores never touch disk, and
  ``cache clear`` empties the store.
* **Bit identity** -- cached-path results (compiled-trace oracles,
  persisted warm checkpoints, replayed measurements) equal the uncached
  path's results field for field.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cache import (
    SCHEMA_VERSION,
    ArtifactStore,
    content_key,
    ensure_compiled_trace,
    stable_repr,
    temporary_cache_dir,
)
from repro.cache.shared import dumps_with_workload, loads_with_workload
from repro.sampling import SamplingSpec
from repro.sampling.sampled import _execute_sampled
from repro.sampling.checkpoint import CheckpointStore
from repro.simulator.runner import clear_process_caches
from repro.simulator.simulator import Simulator
from repro.simulator.testing import make_sim_config
from repro.workloads.generator import WorkloadProfile
from repro.workloads.trace import (
    CompiledPathOracle,
    CorrectPathOracle,
    build_workload,
    compile_trace,
)

#: Private medium-sized profile (distinct name keeps this module's
#: artifacts disjoint from every other test's).
MEDIUM_PROFILE = WorkloadProfile(
    name="cache-medium",
    footprint_kb=48.0,
    num_functions=32,
    avg_block_size=5.0,
    hard_branch_fraction=0.10,
    loop_fraction=0.10,
    avg_loop_iterations=5.0,
    call_fraction=0.08,
    dl1_miss_rate=0.03,
    seed=11,
)


@pytest.fixture(autouse=True)
def _reset_cache_overrides():
    """CLI --cache-dir/--no-cache/--no-result-cache set process-wide
    overrides, and store-routed runs attach compiled traces to the
    per-process workload cache; make sure neither leaks across tests."""
    yield
    from repro.cache import configure_result_cache, reset_configuration

    reset_configuration()
    configure_result_cache(None)
    clear_process_caches()


# ----------------------------------------------------------------------
# stable keys
# ----------------------------------------------------------------------
class TestStableKeys:
    def test_equal_content_equal_key(self):
        a = make_sim_config(engine="clgp", max_instructions=4000)
        b = make_sim_config(engine="clgp", max_instructions=4000)
        assert a is not b
        assert stable_repr(a) == stable_repr(b)
        assert content_key("x", a) == content_key("x", b)

    def test_any_field_change_changes_key(self):
        base = make_sim_config(engine="clgp", max_instructions=4000)
        for override in (dict(engine="fdp"), dict(l1_size_bytes=1024),
                         dict(mlp_factor=2.0), dict(l0_enabled=True)):
            assert (stable_repr(base.with_overrides(**override))
                    != stable_repr(base))

    def test_mapping_order_is_irrelevant(self):
        assert stable_repr({"a": 1, "b": 2}) == stable_repr({"b": 2, "a": 1})
        assert stable_repr({1, 2, 3}) == stable_repr({3, 2, 1})

    def test_unstable_values_are_rejected(self):
        with pytest.raises(TypeError):
            stable_repr(object())

    def test_key_stable_across_processes(self):
        """The digest must not depend on this process's hash seed."""
        config = make_sim_config(engine="clgp", max_instructions=4000)
        expected = content_key("warm-checkpoint", config, "gcc", 7)
        src = str(Path(repro.__file__).parents[1])
        code = (
            "from repro.cache.keys import content_key\n"
            "from repro.simulator.testing import make_sim_config\n"
            "config = make_sim_config(engine='clgp', max_instructions=4000)\n"
            "print(content_key('warm-checkpoint', config, 'gcc', 7))\n"
        )
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH=src + os.pathsep + os.environ.get("PYTHONPATH", ""))
            out = subprocess.run(
                [sys.executable, "-c", code], env=env,
                capture_output=True, text=True, check=True,
            )
            assert out.stdout.strip() == expected


# ----------------------------------------------------------------------
# store robustness
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("kindA", "k" * 8, {"payload": [1, 2, 3]})
        assert store.get("kindA", "k" * 8) == {"payload": [1, 2, 3]}
        assert store.stats.stores == 1 and store.stats.hits == 1

    def test_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        assert store.get("kindA", "nothere") is None
        assert store.stats.misses == 1

    def test_corrupted_artifact_is_dropped_and_recomputed(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("kindA", "key1", [1, 2, 3])
        path = store.path_for("kindA", "key1")
        path.write_bytes(b"\x00garbage\xff")
        assert store.get("kindA", "key1") is None
        assert store.stats.corrupt == 1
        assert not path.exists()
        # Recompute-and-republish works on the same key.
        store.put("kindA", "key1", [4, 5])
        assert store.get("kindA", "key1") == [4, 5]

    def test_truncated_pickle_is_corrupt(self, tmp_path):
        import zlib

        store = ArtifactStore(tmp_path / "cache")
        store.put("kindA", "key2", list(range(100)))
        path = store.path_for("kindA", "key2")
        # Valid zlib stream around an invalid pickle.
        path.write_bytes(zlib.compress(b"not a pickle"))
        assert store.get("kindA", "key2") is None
        assert store.stats.corrupt == 1
        assert not path.exists()

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        current = ArtifactStore(tmp_path / "cache")
        current.put("kindA", "key1", "value")
        future = ArtifactStore(tmp_path / "cache", version=SCHEMA_VERSION + 1)
        assert future.get("kindA", "key1") is None
        # Both schemas coexist; clear removes every version.
        future.put("kindA", "key1", "newer")
        assert current.get("kindA", "key1") == "value"
        assert current.clear() == 2
        assert len(current) == 0
        assert future.get("kindA", "key1") is None

    def test_describe_and_len(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("a", "k1", 1)
        store.put("a", "k2", 2)
        store.put("b", "k3", 3)
        summary = store.describe()
        assert summary["a"][0] == 2 and summary["b"][0] == 1
        assert len(store) == 3


# ----------------------------------------------------------------------
# compiled traces
# ----------------------------------------------------------------------
class TestCompiledTrace:
    def test_replay_is_bit_identical_to_the_walk(self):
        plain = build_workload(MEDIUM_PROFILE)
        compiled = build_workload(MEDIUM_PROFILE)
        # Small prefix on purpose: forces the tail-walker extension path.
        compiled.attach_compiled_trace(compile_trace(compiled, 2000))
        reference = plain.new_oracle()
        replayed = compiled.new_oracle()
        assert isinstance(reference, CorrectPathOracle)
        assert isinstance(replayed, CompiledPathOracle)
        for cap in (None, 1, 7, 64, 64, 13, None, 128):
            assert reference.current_address() == replayed.current_address()
            a, b = reference.peek_stream(cap), replayed.peek_stream(cap)
            assert a == b
            reference.advance(a.length)
            replayed.advance(a.length)
        assert (reference.consumed_instructions
                == replayed.consumed_instructions)

    def test_simulation_results_identical(self):
        config = make_sim_config(engine="clgp", max_instructions=2000)
        plain = build_workload(MEDIUM_PROFILE)
        compiled = build_workload(MEDIUM_PROFILE)
        compiled.attach_compiled_trace(
            compile_trace(compiled, config.resolved_warmup_instructions())
        )
        assert (Simulator(config, plain).run()
                == Simulator(config, compiled).run())

    def test_pickle_round_trip_replays_identically(self):
        source = build_workload(MEDIUM_PROFILE)
        trace = compile_trace(source, 4000)
        loaded = pickle.loads(pickle.dumps(trace))
        target = build_workload(MEDIUM_PROFILE)
        target.attach_compiled_trace(loaded)
        config = make_sim_config(max_instructions=1500)
        assert (Simulator(config, target).run()
                == Simulator(config, build_workload(MEDIUM_PROFILE)).run())

    def test_attach_rejects_foreign_trace(self, tiny_workload):
        trace = compile_trace(build_workload(MEDIUM_PROFILE), 1000)
        with pytest.raises(ValueError):
            tiny_workload.attach_compiled_trace(trace)

    def test_ensure_compiled_trace_publishes_and_reloads(self, tmp_path):
        with temporary_cache_dir(tmp_path / "cache") as store:
            clear_process_caches()
            first = build_workload(MEDIUM_PROFILE)
            trace = ensure_compiled_trace(first, 5000)
            assert trace is not None
            assert store.stats.stores == 1
            clear_process_caches()
            second = build_workload(MEDIUM_PROFILE)
            reloaded = ensure_compiled_trace(second, 5000)
            assert store.stats.hits >= 1
            assert reloaded is not trace
            assert list(reloaded.addr[:100]) == list(trace.addr[:100])

    def test_disabled_cache_attaches_nothing(self, tmp_path):
        with temporary_cache_dir(tmp_path / "cache", enabled=False):
            workload = build_workload(MEDIUM_PROFILE)
            assert ensure_compiled_trace(workload, 5000) is None
            assert workload._compiled_trace is None
            assert not (tmp_path / "cache").exists()


# ----------------------------------------------------------------------
# warm checkpoints across processes (workload-shared pickling)
# ----------------------------------------------------------------------
class TestPersistentCheckpoints:
    def test_shared_pickling_keeps_workload_objects_live(self):
        workload = build_workload(MEDIUM_PROFILE)
        config = make_sim_config(max_instructions=1200)
        simulator = Simulator(config, workload)
        simulator.warm_up()
        state = simulator.snapshot()._state
        data = dumps_with_workload(state, workload)
        loaded = loads_with_workload(data, workload)
        assert loaded["prediction"].workload is workload
        assert loaded["prediction"].bbdict is workload.bbdict

    def test_persisted_checkpoint_restores_bit_identically(self, tmp_path):
        config = make_sim_config(engine="fdp", max_instructions=1500)
        with temporary_cache_dir(tmp_path / "cache") as disk:
            clear_process_caches()
            producer_workload = build_workload(MEDIUM_PROFILE)
            producer = CheckpointStore()
            producer.warm_checkpoint(config, producer_workload)
            assert disk.describe().get("checkpoint", (0, 0))[0] == 1

            # "New process": fresh workload, fresh store, same disk.
            clear_process_caches()
            consumer_workload = build_workload(MEDIUM_PROFILE)
            consumer = CheckpointStore()
            stores_before = disk.stats.stores
            checkpoint = consumer.warm_checkpoint(config, consumer_workload)
            assert disk.stats.stores == stores_before   # loaded, not rebuilt

            restored = Simulator(config, consumer_workload)
            restored.restore(checkpoint)
            fresh = Simulator(config, build_workload(MEDIUM_PROFILE))
            fresh.warm_up()
            assert restored.run(1500) == fresh.run(1500)

    def test_positioned_publish_reaches_a_later_enabled_store(self, tmp_path):
        """A positioned checkpoint memoized while caching was disabled must
        still be persisted when the same store later publishes it with a
        live artifact store (memo presence alone proves nothing about
        disk), and republishing to the same store is a no-op."""
        from repro.sampling.checkpoint import CheckpointStore

        config = make_sim_config(max_instructions=2000)
        workload = build_workload(MEDIUM_PROFILE)
        simulator = Simulator(config, workload)
        simulator.warm_up()
        simulator.skip_to(1500)
        checkpoint = simulator.snapshot()
        store = CheckpointStore()
        with temporary_cache_dir(tmp_path / "off", enabled=False):
            store.publish_positioned(config, workload, 1500, checkpoint)
        with temporary_cache_dir(tmp_path / "on") as disk:
            store.publish_positioned(config, workload, 1500, checkpoint)
            assert disk.describe().get("positioned", (0, 0))[0] == 1
            stores_before = disk.stats.stores
            store.publish_positioned(config, workload, 1500, checkpoint)
            assert disk.stats.stores == stores_before   # already on disk
            loaded = CheckpointStore().positioned_checkpoint(
                config, workload, 2000)
            assert loaded is not None and loaded[0] == 1500

    def test_jump_base_is_lazy_without_disk_artifact(self, tmp_path):
        """One-shot sweeps must not pay for snapshotting: the first jump
        request of a pair publishes nothing; a revisited pair builds and
        publishes once."""
        config = make_sim_config(max_instructions=1000)
        with temporary_cache_dir(tmp_path / "cache") as disk:
            clear_process_caches()
            workload = build_workload(MEDIUM_PROFILE)
            store = CheckpointStore()
            assert store.jump_base_checkpoint(config, workload) is None
            assert disk.describe().get("checkpoint", (0, 0))[0] == 0
            second = store.jump_base_checkpoint(config, workload)
            assert second is not None
            assert disk.describe().get("checkpoint", (0, 0))[0] == 1
            # A fresh process restores the published artifact eagerly.
            clear_process_caches()
            other = CheckpointStore()
            loaded = other.jump_base_checkpoint(
                config, build_workload(MEDIUM_PROFILE))
            assert loaded is not None


# ----------------------------------------------------------------------
# end-to-end reuse semantics
# ----------------------------------------------------------------------
def _sampled_once(config, spec):
    """One sampled run in a 'fresh process' (cleared in-memory caches)."""
    clear_process_caches()
    workload = build_workload(MEDIUM_PROFILE)
    return _execute_sampled(config, workload, spec=spec,
                            store=CheckpointStore())


class TestCacheReuse:
    CONFIG = make_sim_config(engine="clgp", max_instructions=6000)
    SPEC = SamplingSpec(max_intervals=4)

    def test_second_run_replays_artifacts(self, tmp_path, monkeypatch):
        with temporary_cache_dir(tmp_path / "cache") as disk:
            cold = _sampled_once(self.CONFIG, self.SPEC)
            assert disk.stats.stores > 0
            cold_stores = disk.stats.stores

            # Warm run: everything must come from disk -- no new
            # artifacts, and no timed simulation at all (the measurement
            # payload short-circuits _measure_intervals).
            import repro.sampling.sampled as sampled_mod

            def no_simulation(*args, **kwargs):
                raise AssertionError(
                    "warm run re-simulated intervals despite cached "
                    "measurements")

            monkeypatch.setattr(sampled_mod, "_measure_intervals",
                                no_simulation)
            warm = _sampled_once(self.CONFIG, self.SPEC)
            assert disk.stats.stores == cold_stores
            assert disk.stats.hits > 0
            assert warm == cold

    def test_cached_and_uncached_results_are_bit_identical(self, tmp_path):
        with temporary_cache_dir(tmp_path / "cache-a"):
            cold = _sampled_once(self.CONFIG, self.SPEC)
            warm = _sampled_once(self.CONFIG, self.SPEC)
        with temporary_cache_dir(tmp_path / "cache-b", enabled=False):
            uncached = _sampled_once(self.CONFIG, self.SPEC)
        clear_process_caches()
        assert cold == warm == uncached

    def test_disabled_cache_touches_no_disk(self, tmp_path):
        target = tmp_path / "cache-disabled"
        with temporary_cache_dir(target, enabled=False):
            _sampled_once(self.CONFIG, self.SPEC)
        assert not target.exists()

    def test_stale_measurements_are_recomputed(self, tmp_path):
        """A measurement payload whose selection fingerprint no longer
        matches (simulating an algorithm change) must be ignored."""
        with temporary_cache_dir(tmp_path / "cache") as disk:
            cold = _sampled_once(self.CONFIG, self.SPEC)
            (kind, path), = (
                (k, p) for k, p in disk.entries() if k == "measurement"
            )
            import zlib

            from repro.cache.store import frame_digest, unframe_digest

            payload = pickle.loads(
                zlib.decompress(unframe_digest(path.read_bytes())))
            payload["selection"] = "0" * 64
            # Re-frame: the rewrite simulates a *valid* artifact from an
            # older algorithm, not on-disk corruption.
            path.write_bytes(
                frame_digest(zlib.compress(pickle.dumps(payload))))
            warm = _sampled_once(self.CONFIG, self.SPEC)
            assert warm == cold


# ----------------------------------------------------------------------
# full-run result caching
# ----------------------------------------------------------------------
class TestResultCache:
    """Persisted complete ``SimulationResult``\\ s: replay policy, keys,
    robustness (the property-based differential guard lives in
    ``tests/test_replay_properties.py``)."""

    CONFIG = make_sim_config(engine="fdp", max_instructions=1500)

    @staticmethod
    def _run_once():
        from repro.simulator.runner import _execute_single, clear_process_caches

        clear_process_caches()
        return _execute_single(TestResultCache.CONFIG, "gzip", 1500)

    def test_warm_run_replays_the_result_without_simulating(
            self, tmp_path, monkeypatch):
        from repro.cache.results import RESULT_CACHE_STATS
        from repro.simulator import runner as runner_mod

        with temporary_cache_dir(tmp_path / "cache") as disk:
            cold = self._run_once()
            assert disk.describe().get("result", (0, 0))[0] == 1

            def no_simulation(*args, **kwargs):
                raise AssertionError("warm run resimulated despite a "
                                     "persisted result")

            monkeypatch.setattr(runner_mod, "Simulator", no_simulation)
            hits_before = RESULT_CACHE_STATS.hits
            warm = self._run_once()
            assert RESULT_CACHE_STATS.hits == hits_before + 1
            assert warm == cold

    def test_disabled_result_cache_stores_and_replays_nothing(self, tmp_path):
        from repro.cache import configure_result_cache

        with temporary_cache_dir(tmp_path / "cache") as disk:
            configure_result_cache(False)
            self._run_once()
            assert disk.describe().get("result", (0, 0))[0] == 0

    def test_result_key_binds_config_workload_and_budget(self):
        from repro.cache.results import result_key

        base = result_key(self.CONFIG, "gzip", 3, 1500)
        assert result_key(self.CONFIG, "gzip", 3, 1500) == base
        assert result_key(self.CONFIG, "gzip", 3, 2000) != base
        assert result_key(self.CONFIG, "gzip", 4, 1500) != base
        assert result_key(self.CONFIG, "mcf", 3, 1500) != base
        assert result_key(self.CONFIG.with_overrides(l1_size_bytes=1024),
                          "gzip", 3, 1500) != base

    def test_corrupted_result_degrades_to_resimulate(self, tmp_path):
        with temporary_cache_dir(tmp_path / "cache") as disk:
            cold = self._run_once()
            (_, path), = ((k, p) for k, p in disk.entries()
                          if k == "result")
            path.write_bytes(b"\x00torn\xff")
            assert self._run_once() == cold
            assert disk.stats.corrupt >= 1

    def test_foreign_payload_under_the_result_key_is_ignored(self, tmp_path):
        from repro.cache.results import result_key

        with temporary_cache_dir(tmp_path / "cache") as disk:
            from repro.workloads.spec2000 import profile_for

            profile = profile_for("gzip")
            disk.put("result", result_key(self.CONFIG, profile.name,
                                          profile.seed, 1500),
                     {"not": "a result"})
            result = self._run_once()
            assert result.committed_instructions >= 1500


# ----------------------------------------------------------------------
# corruption across every artifact kind
# ----------------------------------------------------------------------
class TestEveryKindSurvivesCorruption:
    """Corrupting every persisted artifact of every kind -- torn writes
    (truncation) and rotted bits (bit flips) alike -- must degrade to
    recompute-and-republish with bit-identical final results, never to a
    crash or a silently wrong result."""

    SAMPLED_CONFIG = make_sim_config(engine="clgp", max_instructions=6000)
    FULL_CONFIG = make_sim_config(engine="fdp", max_instructions=1500)

    #: Every kind the toolkit persists; the producer below must create
    #: all of them, so a new kind fails this test until it is covered.
    EXPECTED_KINDS = {
        "trace", "warmup", "bbv", "fprofile", "selection", "checkpoint",
        "positioned", "positioned-index", "frontier", "frontier-index",
        "measurement", "result",
    }

    @classmethod
    def _produce_everything(cls):
        """Cold 'fresh process' runs touching every artifact kind."""
        from repro.simulator.runner import _execute_single

        stratified = _sampled_once(cls.SAMPLED_CONFIG,
                                   SamplingSpec(max_intervals=4))
        kmeans = _sampled_once(cls.SAMPLED_CONFIG,
                               SamplingSpec(max_intervals=4,
                                            method="kmeans"))
        # The warm "checkpoint" kind is published lazily on the sampled
        # path; persist it explicitly so this producer covers every kind.
        clear_process_caches()
        CheckpointStore().warm_checkpoint(cls.SAMPLED_CONFIG,
                                          build_workload(MEDIUM_PROFILE))
        clear_process_caches()
        full = _execute_single(cls.FULL_CONFIG, "gzip", 1500)
        return (stratified, kmeans, full)

    @staticmethod
    def _corrupt(path, mode):
        data = path.read_bytes()
        if mode == "truncate":
            path.write_bytes(data[:len(data) // 2])
        else:   # flip one bit in the middle of the payload
            flipped = bytearray(data)
            flipped[len(flipped) // 2] ^= 0x40
            path.write_bytes(bytes(flipped))

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupting_all_artifacts_degrades_to_recompute(
            self, tmp_path, mode):
        with temporary_cache_dir(tmp_path / "cache") as disk:
            cold = self._produce_everything()
            kinds_on_disk = {kind for kind, _path in disk.entries()}
            assert kinds_on_disk == self.EXPECTED_KINDS
            for _kind, path in disk.entries():
                self._corrupt(path, mode)
            rerun = self._produce_everything()
            assert rerun == cold
            assert disk.stats.corrupt > 0

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_detection_happens_at_the_framing_layer(
            self, tmp_path, mode, monkeypatch):
        """Every kind's on-disk payload is digest-framed (schema v4), and
        corruption is rejected by the frame check -- before zlib or
        pickle ever see the bytes -- not by an incidental
        decompress/unpickle failure."""
        import zlib

        from repro.cache.store import unframe_digest

        with temporary_cache_dir(tmp_path / "cache") as disk:
            self._produce_everything()
            entries = list(disk.entries())
            assert {kind for kind, _ in entries} == self.EXPECTED_KINDS
            for kind, path in entries:
                assert unframe_digest(path.read_bytes()) is not None, (
                    f"{kind} artifact is not digest-framed")
                self._corrupt(path, mode)
                assert unframe_digest(path.read_bytes()) is None

            def no_decompress(*_a, **_k):
                raise AssertionError(
                    "zlib ran on a payload the frame should have rejected")

            def no_loads(*_a, **_k):
                raise AssertionError(
                    "pickle ran on a payload the frame should have rejected")

            monkeypatch.setattr(zlib, "decompress", no_decompress)
            monkeypatch.setattr(pickle, "loads", no_loads)
            before = disk.stats.corrupt
            for kind, path in entries:
                assert disk.get_bytes(kind, path.stem) is None
                assert not path.exists()        # discarded for recompute
            assert disk.stats.corrupt == before + len(entries)

    @pytest.mark.parametrize("kind", sorted(EXPECTED_KINDS))
    def test_single_kind_bitflip_is_contained(self, tmp_path, kind):
        """Corrupting only one kind must recompute just that kind's data
        and still reproduce the cold results exactly."""
        with temporary_cache_dir(tmp_path / "cache") as disk:
            cold = self._produce_everything()
            targets = [path for k, path in disk.entries() if k == kind]
            assert targets, f"producer never persisted kind {kind!r}"
            for path in targets:
                self._corrupt(path, "bitflip")
            assert self._produce_everything() == cold


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCacheCli:
    def test_cache_path_ls_clear(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cli-cache"
        assert main(["cache", "path", "--cache-dir", str(cache_dir)]) == 0
        assert str(cache_dir) in capsys.readouterr().out

        assert main(["run", "base", "--benchmarks", "gzip",
                     "--instructions", "1000",
                     "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "trace" in out and "warmup" in out

        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(cache_dir)]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_cache_fsck_reports_then_repairs(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cli-fsck"
        store = ArtifactStore(cache_dir)
        store.put("kindA", "good", b"g" * 500)
        store.put("kindA", "bad", b"b" * 500)
        bad = store.path_for("kindA", "bad")
        rotted = bytearray(bad.read_bytes())
        rotted[40] ^= 0x01
        bad.write_bytes(bytes(rotted))
        (store.versioned_root / "kindA" / ".orphan.1.tmp").write_bytes(b"x")

        # Report-only: damage means a non-zero exit and nothing removed.
        assert main(["cache", "fsck", "--cache-dir", str(cache_dir)]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out and "orphaned temp" in out
        assert bad.exists()

        assert main(["cache", "fsck", "--repair",
                     "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert not bad.exists()
        assert not list(cache_dir.rglob("*.tmp"))
        assert store.path_for("kindA", "good").exists()

        assert main(["cache", "fsck", "--cache-dir", str(cache_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cache_fsck_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        cache_dir = tmp_path / "cli-fsck-json"
        ArtifactStore(cache_dir).put("kindA", "k", b"x" * 100)
        assert main(["cache", "fsck", "--json",
                     "--cache-dir", str(cache_dir)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["per_kind"]["kindA"] == {"ok": 1, "corrupt": 0}

    def test_cache_stats_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        cache_dir = tmp_path / "cli-stats-json"
        ArtifactStore(cache_dir).put("kindA", "k", b"x" * 100)
        assert main(["cache", "stats", "--json",
                     "--cache-dir", str(cache_dir)]) == 0
        counters = json.loads(capsys.readouterr().out)
        assert counters["store"]["schema_version"] == SCHEMA_VERSION
        assert counters["store"]["root"] == str(cache_dir)
        assert counters["store"]["kinds"]["kindA"]["files"] == 1
        for section in ("store", "result_cache", "supervision", "fsck"):
            assert section in counters
        assert "hits" in counters["store"]
        assert "retries" in counters["supervision"]

    def test_no_cache_flag_bypasses_disk(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cli-nocache"
        assert main(["run", "base", "--benchmarks", "gzip",
                     "--instructions", "1000",
                     "--cache-dir", str(cache_dir), "--no-cache"]) == 0
        assert not cache_dir.exists()

    def test_figure_all_renders_every_figure(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["figure", "all", "--benchmarks", "gzip",
                     "--instructions", "600", "--sampled",
                     "--cache-dir", str(tmp_path / "cli-figall")])
        assert code == 0
        out = capsys.readouterr().out
        for figure in ("Figure 1", "Figure 2", "Figure 4", "Figure 5",
                       "Figure 6", "Figure 7", "Figure 8"):
            assert figure in out


class TestCacheGc:
    """LRU-by-mtime eviction: `ArtifactStore.gc(max_size)` and the CLI."""

    @staticmethod
    def _populated(tmp_path):
        store = ArtifactStore(tmp_path / "gc-cache")
        for index in range(4):
            store.put("kindA", f"key{index}", b"x" * 2000)
        paths = [store.path_for("kindA", f"key{index}") for index in range(4)]
        # Deterministic mtimes: key0 oldest ... key3 newest.
        for age, path in enumerate(paths):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        return store, paths

    def test_evicts_oldest_first_down_to_limit(self, tmp_path):
        store, paths = self._populated(tmp_path)
        total = store.total_size()
        per_file = paths[0].stat().st_size
        report = store.gc(total - per_file)
        assert report.files_removed == 1
        assert report.bytes_removed == per_file
        assert not paths[0].exists()            # oldest went first
        assert all(path.exists() for path in paths[1:])
        assert store.total_size() <= total - per_file

    def test_generous_limit_removes_nothing(self, tmp_path):
        store, paths = self._populated(tmp_path)
        report = store.gc(store.total_size())
        assert report.files_removed == 0 and report.bytes_removed == 0
        assert all(path.exists() for path in paths)

    def test_zero_limit_empties_the_store(self, tmp_path):
        store, paths = self._populated(tmp_path)
        assert store.gc(0).files_removed == 4
        assert store.total_size() == 0

    def test_negative_limit_rejected(self, tmp_path):
        store, _ = self._populated(tmp_path)
        with pytest.raises(ValueError):
            store.gc(-1)

    def test_reads_refresh_lru_order(self, tmp_path):
        store, paths = self._populated(tmp_path)
        # Read the oldest artifact: it becomes most recently used, so the
        # next-oldest (key1) is evicted instead.
        assert store.get("kindA", "key0") is not None
        per_file = paths[0].stat().st_size
        store.gc(store.total_size() - per_file)
        assert paths[0].exists()
        assert not paths[1].exists()

    def test_concurrent_read_refresh_wins_over_eviction(self, tmp_path):
        """An artifact whose mtime a concurrent reader refreshed *between*
        gc's scan and its eviction turn must survive: it just became the
        most recently used file, so unlinking it would evict exactly the
        wrong artifact (regression for the scan/evict race)."""
        store, paths = self._populated(tmp_path)
        entries, total = store._gc_scan()
        # Interleaved read: key0 (scanned as oldest) is refreshed before
        # the eviction pass reaches it.
        assert store.get("kindA", "key0") is not None
        per_file = paths[0].stat().st_size
        removed_files, removed_bytes = store._gc_evict(
            entries, total, total - per_file)
        assert paths[0].exists()                # refreshed: spared
        assert not paths[1].exists()            # next-oldest went instead
        assert removed_files == 1
        assert removed_bytes == per_file

    def test_gc_skips_files_already_removed(self, tmp_path):
        """A file another process evicted between scan and unlink counts
        toward the size target without being credited to this pass."""
        store, paths = self._populated(tmp_path)
        entries, total = store._gc_scan()
        per_file = paths[0].stat().st_size
        paths[0].unlink()
        removed_files, removed_bytes = store._gc_evict(
            entries, total, total - per_file)
        assert removed_files == 0 and removed_bytes == 0
        assert all(path.exists() for path in paths[1:])

    def test_other_schema_versions_are_candidates(self, tmp_path):
        store, paths = self._populated(tmp_path)
        orphan = ArtifactStore(tmp_path / "gc-cache", version=store.version + 1)
        orphan.put("kindB", "old", b"y" * 2000)
        orphan_path = orphan.path_for("kindB", "old")
        os.utime(orphan_path, (999_000, 999_000))   # older than everything
        report = store.gc(store.total_size() - orphan_path.stat().st_size)
        assert report.files_removed == 1
        assert not orphan_path.exists()
        assert all(path.exists() for path in paths)

    def test_gc_reaps_orphaned_temp_files(self, tmp_path):
        """A `.tmp` stranded by a killed writer is counted by
        `total_size` and reaped (and reported) by the next gc pass."""
        store, paths = self._populated(tmp_path)
        pkl_size = store.total_size()
        stranded = store.versioned_root / "kindA" / ".stranded.4242.tmp"
        stranded.write_bytes(b"t" * 321)
        assert store.total_size() == pkl_size + 321
        report = store.gc(pkl_size)             # generous for the .pkl set
        assert report.tmp_files_removed == 1
        assert report.tmp_bytes_removed == 321
        assert report.files_removed == 0        # no artifact was evicted
        assert not stranded.exists()
        assert all(path.exists() for path in paths)
        assert store.total_size() == pkl_size

    def test_cli_gc_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cli-gc"
        store = ArtifactStore(cache_dir)
        for index in range(3):
            store.put("kindA", f"key{index}", b"x" * 5000)
        assert main(["cache", "gc", "--max-size", "0",
                     "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "evicted 3 artifact file(s)" in out
        assert store.total_size() == 0

    def test_cli_gc_accepts_size_suffixes(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cli-gc-suffix"
        store = ArtifactStore(cache_dir)
        store.put("kindA", "key", b"x" * 100)
        assert main(["cache", "gc", "--max-size", "1M",
                     "--cache-dir", str(cache_dir)]) == 0
        assert "evicted 0 artifact file(s)" in capsys.readouterr().out
        assert store.total_size() > 0

    def test_cli_gc_requires_max_size(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "gc",
                     "--cache-dir", str(tmp_path / "cli-gc-req")]) == 2
        assert "--max-size" in capsys.readouterr().err
