"""Tests for the table builders (paper Tables 1-3)."""

from repro.analysis.tables import table1, table2, table3
from repro.simulator.config import SimulationConfig


class TestTable1:
    def test_five_generations(self):
        assert len(table1()) == 5

    def test_paper_design_points_present(self):
        nodes = {row["technology_um"] for row in table1()}
        assert {0.09, 0.045} <= nodes


class TestTable2:
    def test_contains_paper_rows(self):
        rows = table2()
        assert rows["Fetch/Issue/Commit"] == "4 instructions"
        assert rows["RUU Size"] == "64 instructions"
        assert rows["RAS"] == "8-entry"
        assert rows["Pipeline depth"] == "15 stages"
        assert "1K+6K" in rows["Branch Predictor"]
        assert rows["Mem. lat."] == "200 cycles"
        assert "1MB" in rows["L2 Cache"]

    def test_reflects_custom_config(self):
        rows = table2(SimulationConfig(fetch_width=8, ruu_size=128))
        assert rows["Fetch/Issue/Commit"] == "8 instructions"
        assert rows["RUU Size"] == "128 instructions"


class TestTable3:
    def test_both_technologies_present(self):
        rows = table3()
        assert set(rows) == {"0.09um", "0.045um"}

    def test_values_match_paper(self):
        rows = table3()
        assert rows["0.09um"][4096] == 3
        assert rows["0.045um"][4096] == 4
        assert rows["0.09um"][1 << 20] == 17
        assert rows["0.045um"][1 << 20] == 24
