"""Unit tests for the synthetic program generator."""

import pytest

from repro.workloads.generator import (
    CODE_BASE_ADDRESS,
    ProgramGenerator,
    WorkloadProfile,
    generate_program,
)
from repro.workloads.isa import BranchKind


@pytest.fixture(scope="module")
def small_profile():
    return WorkloadProfile(name="unit", footprint_kb=8.0, num_functions=6, seed=3)


@pytest.fixture(scope="module")
def small_cfg(small_profile):
    return generate_program(small_profile)


class TestGeneratedStructure:
    def test_validates(self, small_cfg):
        small_cfg.validate()

    def test_entry_is_main(self, small_cfg):
        assert small_cfg.entry_function == "main"
        assert small_cfg.entry_address == CODE_BASE_ADDRESS

    def test_footprint_near_target(self, small_profile, small_cfg):
        target = small_profile.footprint_kb * 1024
        # main and alignment add overhead; allow a generous band.
        assert 0.5 * target <= small_cfg.footprint_bytes <= 2.5 * target

    def test_number_of_functions(self, small_profile, small_cfg):
        # main + requested functions
        assert len(small_cfg.functions) == small_profile.num_functions + 1

    def test_blocks_do_not_overlap(self, small_cfg):
        blocks = small_cfg.all_blocks()
        for prev, cur in zip(blocks, blocks[1:]):
            assert prev.end_addr <= cur.addr

    def test_call_targets_are_function_entries(self, small_cfg):
        entries = {f.entry for f in small_cfg.functions.values()}
        for block in small_cfg.all_blocks():
            if block.kind is BranchKind.CALL:
                assert block.taken_target in entries

    def test_main_ends_with_loopback(self, small_cfg):
        main = small_cfg.functions["main"]
        last = main.blocks[-1]
        assert last.kind is BranchKind.UNCONDITIONAL
        assert last.taken_target == main.entry

    def test_non_main_functions_end_with_return(self, small_cfg):
        for name, func in small_cfg.functions.items():
            if name == "main":
                continue
            assert func.blocks[-1].kind is BranchKind.RETURN

    def test_main_calls_every_body_function(self, small_cfg):
        main = small_cfg.functions["main"]
        called = {b.taken_target for b in main.blocks if b.kind is BranchKind.CALL}
        body_entries = {
            f.entry for name, f in small_cfg.functions.items()
            if name != "main" and any(
                b.kind is BranchKind.CALL for b in small_cfg.functions["main"].blocks
            )
        }
        # every called target is a real function; at least half the
        # functions are reachable directly from main.
        assert called
        assert len(called) >= (len(small_cfg.functions) - 1) // 2


class TestDeterminismAndKnobs:
    def test_same_seed_same_program(self):
        p = WorkloadProfile(name="det", footprint_kb=6, num_functions=5, seed=42)
        a = generate_program(p)
        b = generate_program(p)
        assert [blk.addr for blk in a.all_blocks()] == [blk.addr for blk in b.all_blocks()]
        assert [blk.size for blk in a.all_blocks()] == [blk.size for blk in b.all_blocks()]

    def test_different_seed_different_program(self):
        a = generate_program(WorkloadProfile(name="x", footprint_kb=6, seed=1))
        b = generate_program(WorkloadProfile(name="x", footprint_kb=6, seed=2))
        assert [blk.size for blk in a.all_blocks()] != [blk.size for blk in b.all_blocks()]

    def test_footprint_knob_scales_program(self):
        small = generate_program(WorkloadProfile(name="s", footprint_kb=4, seed=5))
        large = generate_program(WorkloadProfile(name="l", footprint_kb=64, seed=5))
        assert large.footprint_bytes > 4 * small.footprint_bytes

    def test_block_size_bounds_respected(self):
        profile = WorkloadProfile(name="b", footprint_kb=8, min_block_size=3,
                                  max_block_size=6, seed=9)
        cfg = generate_program(profile)
        for block in cfg.all_blocks():
            assert 2 <= block.size <= max(6, 3)

    def test_conditional_probabilities_in_range(self):
        cfg = generate_program(WorkloadProfile(name="p", footprint_kb=16, seed=13))
        for block in cfg.all_blocks():
            if block.kind is BranchKind.CONDITIONAL:
                assert 0.0 < block.taken_probability < 1.0

    def test_scaled_helper(self):
        p = WorkloadProfile(name="orig", footprint_kb=8)
        q = p.scaled(footprint_kb=32, seed=99)
        assert q.footprint_kb == 32 and q.seed == 99
        assert p.footprint_kb == 8  # original unchanged

    def test_generator_class_direct_use(self, small_profile):
        cfg = ProgramGenerator(small_profile).generate()
        assert cfg.num_blocks > 10
