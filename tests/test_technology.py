"""Tests for the SIA technology roadmap constants (paper Table 1)."""

import pytest

from repro.technology import (
    EVALUATED_NODES,
    TECH_045,
    TECH_090,
    TECHNOLOGY_ROADMAP,
    TechnologyNode,
    resolve_technology,
    table1_rows,
)


class TestTable1Values:
    def test_roadmap_has_five_rows(self):
        assert len(TECHNOLOGY_ROADMAP) == 5

    def test_exact_paper_values(self):
        rows = {n.feature_size_um: n for n in TECHNOLOGY_ROADMAP}
        assert rows[0.18].year == 1999 and rows[0.18].cycle_time_ns == 2.0
        assert rows[0.13].clock_ghz == 1.7 and rows[0.13].cycle_time_ns == 0.59
        assert rows[0.09].year == 2004 and rows[0.09].clock_ghz == 4.0
        assert rows[0.065].clock_ghz == 6.7 and rows[0.065].cycle_time_ns == 0.15
        assert rows[0.045].year == 2010 and rows[0.045].cycle_time_ns == 0.087

    def test_evaluated_nodes(self):
        assert TECH_090.feature_size_um == 0.09
        assert TECH_045.feature_size_um == 0.045
        assert EVALUATED_NODES == (TECH_090, TECH_045)

    def test_monotonic_trends(self):
        clocks = [n.clock_ghz for n in TECHNOLOGY_ROADMAP]
        cycles = [n.cycle_time_ns for n in TECHNOLOGY_ROADMAP]
        assert clocks == sorted(clocks)
        assert cycles == sorted(cycles, reverse=True)

    def test_table1_rows_shape(self):
        rows = table1_rows()
        assert len(rows) == 5
        assert {"year", "technology_um", "clock_ghz", "cycle_time_ns"} <= set(rows[0])


class TestResolveTechnology:
    @pytest.mark.parametrize("spec", [0.09, "0.09", "0.09um", "90nm", TECH_090])
    def test_accepts_many_spellings_090(self, spec):
        assert resolve_technology(spec) is TECH_090

    @pytest.mark.parametrize("spec", [0.045, "0.045um", "45nm"])
    def test_accepts_many_spellings_045(self, spec):
        assert resolve_technology(spec) is TECH_045

    def test_unknown_feature_size(self):
        with pytest.raises(KeyError):
            resolve_technology(0.5)

    def test_garbage_string(self):
        with pytest.raises(KeyError):
            resolve_technology("quantum")

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            resolve_technology([0.09])

    def test_node_name(self):
        assert TECH_090.name == "0.09um"
        assert TECH_045.name == "0.045um"
