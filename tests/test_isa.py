"""Unit tests for the abstract ISA model (repro.workloads.isa)."""

import pytest

from repro.workloads.isa import (
    INSTRUCTION_BYTES,
    BranchKind,
    InstrClass,
    StaticInstruction,
    TERMINATOR_CLASS,
    align_down,
    instructions_in_range,
    line_address,
    span_lines,
)


class TestInstrClass:
    def test_control_classes(self):
        assert InstrClass.BRANCH_COND.is_control
        assert InstrClass.BRANCH_UNCOND.is_control
        assert InstrClass.CALL.is_control
        assert InstrClass.RETURN.is_control
        assert not InstrClass.ALU.is_control
        assert not InstrClass.LOAD.is_control

    def test_memory_classes(self):
        assert InstrClass.LOAD.is_memory
        assert InstrClass.STORE.is_memory
        assert not InstrClass.ALU.is_memory
        assert not InstrClass.CALL.is_memory

    def test_conditional_flag(self):
        assert InstrClass.BRANCH_COND.is_conditional
        assert not InstrClass.BRANCH_UNCOND.is_conditional


class TestTerminatorMapping:
    def test_every_branch_kind_has_terminator_class(self):
        for kind in BranchKind:
            assert kind in TERMINATOR_CLASS

    def test_conditional_maps_to_conditional_branch(self):
        assert TERMINATOR_CLASS[BranchKind.CONDITIONAL] is InstrClass.BRANCH_COND

    def test_none_maps_to_alu(self):
        assert TERMINATOR_CLASS[BranchKind.NONE] is InstrClass.ALU


class TestAddressHelpers:
    def test_align_down(self):
        assert align_down(0, 64) == 0
        assert align_down(63, 64) == 0
        assert align_down(64, 64) == 64
        assert align_down(130, 64) == 128

    def test_line_address(self):
        assert line_address(0x1000, 64) == 0x1000
        assert line_address(0x103C, 64) == 0x1000
        assert line_address(0x1040, 64) == 0x1040

    def test_instructions_in_range(self):
        addrs = list(instructions_in_range(0x100, 4))
        assert addrs == [0x100, 0x104, 0x108, 0x10C]

    def test_instructions_in_range_empty(self):
        assert list(instructions_in_range(0x100, 0)) == []


class TestSpanLines:
    def test_single_line(self):
        assert span_lines(0x1000, 4, 64) == [0x1000]

    def test_exactly_one_full_line(self):
        # 16 four-byte instructions fill one 64-byte line.
        assert span_lines(0x1000, 16, 64) == [0x1000]

    def test_crosses_line_boundary(self):
        # Start near the end of a line.
        assert span_lines(0x1000 + 60, 2, 64) == [0x1000, 0x1040]

    def test_multiple_lines(self):
        lines = span_lines(0x1000, 40, 64)
        assert lines == [0x1000, 0x1040, 0x1080]

    def test_zero_instructions(self):
        assert span_lines(0x1000, 0, 64) == []

    def test_unaligned_start(self):
        lines = span_lines(0x1008, 16, 64)
        assert lines == [0x1000, 0x1040]


class TestStaticInstruction:
    def test_fields(self):
        instr = StaticInstruction(addr=0x200, cls=InstrClass.LOAD)
        assert instr.addr == 0x200
        assert instr.cls is InstrClass.LOAD
        assert not instr.is_block_terminator

    def test_frozen(self):
        instr = StaticInstruction(addr=0x200, cls=InstrClass.LOAD)
        with pytest.raises(AttributeError):
            instr.addr = 0x300

    def test_instruction_size_constant(self):
        assert INSTRUCTION_BYTES == 4
