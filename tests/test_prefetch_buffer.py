"""Tests for the FDP prefetch buffer."""

import pytest

from repro.core.prefetch_buffer import PrefetchBuffer


class TestAllocation:
    def test_allocate_until_full_of_inflight(self):
        buffer = PrefetchBuffer(entries=2)
        assert buffer.allocate(0x1000) is not None
        assert buffer.allocate(0x2000) is not None
        # Both entries are in flight (not valid): nothing is replaceable.
        assert buffer.allocate(0x3000) is None
        assert buffer.occupancy == 2

    def test_duplicate_allocation_rejected(self):
        buffer = PrefetchBuffer(entries=4)
        buffer.allocate(0x1000)
        with pytest.raises(ValueError):
            buffer.allocate(0x1000)

    def test_arrival_sets_valid(self):
        buffer = PrefetchBuffer(entries=2)
        entry = buffer.allocate(0x1000)
        assert entry.in_flight
        entry.mark_arrived(50, "ul2")
        assert entry.valid and entry.ready_cycle == 50 and entry.source == "ul2"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(entries=0)


class TestReplacement:
    def test_used_entries_are_replaced_first(self):
        buffer = PrefetchBuffer(entries=2)
        a = buffer.allocate(0x1000)
        b = buffer.allocate(0x2000)
        a.mark_arrived(1, "ul2")
        b.mark_arrived(1, "ul2")
        buffer.mark_used(b)
        victim_order = buffer.replaceable_entries()
        assert victim_order[0] is b

    def test_unused_valid_entries_replaceable_after_used_ones(self):
        buffer = PrefetchBuffer(entries=2)
        a = buffer.allocate(0x1000)
        b = buffer.allocate(0x2000)
        a.mark_arrived(1, "ul2")
        b.mark_arrived(2, "ul2")
        # No entry has been used; the oldest valid entry is the victim, so a
        # new allocation succeeds (stale wrong-path prefetches cannot clog
        # the buffer forever).
        entry = buffer.allocate(0x3000)
        assert entry is not None
        assert not buffer.contains(0x1000)
        assert buffer.stats.discarded_unused == 1

    def test_inflight_entries_never_replaced(self):
        buffer = PrefetchBuffer(entries=2)
        buffer.allocate(0x1000)
        b = buffer.allocate(0x2000)
        b.mark_arrived(1, "ul2")
        buffer.mark_used(b)
        new = buffer.allocate(0x3000)
        assert new is not None
        assert buffer.contains(0x1000)        # still in flight, protected
        assert not buffer.contains(0x2000)    # the used entry was the victim

    def test_remove(self):
        buffer = PrefetchBuffer(entries=2)
        entry = buffer.allocate(0x1000)
        assert buffer.remove(entry)
        assert not buffer.contains(0x1000)
        assert not buffer.remove(entry)

    def test_mark_used_makes_available_without_discard_accounting(self):
        buffer = PrefetchBuffer(entries=1)
        entry = buffer.allocate(0x1000)
        entry.mark_arrived(1, "ul2")
        buffer.mark_used(entry)
        # Replacing a *used* entry is the normal FDP flow and is not counted
        # as a discarded (wasted) prefetch.
        assert buffer.allocate(0x2000) is not None
        assert buffer.stats.discarded_unused == 0

    def test_inflight_only_buffer_blocks_allocation(self):
        buffer = PrefetchBuffer(entries=1)
        buffer.allocate(0x1000)   # never arrives
        assert buffer.allocate(0x2000) is None


class TestLookupAndStats:
    def test_lookup_counts_hits_and_misses(self):
        buffer = PrefetchBuffer(entries=2)
        buffer.allocate(0x1000)
        assert buffer.lookup(0x1000) is not None
        assert buffer.lookup(0x9000) is None
        assert buffer.stats.hits == 1 and buffer.stats.misses == 1

    def test_get_has_no_stats_side_effect(self):
        buffer = PrefetchBuffer(entries=2)
        buffer.get(0x1000)
        assert buffer.stats.misses == 0

    def test_clear(self):
        buffer = PrefetchBuffer(entries=2)
        buffer.allocate(0x1000)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.has_free_entry()


class TestVictimEquivalence:
    """allocate() evicts via the O(n) _victim scan; replaceable_entries()
    remains the report-facing ordering.  They must agree on the preferred
    victim in every state mix."""

    def _mixed_buffer(self, seed: int) -> PrefetchBuffer:
        import random
        rng = random.Random(seed)
        buffer = PrefetchBuffer(entries=8)
        for i in range(8):
            entry = buffer.allocate(0x1000 * (i + 1))
            if rng.random() < 0.7:
                entry.mark_arrived(cycle=i, source="ul2")
            if rng.random() < 0.5:
                buffer.mark_used(entry)
            if rng.random() < 0.4:
                buffer.touch(entry)
        return buffer

    @pytest.mark.parametrize("seed", range(20))
    def test_victim_matches_replaceable_head(self, seed):
        buffer = self._mixed_buffer(seed)
        candidates = buffer.replaceable_entries()
        victim = buffer._victim()
        if not candidates:
            assert victim is None
        else:
            assert victim is candidates[0]
