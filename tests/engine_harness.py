"""Shared helpers for driving fetch engines in unit tests.

These tests exercise an engine directly (without the full simulator): a
recording back-end accepts every dispatched instruction, and ``drive``
advances the engine + hierarchy cycle by cycle.
"""

from __future__ import annotations

from typing import List

from repro.frontend.fetch_block import FetchBlock, FetchedInstruction


class RecordingBackend:
    """Back-end stand-in that accepts (and records) all dispatches."""

    def __init__(self, capacity: int = 10**9):
        self.capacity = capacity
        self.instructions: List[FetchedInstruction] = []

    def has_space(self) -> bool:
        return len(self.instructions) < self.capacity

    def free_slots(self) -> int:
        return self.capacity - len(self.instructions)

    def dispatch(self, instr: FetchedInstruction, cycle: int) -> bool:
        if not self.has_space():
            return False
        self.instructions.append(instr)
        return True

    @property
    def count(self) -> int:
        return len(self.instructions)

    def sources(self) -> List[str]:
        return [i.fetch_source for i in self.instructions]


def block_for(workload, index: int = 0, **kw) -> FetchBlock:
    """A fetch block covering exactly the ``index``-th basic block of the
    workload's CFG (so instruction classes resolve against real code)."""
    static = workload.cfg.all_blocks()[index]
    return FetchBlock(start=static.addr, length=static.size, **kw)


def blocks_on_distinct_lines(workload, count: int, line_size: int = 64,
                             min_size: int = 1, **kw) -> List[FetchBlock]:
    """``count`` fetch blocks whose first cache lines are all different
    (useful when a test needs several independent prefetch candidates)."""
    chosen: List[FetchBlock] = []
    seen_lines = set()
    for static in workload.cfg.all_blocks():
        line = static.addr - (static.addr % line_size)
        if line in seen_lines or static.size < min_size:
            continue
        seen_lines.add(line)
        chosen.append(FetchBlock(start=static.addr, length=static.size, **kw))
        if len(chosen) == count:
            return chosen
    raise AssertionError(f"workload too small for {count} distinct lines")


def drive(engine, backend, cycles: int, start_cycle: int = 0,
          prefetch: bool = True) -> int:
    """Run ``cycles`` cycles of fetch (+ prefetch + bus).  Returns the total
    number of instructions delivered."""
    delivered = 0
    for cycle in range(start_cycle, start_cycle + cycles):
        delivered += engine.fetch_tick(cycle, backend)
        if prefetch:
            engine.prefetch_tick(cycle)
        engine.hierarchy.tick(cycle)
    return delivered
