"""Tests for fetch blocks, line requests and fetched instructions."""

import pytest

from repro.frontend.fetch_block import FetchBlock, FetchLineRequest, FetchedInstruction
from repro.workloads.isa import InstrClass


class TestFetchBlock:
    def test_basic_geometry(self):
        block = FetchBlock(start=0x1000, length=10)
        assert block.end_addr == 0x1000 + 40
        assert block.instruction_addr(0) == 0x1000
        assert block.instruction_addr(9) == 0x1000 + 36

    def test_correct_prefix_defaults_to_length(self):
        block = FetchBlock(start=0x1000, length=6)
        assert block.correct_prefix == 6
        assert not block.mispredicted

    def test_wrong_path_block_has_zero_prefix(self):
        block = FetchBlock(start=0x1000, length=6, wrong_path=True)
        assert block.correct_prefix == 0

    def test_mispredicted_block_keeps_prefix(self):
        block = FetchBlock(start=0x1000, length=8, mispredicted=True,
                           correct_prefix=3, redirect_target=0x2000)
        assert block.correct_prefix == 3

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            FetchBlock(start=0x1000, length=0)

    def test_prefix_cannot_exceed_length(self):
        with pytest.raises(ValueError):
            FetchBlock(start=0x1000, length=4, correct_prefix=5, mispredicted=True)

    def test_unique_ids(self):
        a = FetchBlock(start=0x1000, length=4)
        b = FetchBlock(start=0x1000, length=4)
        assert a.block_id != b.block_id


class TestLines:
    def test_lines_within_one_cache_line(self):
        block = FetchBlock(start=0x1000, length=8)
        assert block.lines(64) == [0x1000]

    def test_lines_spanning_boundaries(self):
        block = FetchBlock(start=0x1000 + 56, length=5)
        assert block.lines(64) == [0x1000, 0x1040]

    def test_line_requests_cover_all_instructions(self):
        block = FetchBlock(start=0x1000 + 32, length=20)
        requests = block.line_requests(64)
        assert sum(r.num_instructions for r in requests) == 20
        # first request starts at the block start
        assert requests[0].start_addr == block.start
        # indices are contiguous
        running = 0
        for request in requests:
            assert request.first_instr_index == running
            running += request.num_instructions

    def test_line_request_flags_default(self):
        block = FetchBlock(start=0x1000, length=4)
        request = block.line_requests(64)[0]
        assert not request.prefetched
        assert request.occupied
        assert request.line_addr == 0x1000
        assert not request.wrong_path

    def test_wrong_path_propagates_to_requests(self):
        block = FetchBlock(start=0x1000, length=4, wrong_path=True)
        assert block.line_requests(64)[0].wrong_path


class TestInstrClasses:
    def test_classes_resolved_from_bbdict(self, tiny_workload):
        first_block = tiny_workload.cfg.all_blocks()[0]
        block = FetchBlock(start=first_block.addr, length=first_block.size)
        classes = block.instr_classes(tiny_workload.bbdict)
        assert len(classes) == first_block.size
        assert list(classes) == list(first_block.instr_classes)

    def test_classes_cached(self, tiny_workload):
        first_block = tiny_workload.cfg.all_blocks()[0]
        block = FetchBlock(start=first_block.addr, length=first_block.size)
        first = block.instr_classes(tiny_workload.bbdict)
        second = block.instr_classes(tiny_workload.bbdict)
        assert first is second

    def test_classes_across_basic_blocks(self, tiny_workload):
        blocks = tiny_workload.cfg.all_blocks()
        b0, b1 = blocks[0], blocks[1]
        if b0.end_addr != b1.addr:
            pytest.skip("first two blocks are not contiguous")
        fetch_block = FetchBlock(start=b0.addr, length=b0.size + 2)
        classes = fetch_block.instr_classes(tiny_workload.bbdict)
        assert len(classes) == b0.size + 2
        assert classes[b0.size] == b1.instr_classes[0]


class TestFetchedInstruction:
    def test_immutable(self):
        instr = FetchedInstruction(addr=0x1000, cls=InstrClass.ALU, wrong_path=False)
        with pytest.raises(AttributeError):
            instr.addr = 0
        assert instr.fetch_source == "il1"
