"""Unit tests for the static CFG model (repro.workloads.cfg)."""

import pytest

from repro.workloads.cfg import BasicBlock, ControlFlowGraph, Function
from repro.workloads.isa import BranchKind, InstrClass


def make_block(addr, size=4, kind=BranchKind.NONE, target=None, prob=0.5):
    return BasicBlock(addr=addr, size=size, kind=kind, taken_target=target,
                      taken_probability=prob)


class TestBasicBlock:
    def test_addresses(self):
        block = make_block(0x1000, size=5)
        assert block.end_addr == 0x1000 + 5 * 4
        assert block.fall_through == block.end_addr
        assert block.terminator_addr == 0x1000 + 4 * 4

    def test_default_instr_classes(self):
        block = make_block(0x1000, size=3, kind=BranchKind.CONDITIONAL,
                           target=0x2000)
        assert len(block.instr_classes) == 3
        assert block.instr_classes[-1] is InstrClass.BRANCH_COND

    def test_terminator_class_forced_consistent(self):
        block = BasicBlock(
            addr=0x1000, size=2, kind=BranchKind.CALL, taken_target=0x2000,
            instr_classes=[InstrClass.ALU, InstrClass.ALU],
        )
        assert block.instr_classes[-1] is InstrClass.CALL

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            BasicBlock(addr=0x1000, size=0, kind=BranchKind.NONE)

    def test_mismatched_class_length_rejected(self):
        with pytest.raises(ValueError):
            BasicBlock(addr=0x1000, size=3, kind=BranchKind.NONE,
                       instr_classes=[InstrClass.ALU])

    def test_instruction_accessor(self):
        block = make_block(0x1000, size=4, kind=BranchKind.RETURN)
        instrs = block.instructions()
        assert len(instrs) == 4
        assert instrs[0].addr == 0x1000
        assert instrs[-1].is_block_terminator
        assert instrs[-1].cls is InstrClass.RETURN

    def test_instruction_index_bounds(self):
        block = make_block(0x1000, size=2)
        with pytest.raises(IndexError):
            block.instruction(2)

    def test_ends_in_branch(self):
        assert not make_block(0x1000).ends_in_branch
        assert make_block(0x1000, kind=BranchKind.UNCONDITIONAL,
                          target=0x2000).ends_in_branch


class TestControlFlowGraph:
    def _simple_cfg(self):
        blocks_main = [
            make_block(0x1000, size=4, kind=BranchKind.CALL, target=0x2000),
            make_block(0x1010, size=4, kind=BranchKind.UNCONDITIONAL,
                       target=0x1000),
        ]
        blocks_f = [
            make_block(0x2000, size=4, kind=BranchKind.RETURN),
        ]
        main = Function("main", 0x1000, blocks_main)
        f = Function("f", 0x2000, blocks_f)
        return ControlFlowGraph([main, f], entry_function="main")

    def test_entry_address(self):
        cfg = self._simple_cfg()
        assert cfg.entry_address == 0x1000

    def test_block_at_exact(self):
        cfg = self._simple_cfg()
        assert cfg.block_at(0x1000) is not None
        assert cfg.block_at(0x1004) is None

    def test_block_containing_interior_address(self):
        cfg = self._simple_cfg()
        block = cfg.block_containing(0x1008)
        assert block is not None and block.addr == 0x1000

    def test_block_containing_outside(self):
        cfg = self._simple_cfg()
        assert cfg.block_containing(0x9000) is None

    def test_counts(self):
        cfg = self._simple_cfg()
        assert cfg.num_blocks == 3
        assert cfg.num_static_instructions == 12
        assert cfg.footprint_bytes == 48

    def test_validate_ok(self):
        self._simple_cfg().validate()

    def test_validate_missing_target(self):
        bad = Function("main", 0x1000, [
            make_block(0x1000, size=4, kind=BranchKind.UNCONDITIONAL,
                       target=0x5000),
        ])
        cfg = ControlFlowGraph([bad], entry_function="main")
        with pytest.raises(ValueError):
            cfg.validate()

    def test_duplicate_block_address_rejected(self):
        f1 = Function("a", 0x1000, [make_block(0x1000)])
        f2 = Function("b", 0x1000, [make_block(0x1000)])
        with pytest.raises(ValueError):
            ControlFlowGraph([f1, f2], entry_function="a")

    def test_unknown_entry_function_rejected(self):
        f1 = Function("a", 0x1000, [make_block(0x1000)])
        with pytest.raises(KeyError):
            ControlFlowGraph([f1], entry_function="missing")

    def test_function_size_properties(self):
        f = Function("a", 0x1000, [make_block(0x1000, size=4),
                                   make_block(0x1010, size=6)])
        assert f.size_instructions == 10
        assert f.size_bytes == 40
