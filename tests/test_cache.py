"""Tests for the set-associative cache model."""

import pytest

from repro.memory.cache import Cache


class TestConstruction:
    def test_basic_geometry(self):
        cache = Cache("il1", 4096, line_size=64, associativity=2)
        assert cache.num_lines == 64
        assert cache.num_sets == 32

    def test_fully_associative(self):
        cache = Cache("l0", 256, line_size=64, associativity=None)
        assert cache.num_sets == 1
        assert cache.associativity == 4

    def test_associativity_capped_at_num_lines(self):
        cache = Cache("c", 128, line_size=64, associativity=8)
        assert cache.associativity == 2

    @pytest.mark.parametrize("size,line,assoc", [
        (0, 64, 2), (100, 64, 2), (4096, 64, 0), (4096, 0, 2),
    ])
    def test_invalid_geometry_rejected(self, size, line, assoc):
        with pytest.raises(ValueError):
            Cache("bad", size, line_size=line, associativity=assoc)


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache = Cache("c", 1024, 64, 2)
        assert not cache.lookup(0x1000)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_same_line_different_offsets(self):
        cache = Cache("c", 1024, 64, 2)
        cache.fill(0x1000)
        assert cache.lookup(0x103C)  # same 64-byte line

    def test_contains_does_not_count(self):
        cache = Cache("c", 1024, 64, 2)
        cache.fill(0x1000)
        cache.contains(0x1000)
        cache.contains(0x2000)
        assert cache.stats.accesses == 0

    def test_fill_returns_eviction(self):
        # One set, two ways: 128-byte fully associative cache.
        cache = Cache("c", 128, 64, None)
        assert cache.fill(0x0000) is None
        assert cache.fill(0x0040) is None
        evicted = cache.fill(0x0080)
        assert evicted == 0x0000  # LRU

    def test_fill_existing_line_no_eviction(self):
        cache = Cache("c", 128, 64, None)
        cache.fill(0x0000)
        assert cache.fill(0x0000) is None
        assert cache.occupancy() == 1

    def test_lru_order_respects_hits(self):
        cache = Cache("c", 128, 64, None)
        cache.fill(0x0000)
        cache.fill(0x0040)
        cache.lookup(0x0000)          # make line 0 most recently used
        evicted = cache.fill(0x0080)
        assert evicted == 0x0040

    def test_invalidate(self):
        cache = Cache("c", 1024, 64, 2)
        cache.fill(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.invalidate(0x1000)
        assert not cache.contains(0x1000)

    def test_flush(self):
        cache = Cache("c", 1024, 64, 2)
        for i in range(8):
            cache.fill(0x1000 + i * 64)
        cache.flush()
        assert cache.occupancy() == 0

    def test_dunder_contains(self):
        cache = Cache("c", 1024, 64, 2)
        cache.fill(0x1000)
        assert 0x1000 in cache
        assert 0x2000 not in cache


class TestSetMapping:
    def test_conflicting_lines_evict_within_set(self):
        # 2-way, 4 sets; lines mapping to the same set conflict.
        cache = Cache("c", 512, 64, 2)
        stride = cache.num_sets * 64
        cache.fill(0x0000)
        cache.fill(0x0000 + stride)
        cache.fill(0x0000 + 2 * stride)
        assert cache.occupancy() == 2
        assert not cache.contains(0x0000)

    def test_distinct_sets_do_not_interfere(self):
        cache = Cache("c", 512, 64, 2)
        for i in range(cache.num_sets):
            cache.fill(i * 64)
        assert cache.occupancy() == cache.num_sets

    def test_capacity_never_exceeded(self):
        cache = Cache("c", 1024, 64, 4)
        for i in range(200):
            cache.fill(i * 64)
        assert cache.occupancy() <= cache.num_lines


class TestStats:
    def test_hit_and_miss_rates(self):
        cache = Cache("c", 1024, 64, 2)
        cache.lookup(0x1000)
        cache.fill(0x1000)
        cache.lookup(0x1000)
        cache.lookup(0x1000)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert cache.stats.miss_rate == pytest.approx(1 / 3)

    def test_empty_rates(self):
        cache = Cache("c", 1024, 64, 2)
        assert cache.stats.hit_rate == 0.0
        assert cache.stats.miss_rate == 0.0
