"""Property-based tests (hypothesis) on the core data structures.

These check invariants under arbitrary operation sequences:

* caches never exceed capacity and LRU victims are always resident lines,
* the prestage buffer's consumers counters never go negative, capacity is
  never exceeded, and entries with outstanding consumers are never evicted,
* access ports never travel backwards in time,
* the return address stack honours its capacity,
* the correct-path oracle produces a contiguous instruction stream,
* the stream-predictor tables stay within their configured capacity.
"""

from hypothesis import given, settings, strategies as st

from repro.core.prefetch_buffer import PrefetchBuffer
from repro.core.prestage_buffer import PrestageBuffer
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.stream_predictor import StreamPredictor, _StreamTable
from repro.memory.cache import Cache
from repro.memory.port import AccessPort
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.isa import BranchKind, INSTRUCTION_BYTES
from repro.workloads.trace import CorrectPathOracle, ProgramWalker, ActualStream

# ----------------------------------------------------------------------
# caches
# ----------------------------------------------------------------------
line_addrs = st.integers(min_value=0, max_value=255).map(lambda i: i * 64)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["fill", "lookup", "invalidate"]),
                              line_addrs), max_size=200))
def test_cache_capacity_and_consistency(ops):
    cache = Cache("c", 1024, 64, 2)
    for op, addr in ops:
        if op == "fill":
            evicted = cache.fill(addr)
            assert cache.contains(addr)
            if evicted is not None:
                assert not cache.contains(evicted)
        elif op == "lookup":
            cache.lookup(addr)
        else:
            cache.invalidate(addr)
            assert not cache.contains(addr)
        assert cache.occupancy() <= cache.num_lines
    # Every resident line is 64-byte aligned and unique.
    resident = cache.resident_lines()
    assert len(resident) == len(set(resident))
    assert all(line % 64 == 0 for line in resident)


# ----------------------------------------------------------------------
# prestage buffer
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.tuples(st.sampled_from(["prefetch", "consumer", "consume",
                                   "arrive", "reset"]),
                  line_addrs),
        max_size=150,
    ),
)
def test_prestage_buffer_invariants(capacity, ops):
    buffer = PrestageBuffer(entries=capacity)
    cycle = 0
    for op, line in ops:
        cycle += 1
        entry = buffer.get(line)
        if op == "prefetch" and entry is None:
            buffer.allocate_for_prefetch(line)
        elif op == "consumer" and entry is not None:
            buffer.add_consumer(entry)
        elif op == "consume" and entry is not None:
            buffer.consume(entry)
        elif op == "arrive" and entry is not None and not entry.valid:
            entry.mark_arrived(cycle, "ul2")
        elif op == "reset":
            buffer.reset_consumers()
        buffer.check_invariants()
        assert buffer.occupancy <= capacity
        assert buffer.total_consumers() >= 0
    # Replaceable entries are exactly those with no consumers.
    for entry in buffer.replaceable_entries():
        assert entry.consumers == 0


@settings(max_examples=40, deadline=None)
@given(lines=st.lists(line_addrs, unique=True, min_size=1, max_size=30))
def test_prestage_entries_with_consumers_never_evicted(lines):
    buffer = PrestageBuffer(entries=4)
    protected = None
    for i, line in enumerate(lines):
        entry = buffer.get(line)
        if entry is not None:
            buffer.add_consumer(entry)
            continue
        new = buffer.allocate_for_prefetch(line)
        if new is None:
            continue
        if protected is None:
            protected = new
            buffer.add_consumer(new)   # consumers >= 2, never consumed
    if protected is not None:
        assert buffer.get(protected.line_addr) is protected


# ----------------------------------------------------------------------
# FDP prefetch buffer
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["alloc", "arrive", "use"]),
                              line_addrs), max_size=120))
def test_prefetch_buffer_capacity_and_inflight_protection(ops):
    buffer = PrefetchBuffer(entries=4)
    for op, line in ops:
        entry = buffer.get(line)
        if op == "alloc" and entry is None:
            buffer.allocate(line)
        elif op == "arrive" and entry is not None and not entry.valid:
            entry.mark_arrived(1, "ul2")
        elif op == "use" and entry is not None and entry.valid:
            buffer.mark_used(entry)
        assert buffer.occupancy <= 4
        # In-flight entries are never eligible victims.
        assert all(e.valid for e in buffer.replaceable_entries())


# ----------------------------------------------------------------------
# access ports
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    latency=st.integers(min_value=1, max_value=8),
    pipelined=st.booleans(),
    gaps=st.lists(st.integers(min_value=0, max_value=5), max_size=40),
)
def test_access_port_monotonic_completions(latency, pipelined, gaps):
    port = AccessPort(latency=latency, pipelined=pipelined)
    cycle = 0
    last_completion = -1
    for gap in gaps:
        cycle += gap
        completion = port.issue(cycle)
        assert completion >= cycle + latency
        assert completion >= last_completion  # in-order service
        if not pipelined:
            assert completion - cycle >= latency
        last_completion = completion


# ----------------------------------------------------------------------
# return address stack
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(ops=st.lists(st.one_of(
    st.tuples(st.just("push"), st.integers(min_value=0, max_value=2**30)),
    st.tuples(st.just("pop"), st.just(0)),
), max_size=100), capacity=st.integers(min_value=1, max_value=8))
def test_ras_capacity_and_lifo(ops, capacity):
    ras = ReturnAddressStack(capacity)
    model = []
    for op, value in ops:
        if op == "push":
            ras.push(value)
            model.append(value)
            model[:] = model[-capacity:]
        else:
            expected = model.pop() if model else None
            assert ras.pop() == expected
        assert len(ras) == len(model) <= capacity


# ----------------------------------------------------------------------
# oracle / workload
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       advances=st.lists(st.integers(min_value=1, max_value=40),
                         min_size=1, max_size=40))
def test_oracle_stream_contiguity(seed, advances):
    profile = WorkloadProfile(name="prop", footprint_kb=4, num_functions=3,
                              seed=seed)
    cfg = generate_program(profile)
    oracle = CorrectPathOracle(ProgramWalker(cfg, seed=seed))
    for n in advances:
        before = oracle.current_address()
        stream = oracle.peek_stream()
        assert stream.start == before
        step = min(n, stream.length)
        oracle.advance(step)
        if step < stream.length:
            assert oracle.current_address() == before + step * INSTRUCTION_BYTES
        else:
            assert oracle.current_address() == stream.next_addr


# ----------------------------------------------------------------------
# stream predictor tables
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=5000), min_size=1,
                     max_size=300))
def test_stream_table_capacity(keys):
    table = _StreamTable(entries=32, associativity=4)
    for key in keys:
        table.update(key, 8, key + 64, BranchKind.CONDITIONAL)
        assert table.occupancy() <= 32
        entry = table.lookup(key)
        if entry is not None:
            assert entry.tag == key


@settings(max_examples=30, deadline=None)
@given(streams=st.lists(
    st.tuples(st.integers(min_value=0, max_value=200).map(lambda i: 0x1000 + i * 32),
              st.integers(min_value=1, max_value=64)),
    min_size=1, max_size=100))
def test_predictor_predictions_are_well_formed(streams):
    predictor = StreamPredictor(base_entries=64, history_entries=128)
    history = 0
    for start, length in streams:
        actual = ActualStream(
            start=start, length=length, next_addr=start + length * 4 + 64,
            ends_taken=True, terminator_kind=BranchKind.UNCONDITIONAL,
            terminator_addr=start + (length - 1) * 4,
        )
        predictor.train(start, history, actual)
        prediction = predictor.predict(start, history)
        assert prediction.length >= 1
        assert prediction.next_addr % 4 == 0
        history = StreamPredictor.fold_history(history, actual.next_addr, True)
