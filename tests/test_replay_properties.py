"""Property-based differential guard for warm replay and prefix restore.

The artifact cache promises that *every* simulation path replays warm
without changing a single bit:

* **cold** -- an empty store computes and publishes everything,
* **warm-replayed** -- a later invocation of the *same* run returns the
  persisted result (full runs: the complete ``SimulationResult``
  artifact; sampled runs: the per-interval measurement artifacts)
  byte-identically,
* **prefix-restored** -- a sampled run whose **budget was edited**
  restores the deepest positioned checkpoint at or before its skip
  target and fast-forwards only the delta, instead of re-skipping the
  whole prefix from the warm checkpoint -- and still produces exactly
  the result a run against a fresh (or disabled) store produces.

The scenarios here are generated from seeds (randomized engines, cache
sizes, budgets, budget edits and sampling specs), so the guard covers
the cross products no hand-picked test would; any divergence prints the
exact fields that differ.  ``tests/test_checkpoint.py`` holds the
state-level half of the argument (split skips are positionally exact);
this module asserts the end-to-end contract the CLI and CI rely on.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import temporary_cache_dir
from repro.cache.results import RESULT_CACHE_STATS, result_key
from repro.sampling.checkpoint import CheckpointStore, position_key
from repro.sampling.sampled import SamplingSpec, _execute_sampled
from repro.simulator.runner import _execute_single, clear_process_caches
from repro.simulator.testing import make_sim_config

ENGINES = ("baseline", "fdp", "clgp")
BENCHMARKS = ("gzip", "gcc", "mcf", "eon")


def _assert_identical(a, b, label):
    if a == b:
        return
    diffs = [
        f"{f.name}: {getattr(a, f.name)!r} != {getattr(b, f.name)!r}"
        for f in dataclasses.fields(a)
        if getattr(a, f.name) != getattr(b, f.name)
    ]
    raise AssertionError(f"{label} diverged:\n  " + "\n  ".join(diffs))


def _full_scenario(seed: int):
    """One randomized full-run scenario: (config, benchmark, budget)."""
    rng = random.Random(0x5EED0 + seed)
    budget = rng.randrange(1000, 3001, 250)
    config = make_sim_config(
        engine=rng.choice(ENGINES),
        l1_size_bytes=rng.choice([1024, 4096]),
        l0_enabled=rng.random() < 0.3,
        max_instructions=budget,
        warmup_instructions=rng.choice([2000, 4000]),
    )
    return config, rng.choice(BENCHMARKS), budget


def _sampled_scenario(seed: int):
    """One randomized budget-edit scenario.

    The warm-up budget is pinned so the original and the edited budget
    share warm state (and hence a position key) -- the regime positioned
    checkpoints exist for.
    """
    rng = random.Random(0xED17 + seed)
    budget = rng.randrange(5000, 8001, 500)
    edited = budget + rng.randrange(1000, 3001, 500)
    config = make_sim_config(
        engine=rng.choice(ENGINES),
        l1_size_bytes=rng.choice([1024, 4096]),
        max_instructions=budget,
        warmup_instructions=4000,
    )
    spec = SamplingSpec(max_intervals=rng.choice([3, 4, 5]))
    return config, config.with_overrides(max_instructions=edited), \
        rng.choice(BENCHMARKS), spec


class TestFullRunReplay:
    """Cold, warm-replayed and cache-disabled full runs are bit-identical."""

    @pytest.mark.parametrize("seed", range(6))
    def test_cold_warm_and_uncached_agree(self, tmp_path, seed):
        config, benchmark, budget = _full_scenario(seed)
        with temporary_cache_dir(tmp_path / "store"):
            clear_process_caches()
            cold = _execute_single(config, benchmark, budget)
            clear_process_caches()        # "new process": disk tier only
            hits_before = RESULT_CACHE_STATS.hits
            warm = _execute_single(config, benchmark, budget)
            assert RESULT_CACHE_STATS.hits == hits_before + 1, \
                "warm run did not replay the persisted result"
        with temporary_cache_dir(tmp_path / "off", enabled=False):
            clear_process_caches()
            uncached = _execute_single(config, benchmark, budget)
        clear_process_caches()
        _assert_identical(warm, cold, "warm replay")
        _assert_identical(uncached, cold, "cache-disabled run")

    @settings(max_examples=40, deadline=None)
    @given(
        budget_a=st.integers(min_value=1, max_value=10_000),
        budget_b=st.integers(min_value=1, max_value=10_000),
        l1_a=st.sampled_from([1024, 2048, 4096]),
        l1_b=st.sampled_from([1024, 2048, 4096]),
        seed_a=st.integers(min_value=0, max_value=5),
        seed_b=st.integers(min_value=0, max_value=5),
    )
    def test_result_keys_collide_only_for_identical_runs(
            self, budget_a, budget_b, l1_a, l1_b, seed_a, seed_b):
        """A stale replay is impossible by construction: result keys are
        equal exactly when every piece of key material is equal."""
        config_a = make_sim_config(l1_size_bytes=l1_a)
        config_b = make_sim_config(l1_size_bytes=l1_b)
        key_a = result_key(config_a, "gzip", seed_a, budget_a)
        key_b = result_key(config_b, "gzip", seed_b, budget_b)
        same = (budget_a, l1_a, seed_a) == (budget_b, l1_b, seed_b)
        assert (key_a == key_b) == same


class TestBudgetEditPrefixRestore:
    """A budget-edited sampled rerun is bit-identical to a from-scratch
    run of the new budget, whether or not it restored a positioned
    checkpoint along the way."""

    @pytest.mark.parametrize("seed", range(4))
    def test_cold_warm_and_prefix_restored_agree(self, tmp_path, seed):
        original, edited_config, benchmark, spec = _sampled_scenario(seed)
        # Control: what the edited budget produces with no cache at all.
        with temporary_cache_dir(tmp_path / "off", enabled=False):
            clear_process_caches()
            control = _execute_sampled(edited_config, benchmark, spec=spec,
                                       store=CheckpointStore())
        with temporary_cache_dir(tmp_path / "store"):
            # Cold run of the original budget publishes positioned
            # checkpoints at its skip targets.
            clear_process_caches()
            _execute_sampled(original, benchmark, spec=spec,
                             store=CheckpointStore())
            # "New process", edited budget: restores the deepest
            # persisted prefix at or before each skip target.
            clear_process_caches()
            prefix_store = CheckpointStore()
            prefix_restored = _execute_sampled(
                edited_config, benchmark, spec=spec, store=prefix_store)
            # Warm replay of the edited budget: pure measurement replay.
            clear_process_caches()
            warm = _execute_sampled(edited_config, benchmark, spec=spec,
                                    store=CheckpointStore())
        clear_process_caches()
        _assert_identical(prefix_restored, control, "prefix-restored run")
        _assert_identical(warm, control, "warm replay")

    def test_budget_edit_restores_a_positioned_checkpoint(self, tmp_path):
        """Acceptance: the edited run *reuses* a persisted prefix (the
        counter proves it restored a positioned checkpoint instead of
        re-skipping from offset 0) and publishes deeper ones itself."""
        spec = SamplingSpec(max_intervals=4)
        original = make_sim_config(engine="clgp", max_instructions=6000,
                                   warmup_instructions=4000)
        edited = original.with_overrides(max_instructions=9000)
        assert position_key(original) == position_key(edited)
        with temporary_cache_dir(tmp_path / "store"):
            clear_process_caches()
            first = CheckpointStore()
            _execute_sampled(original, "gcc", spec=spec, store=first)
            assert first.positioned_publishes >= 1
            assert first.positioned_hits == 0       # nothing to reuse yet

            clear_process_caches()
            second = CheckpointStore()
            _execute_sampled(edited, "gcc", spec=spec, store=second)
            assert second.positioned_hits >= 1
            assert second.positioned_publishes >= 1
        clear_process_caches()

    def test_position_key_neutralizes_run_length_only(self):
        base = make_sim_config(max_instructions=6000,
                               warmup_instructions=4000)
        assert position_key(base) == position_key(
            base.with_overrides(max_instructions=9000, max_cycles=10**9,
                                sim_loop="cycle"))
        # Anything that shapes warm-up or skip state must split the key.
        assert position_key(base) != position_key(
            base.with_overrides(warmup_instructions=2000))
        assert position_key(base) != position_key(
            base.with_overrides(l1_size_bytes=1024))
        assert position_key(base) != position_key(
            base.with_overrides(engine="fdp"))
        # Default warm-up derives from the budget: budgets whose resolved
        # warm-ups differ must not share positioned checkpoints.
        floating = make_sim_config(max_instructions=20_000,
                                   warmup_instructions=None)
        assert position_key(floating) != position_key(
            floating.with_overrides(max_instructions=40_000))
