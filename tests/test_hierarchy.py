"""Tests for the instruction-side memory hierarchy."""

import pytest

from repro.memory.hierarchy import (
    HierarchyConfig,
    MemoryHierarchy,
    SOURCE_L1,
    SOURCE_L2,
    SOURCE_MEMORY,
)


def drive(hierarchy, cycles):
    """Advance the bus for a number of cycles."""
    for cycle in range(cycles):
        hierarchy.tick(cycle)


class TestConstruction:
    def test_latencies_from_table3(self):
        h = MemoryHierarchy(HierarchyConfig(technology="0.045um", l1_size_bytes=4096))
        assert h.l1_latency == 4
        assert h.l2_latency == 24
        assert h.memory_latency == 200

    def test_latency_override_for_ideal(self):
        h = MemoryHierarchy(HierarchyConfig(
            technology="0.045um", l1_size_bytes=65536, l1_latency_override=1))
        assert h.l1_latency == 1

    def test_l0_optional(self):
        no_l0 = MemoryHierarchy(HierarchyConfig())
        with_l0 = MemoryHierarchy(HierarchyConfig(l0_size_bytes=256))
        assert not no_l0.has_l0 and no_l0.l0 is None
        assert with_l0.has_l0 and with_l0.l0.num_lines == 4

    def test_pipelined_l1_port(self):
        h = MemoryHierarchy(HierarchyConfig(l1_pipelined=True, l1_size_bytes=4096))
        assert h.l1_port.pipelined

    def test_fill_l0_without_l0_raises(self):
        h = MemoryHierarchy(HierarchyConfig())
        with pytest.raises(RuntimeError):
            h.fill_l0(0x1000)


class TestDemandPath:
    def test_l2_hit(self):
        h = MemoryHierarchy(HierarchyConfig(technology="0.09um"))
        h.l2.fill(0x4000)
        results = []
        h.demand_instruction_access(0x4000, 0, lambda c, s: results.append((c, s)))
        drive(h, 1)
        assert results == [(0 + 17, SOURCE_L2)]
        assert h.demand_l2_hits == 1

    def test_l2_miss_goes_to_memory_and_fills_l2(self):
        h = MemoryHierarchy(HierarchyConfig(technology="0.09um"))
        results = []
        h.demand_instruction_access(0x8000, 0, lambda c, s: results.append((c, s)))
        drive(h, 1)
        assert results == [(17 + 200, SOURCE_MEMORY)]
        assert h.l2.contains(0x8000)
        assert h.demand_memory_accesses == 1

    def test_bus_serialisation_delays_second_request(self):
        h = MemoryHierarchy(HierarchyConfig(technology="0.09um"))
        h.l2.fill(0x4000)
        h.l2.fill(0x8000)
        results = []
        h.demand_instruction_access(0x4000, 0, lambda c, s: results.append(c))
        h.demand_instruction_access(0x8000, 0, lambda c, s: results.append(c))
        drive(h, 2)
        assert results == [17, 1 + 17]


class TestPrefetchPath:
    def test_served_by_l1_without_bus(self):
        h = MemoryHierarchy(HierarchyConfig(technology="0.045um", l1_size_bytes=4096))
        h.l1.fill(0x2000)
        results = []
        h.prefetch_access(0x2000, 5, lambda c, s: results.append((c, s)), probe_l1=True)
        # No tick needed: served locally.
        assert results == [(5 + h.l1_latency, SOURCE_L1)]
        assert h.bus.pending == 0

    def test_l1_probe_disabled_goes_to_l2(self):
        h = MemoryHierarchy(HierarchyConfig(technology="0.045um"))
        h.l1.fill(0x2000)
        h.l2.fill(0x2000)
        results = []
        h.prefetch_access(0x2000, 0, lambda c, s: results.append((c, s)), probe_l1=False)
        drive(h, 1)
        assert results == [(24, SOURCE_L2)]

    def test_prefetch_miss_goes_to_memory(self):
        h = MemoryHierarchy(HierarchyConfig(technology="0.045um"))
        results = []
        h.prefetch_access(0x6000, 0, lambda c, s: results.append((c, s)))
        drive(h, 1)
        assert results == [(24 + 200, SOURCE_MEMORY)]
        assert h.prefetch_memory_accesses == 1

    def test_prefetch_loses_arbitration_to_demand(self):
        h = MemoryHierarchy(HierarchyConfig(technology="0.09um"))
        h.l2.fill(0x4000)
        h.l2.fill(0x8000)
        order = []
        h.prefetch_access(0x4000, 0, lambda c, s: order.append("prefetch"),
                          probe_l1=False)
        h.demand_instruction_access(0x8000, 0, lambda c, s: order.append("demand"))
        drive(h, 2)
        assert order == ["demand", "prefetch"]


class TestDataPath:
    def test_data_l2_hit_latency(self):
        h = MemoryHierarchy(HierarchyConfig(technology="0.09um"))
        results = []
        h.demand_data_access(0, misses_l2=False, on_complete=lambda c, s: results.append(c))
        drive(h, 1)
        assert results == [17]

    def test_data_memory_latency(self):
        h = MemoryHierarchy(HierarchyConfig(technology="0.09um"))
        results = []
        h.demand_data_access(0, misses_l2=True, on_complete=lambda c, s: results.append(c))
        drive(h, 1)
        assert results == [217]


class TestFillHelpers:
    def test_fill_emergency_prefers_l0(self):
        h = MemoryHierarchy(HierarchyConfig(l0_size_bytes=256))
        h.fill_emergency(0x3000)
        assert h.l0.contains(0x3000)
        assert not h.l1.contains(0x3000)

    def test_fill_emergency_without_l0_uses_l1(self):
        h = MemoryHierarchy(HierarchyConfig())
        h.fill_emergency(0x3000)
        assert h.l1.contains(0x3000)

    def test_line_address_helper(self):
        h = MemoryHierarchy(HierarchyConfig())
        assert h.line_address(0x1234) == 0x1200 + 0x0  # 64-byte aligned
        assert h.line_address(0x1234) % 64 == 0
