"""Experiment-service tests: codec, fair scheduler, HTTP/SSE end-to-end,
dedup economics, quotas/backpressure, chaos, and the concurrent
execution gate the service's scheduler depends on."""

import json
import threading
import time
from contextlib import contextmanager

import pytest

from repro.api import ExecutionOptions, ExperimentSpec, Session
from repro.api.session import _ExecutionGate
from repro.faults import configure_faults, restore_faults, snapshot_faults
from repro.sampling import SamplingSpec
from repro.service import (
    FairScheduler,
    QueueFull,
    QuotaExceeded,
    RetryLater,
    ServerThread,
    ServiceClient,
    ServiceError,
)
from repro.service import codec
from repro.service.codec import CodecError

TERMINAL = ("done", "failed", "cancelled")


def small_spec(scheme="CLGP", benchmarks="gcc", instructions=2500, **kw):
    return ExperimentSpec(scheme, benchmarks,
                          max_instructions=instructions, **kw)


@contextmanager
def service(tmp_path, **kwargs):
    with Session(jobs=1, cache_dir=str(tmp_path / "svc-cache")) as session:
        with ServerThread(session, **kwargs) as thread:
            yield thread, session


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_spec_round_trip(self):
        spec = ExperimentSpec(
            ("CLGP", "base+L0"), ("gcc", "perlbmk"), max_instructions=4000,
            l1_sizes=(2048, 4096), config_overrides={"warmup_instructions": 5},
            name="round-trip")
        decoded = codec.decode_spec(codec.encode_spec(spec))
        assert decoded == spec
        assert codec.request_key(decoded) == codec.request_key(spec)

    def test_decode_spec_rejects_unknown_fields(self):
        with pytest.raises(CodecError, match="unknown spec field"):
            codec.decode_spec({"scheme": "CLGP", "turbo": True})

    def test_decode_spec_requires_scheme(self):
        with pytest.raises(CodecError, match="scheme"):
            codec.decode_spec({"benchmarks": "gcc"})

    def test_decode_spec_surfaces_frozen_spec_validation(self):
        with pytest.raises(CodecError, match="unknown scheme"):
            codec.decode_spec({"scheme": "WARP-DRIVE"})
        with pytest.raises(CodecError, match="max_instructions"):
            codec.decode_spec({"scheme": "CLGP", "max_instructions": -1})

    def test_decode_spec_must_be_object(self):
        with pytest.raises(CodecError, match="JSON object"):
            codec.decode_spec(["CLGP"])

    def test_options_round_trip_with_sampling(self):
        options = ExecutionOptions(
            sampled=True, sampling=SamplingSpec(max_intervals=3),
            result_cache=False, task_timeout=4.0, max_retries=1)
        decoded = codec.decode_options(codec.encode_options(options))
        assert decoded == options

    def test_decode_options_rejects_server_policy_fields(self):
        for field, value in (("jobs", 4), ("cache_dir", "/tmp/x"),
                             ("cache", False), ("faults", "worker_kill:1")):
            with pytest.raises(CodecError, match="server policy"):
                codec.decode_options({field: value})

    def test_decode_options_rejects_unknown_sampling_fields(self):
        with pytest.raises(CodecError, match="options.sampling"):
            codec.decode_options({"sampling": {"wat": 1}})

    def test_request_key_ignores_execution_only_options(self):
        spec = small_spec()
        base = codec.request_key(spec, ExecutionOptions())
        assert codec.request_key(
            spec, ExecutionOptions(result_cache=False, task_timeout=9,
                                   max_retries=0)) == base
        assert codec.request_key(spec, ExecutionOptions(sampled=True)) != base

    def test_request_key_separates_specs(self):
        assert codec.request_key(small_spec(scheme="CLGP")) \
            != codec.request_key(small_spec(scheme="base+L0"))

    def test_canonical_json_is_deterministic(self):
        assert codec.canonical_json({"b": 1, "a": [1, 2]}) \
            == b'{"a":[1,2],"b":1}'


# ----------------------------------------------------------------------
# scheduler
# ----------------------------------------------------------------------
class TestFairScheduler:
    def test_round_robin_across_clients(self):
        scheduler = FairScheduler(quota=8, max_queue_depth=64)
        for index in range(3):
            scheduler.submit("chatty", f"chatty-{index}")
        scheduler.submit("quiet", "quiet-0")
        order = [scheduler.next_ready() for _ in range(4)]
        # The quiet client's single job is served in the first sweep,
        # not behind the chatty client's whole backlog.
        assert "quiet-0" in order[:2]
        assert order.count(None) == 0

    def test_quota_counts_queued_and_running(self):
        scheduler = FairScheduler(quota=2, max_queue_depth=64)
        scheduler.submit("c", "j1")
        scheduler.submit("c", "j2")
        with pytest.raises(QuotaExceeded):
            scheduler.submit("c", "j3")
        assert scheduler.next_ready() == "j1"   # running now, still charged
        with pytest.raises(QuotaExceeded):
            scheduler.submit("c", "j3")
        scheduler.finish("c")
        scheduler.submit("c", "j3")   # released -> accepted

    def test_queue_depth_backpressure(self):
        scheduler = FairScheduler(quota=8, max_queue_depth=2)
        scheduler.submit("a", "j1")
        scheduler.submit("b", "j2")
        with pytest.raises(QueueFull) as excinfo:
            scheduler.submit("c", "j3")
        assert excinfo.value.retry_after >= 1

    def test_retry_after_tracks_observed_durations(self):
        scheduler = FairScheduler(quota=8, max_queue_depth=64)
        for _ in range(20):
            scheduler.observe_duration(60.0)
        scheduler.submit("a", "j1")
        assert scheduler.retry_after() > 10
        assert scheduler.retry_after() <= 120

    def test_discard_releases_quota(self):
        scheduler = FairScheduler(quota=1, max_queue_depth=8)
        scheduler.submit("a", "j1")
        assert scheduler.discard("a", "j1") is True
        scheduler.submit("a", "j2")   # quota free again
        assert scheduler.discard("a", "missing") is False


# ----------------------------------------------------------------------
# execution gate (satellite: same-policy sessions run concurrently)
# ----------------------------------------------------------------------
class TestExecutionGate:
    def test_same_scope_entries_overlap(self):
        gate = _ExecutionGate()
        log = []
        gate.enter_scope(("a",), lambda: log.append("apply") or
                         (lambda: log.append("restore")))
        entered = threading.Event()

        def second():
            gate.enter_scope(("a",), lambda: log.append("apply-2"))
            entered.set()
            gate.leave_scope()

        thread = threading.Thread(target=second)
        thread.start()
        assert entered.wait(5), "identical scope should not serialize"
        thread.join(5)
        assert log == ["apply"]   # apply ran once, for the first entrant
        gate.leave_scope()
        assert log == ["apply", "restore"]   # last-out restores

    def test_conflicting_scope_waits(self):
        gate = _ExecutionGate()
        gate.enter_scope(("a",), lambda: None)
        entered = threading.Event()

        def second():
            gate.enter_scope(("b",), lambda: None)
            entered.set()
            gate.leave_scope()

        thread = threading.Thread(target=second)
        thread.start()
        assert not entered.wait(0.3), "conflicting scopes must serialize"
        gate.leave_scope()
        assert entered.wait(5)
        thread.join(5)

    def test_exclusive_lock_blocks_entries(self):
        gate = _ExecutionGate()
        with gate:
            entered = threading.Event()
            thread = threading.Thread(
                target=lambda: (gate.enter_scope(("a",), lambda: None),
                                entered.set(), gate.leave_scope()))
            thread.start()
            assert not entered.wait(0.3)
        assert entered.wait(5)
        thread.join(5)

    def test_waiting_exclusive_blocks_new_scope_entrants(self):
        """Writer preference: a blocked exclusive acquirer (``close()``)
        must not be starved by a steady stream of same-scope entrants --
        they queue behind it instead of slipping in ahead."""
        gate = _ExecutionGate()
        gate.enter_scope(("a",), lambda: None)
        acquired = threading.Event()
        entered = threading.Event()

        def exclusive():
            with gate:
                acquired.set()

        closer = threading.Thread(target=exclusive)
        closer.start()
        deadline = time.time() + 5   # wait until it is blocked in acquire
        while not gate._exclusive_waiting and time.time() < deadline:
            time.sleep(0.01)
        assert gate._exclusive_waiting == 1
        entrant = threading.Thread(
            target=lambda: (gate.enter_scope(("a",), lambda: None),
                            entered.set(), gate.leave_scope()))
        entrant.start()
        assert not entered.wait(0.3), \
            "same-scope entrant must queue behind a waiting exclusive"
        assert not acquired.is_set()
        gate.leave_scope()   # last active execution leaves
        assert acquired.wait(5), "exclusive acquirer starved"
        assert entered.wait(5), "entrant must proceed after the release"
        closer.join(5)
        entrant.join(5)
        assert gate.idle()

    def test_apply_failure_releases_scope(self):
        gate = _ExecutionGate()

        def broken():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            gate.enter_scope(("a",), broken)
        # The gate must be reusable afterwards (conflicting scope too).
        gate.enter_scope(("b",), lambda: None)
        gate.leave_scope()
        assert gate.idle()

    def test_same_policy_submissions_run_concurrently(self, tmp_path):
        with Session(jobs=1, cache_dir=str(tmp_path / "cache")) as session:
            second_started = threading.Event()
            overlaps = []

            def first_listener(event):
                if event.kind == "task":
                    overlaps.append(second_started.wait(30))

            first = session.submit(
                small_spec(benchmarks=("gcc", "perlbmk"), name="conc-1"))
            first.add_listener(first_listener)
            second = session.submit(
                small_spec(scheme="base+L0", name="conc-2"))

            # Watch status, not result: *started* is what must overlap.
            def watch():
                while second.status() == "queued":
                    time.sleep(0.01)
                second_started.set()

            poller = threading.Thread(target=watch, daemon=True)
            poller.start()
            first.result()
            second.result()
            poller.join(5)
            assert overlaps and all(overlaps), \
                "second same-policy run never started while first ran"


# ----------------------------------------------------------------------
# progress / ETA (satellite)
# ----------------------------------------------------------------------
class TestProgressEta:
    def test_progress_keeps_tuple_contract_and_gains_eta(self, tmp_path):
        with Session(jobs=1, cache_dir=str(tmp_path / "cache")) as session:
            handle = session.submit(
                small_spec(benchmarks=("gcc", "perlbmk", "vortex"),
                           instructions=1500))
            events = list(handle.events())
            handle.result()
            progress = handle.progress()
            assert progress == (3, 3)           # tuple equality preserved
            completed, total = progress          # unpacking preserved
            assert (completed, total) == (3, 3)
            assert progress.tasks_per_second > 0
            assert progress.eta_seconds == 0.0
            task_events = [e for e in events if e.kind == "task"]
            assert task_events, "expected per-task events"
            for event in task_events:
                assert event.tasks_per_second > 0
                assert event.eta_seconds >= 0.0
            # ETA falls to zero as the run completes.
            assert task_events[-1].eta_seconds == 0.0


# ----------------------------------------------------------------------
# end-to-end over real sockets
# ----------------------------------------------------------------------
class TestServiceEndToEnd:
    def test_submit_status_result_events(self, tmp_path):
        with service(tmp_path, parallel=2) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="e2e")
            assert client.health() == {"status": "ok"}
            submitted = client.submit(small_spec(name="e2e-1"))
            assert submitted["dedup"] == "new"
            body = client.result_bytes(submitted["job"])
            decoded = json.loads(body)
            assert decoded["codec"] == 1
            assert decoded["results"][0]["type"] == "result"
            assert decoded["results"][0]["workload"] == "gcc"
            assert decoded["hmean_ipc"]
            status = client.status(submitted["job"])
            assert status["status"] == "done"
            assert status["completed"] == status["total"] == 1
            kinds = [e["kind"] for e in client.events(submitted["job"])]
            assert kinds[0] == "submitted"
            assert kinds[-1] == "done"
            assert "task" in kinds

    def test_dedup_economics_concurrent_clients(self, tmp_path):
        clients = 6
        with service(tmp_path, parallel=2, quota=8) as (thread, _session):
            spec = small_spec(name="dedup-spec")
            bodies = [None] * clients
            submissions = [None] * clients

            def worker(index):
                client = ServiceClient(port=thread.port,
                                       client_id=f"client-{index}")
                submissions[index] = client.submit(spec)
                bodies[index] = client.result_bytes(
                    submissions[index]["job"])

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert all(body is not None for body in bodies)
            # Exactly one simulation ran; everyone else joined it.
            stats = ServiceClient(port=thread.port).stats()["service"]
            assert stats["runs_started"] == 1
            assert stats["submitted"] == clients
            assert stats["deduplicated"] == clients - 1
            # Byte-identical responses for every subscriber.
            assert len({body for body in bodies}) == 1
            # All submissions share one job id.
            assert len({s["job"] for s in submissions}) == 1

    def test_acceptance_grid_8_clients_4_specs(self, tmp_path):
        """The PR's acceptance scenario: 8 concurrent clients submit 4
        unique specs (each duplicated) -> exactly 4 simulations,
        byte-identical per-spec bodies, ordered SSE for every client."""
        schemes = ("CLGP", "CLGP+L0", "base+L0", "FDP+L0")
        specs = [small_spec(scheme=scheme, instructions=2000,
                            name=f"grid-{index}")
                 for index, scheme in enumerate(schemes)]
        with service(tmp_path, parallel=2, quota=8) as (thread, _session):
            bodies = [None] * 8
            sequences = [None] * 8

            def worker(index):
                client = ServiceClient(port=thread.port,
                                       client_id=f"grid-client-{index}")
                spec = specs[index % len(specs)]
                job = client.submit(spec, wait_on_quota=True)
                events = list(client.events(job["job"],
                                            subscriber=job["subscriber"]))
                sequences[index] = [event["_seq"] for event in events]
                assert events[-1]["kind"] == "done"
                bodies[index] = client.result_bytes(job["job"])

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert all(body is not None for body in bodies)
            for index in range(4):
                assert bodies[index] == bodies[index + 4], \
                    f"spec {index}: duplicated submission bodies differ"
            assert len(set(bodies)) == 4, "disjoint specs collapsed"
            for seqs in sequences:
                assert seqs == sorted(seqs), "SSE stream out of order"
            stats = ServiceClient(port=thread.port).stats()["service"]
            assert stats["runs_started"] == 4, stats
            assert stats["submitted"] == 8
            assert stats["deduplicated"] == 4

    def test_disjoint_specs_do_not_collapse(self, tmp_path):
        with service(tmp_path, parallel=2) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="disjoint")
            first = client.submit(small_spec(scheme="CLGP", name="d1"))
            second = client.submit(small_spec(scheme="base+L0", name="d2"))
            assert first["job"] != second["job"]
            assert first["dedup"] == second["dedup"] == "new"
            client.result_bytes(first["job"])
            client.result_bytes(second["job"])
            stats = client.stats()["service"]
            assert stats["runs_started"] == 2
            assert stats["deduplicated"] == 0

    def test_completed_jobs_replay_without_simulation(self, tmp_path):
        with service(tmp_path) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="replay")
            spec = small_spec(name="replay-spec")
            first = client.submit(spec)
            body = client.result_bytes(first["job"])
            # Resubmit after completion: joined, zero new runs, and the
            # stored bytes come back verbatim.
            again = client.submit(spec)
            assert again["dedup"] == "joined"
            assert again["status"] == "done"
            assert client.result_bytes(again["job"]) == body
            assert client.stats()["service"]["runs_started"] == 1

    def test_terminal_jobs_evicted_beyond_max_jobs(self, tmp_path):
        with service(tmp_path, max_jobs=2) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="evict")
            schemes = ("CLGP", "base+L0", "FDP+L0")
            jobs = []
            for index, scheme in enumerate(schemes):
                submitted = client.submit(
                    small_spec(scheme=scheme, name=f"ev-{index}"))
                client.result_bytes(submitted["job"])
                jobs.append(submitted["job"])
            assert client.stats()["service"]["jobs"] <= 2
            status, _, _ = client._request("GET",
                                           f"/v1/experiments/{jobs[0]}")
            assert status == 404, "oldest terminal job should be evicted"
            # The evicted key re-submits as a fresh job whose result
            # replays from the content-addressed cache: one more job,
            # zero new simulations.
            before = client.stats()["cache"]["result_cache"]["hits"]
            again = client.submit(small_spec(scheme=schemes[0],
                                             name="ev-0"))
            assert again["dedup"] == "new"
            client.result_bytes(again["job"])
            after = client.stats()["cache"]["result_cache"]["hits"]
            assert after > before

    def test_quota_exceeded_gets_429_with_retry_after(self, tmp_path):
        with service(tmp_path, parallel=1, quota=1) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="greedy")
            other = ServiceClient(port=thread.port, client_id="patient")
            first = client.submit(small_spec(instructions=12000, name="q1"))
            with pytest.raises(RetryLater) as excinfo:
                client.submit(small_spec(scheme="base+L0", name="q2"))
            assert excinfo.value.retry_after >= 1
            # Another identity is not affected by the greedy client's
            # quota; its job queues behind the running one.
            queued = other.submit(small_spec(scheme="FDP+L0", name="q3"))
            assert queued["dedup"] == "new"
            stats = client.stats()["service"]
            assert stats["rejected_quota"] == 1
            client.result_bytes(first["job"])
            other.result_bytes(queued["job"])
            # Quota released after completion: the retry now succeeds.
            retried = client.submit(small_spec(scheme="base+L0", name="q2"))
            client.result_bytes(retried["job"])

    def test_sse_streams_are_ordered(self, tmp_path):
        with service(tmp_path, parallel=2) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="sse")
            spec = small_spec(benchmarks=("gcc", "perlbmk"), name="sse-spec")
            submitted = client.submit(spec)
            events = list(client.events(submitted["job"],
                                        subscriber=submitted["subscriber"]))
            sequences = [event["_seq"] for event in events]
            assert sequences == sorted(sequences)
            kinds = [event["kind"] for event in events]
            assert kinds[0] == "submitted"
            assert kinds[1] == "started"
            assert kinds[-1] == "done"
            completed = [event["completed"] for event in events]
            assert completed == sorted(completed)
            task_events = [e for e in events if e["kind"] == "task"]
            assert len(task_events) == 2
            assert task_events[-1]["tasks_per_second"] > 0

    def test_cancel_on_disconnect_refcounted(self, tmp_path):
        with service(tmp_path, parallel=2) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="leaver")
            slow = small_spec(benchmarks="all", instructions=20000,
                              name="abandoned")
            submitted = client.submit(slow)
            stream = client.events(submitted["job"],
                                   subscriber=submitted["subscriber"])
            first = next(stream)
            assert first["kind"] == "submitted"
            stream.close()   # sole subscriber disconnects mid-run
            deadline = time.time() + 30
            while time.time() < deadline:
                status = client.status(submitted["job"])["status"]
                if status in TERMINAL:
                    break
                time.sleep(0.1)
            assert status == "cancelled"
            assert client.stats()["service"]["cancelled"] == 1

    def test_disconnect_with_remaining_subscriber_keeps_running(
            self, tmp_path):
        with service(tmp_path, parallel=2) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="stayer")
            spec = small_spec(benchmarks=("gcc", "perlbmk", "vortex"),
                              instructions=6000, name="kept")
            first = client.submit(spec)
            second = client.submit(spec)   # joined: second subscriber
            assert second["dedup"] == "joined"
            leaver = client.events(first["job"],
                                   subscriber=first["subscriber"])
            next(leaver)
            stayer = client.events(first["job"],
                                   subscriber=second["subscriber"])
            next(stayer)
            leaver.close()
            kinds = [event["kind"] for event in stayer]
            assert kinds[-1] == "done", \
                "job must survive one of two subscribers leaving"

    def test_explicit_cancel(self, tmp_path):
        with service(tmp_path, parallel=1) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="canceller")
            submitted = client.submit(
                small_spec(benchmarks="all", instructions=20000,
                           name="doomed"))
            client.cancel(submitted["job"])
            deadline = time.time() + 30
            while time.time() < deadline:
                status = client.status(submitted["job"])["status"]
                if status in TERMINAL:
                    break
                time.sleep(0.1)
            assert status == "cancelled"
            with pytest.raises(ServiceError) as excinfo:
                client.result(submitted["job"])
            assert excinfo.value.status == 409

    def test_bad_requests(self, tmp_path):
        with service(tmp_path) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="fuzzer")
            status, _, payload = client._request(
                "POST", "/v1/experiments", body=b"{not json")
            assert status == 400
            status, _, _ = client._request(
                "POST", "/v1/experiments",
                body=codec.canonical_json({"spec": {"scheme": "NOPE"}}))
            assert status == 400
            status, _, _ = client._request("GET", "/v1/experiments/job-404")
            assert status == 404
            status, _, _ = client._request("GET", "/v1/nope")
            assert status == 404
            status, _, _ = client._request("GET", "/v1/experiments")
            assert status == 405

    def test_client_options_rejected_for_server_policy(self, tmp_path):
        with service(tmp_path) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="sneaky")
            status, _, payload = client._request(
                "POST", "/v1/experiments",
                body=codec.canonical_json({
                    "spec": codec.encode_spec(small_spec()),
                    "options": {"faults": "worker_kill:1.0"}}))
            assert status == 400
            assert b"server policy" in payload


# ----------------------------------------------------------------------
# chaos: request_drop at the HTTP boundary
# ----------------------------------------------------------------------
class TestServiceChaos:
    def test_request_drop_is_survived_by_retrying_client(self, tmp_path):
        snapshot = snapshot_faults()
        try:
            # Only request_drop: the simulations themselves stay clean,
            # so the surviving response must equal the fault-free one.
            configure_faults("request_drop:0.4,seed:7")
            with service(tmp_path, parallel=2) as (thread, _session):
                client = ServiceClient(port=thread.port,
                                       client_id="chaos-client", retries=12)
                spec = small_spec(name="chaos-spec")
                submitted = client.submit(spec)
                chaos_body = client.result_bytes(submitted["job"])
                dropped = client.stats()["service"]["dropped_requests"]
        finally:
            restore_faults(snapshot)
        with service(tmp_path, parallel=2) as (thread, _session):
            client = ServiceClient(port=thread.port, client_id="calm")
            submitted = client.submit(spec)
            calm_body = client.result_bytes(submitted["job"])
        assert chaos_body == calm_body, \
            "request_drop chaos must not change response bytes"
        # Deterministic: with seed 7 this client's first submit POST is
        # dropped, so the counter is guaranteed non-zero.
        assert dropped > 0
