"""Tests for the sampled-simulation subsystem (BBV, selection, runner)."""

import pytest

from repro.sampling import (
    SamplingSpec,
    get_selection,
    kmeans,
    profile_workload,
    project_counts,
    select_intervals,
    select_stratified,
)
from repro.sampling.sampled import _execute_sampled
from repro.sampling.checkpoint import CheckpointStore
from repro.sampling.proxy import functional_profile, proxy_cycles
from repro.simulator.simulator import Simulator
from repro.simulator.testing import make_sim_config


# ----------------------------------------------------------------------
# interval iteration / BBV profiling
# ----------------------------------------------------------------------
class TestIntervalIterator:
    def test_intervals_cover_the_budget_exactly(self, medium_workload):
        intervals = list(medium_workload.iter_intervals(1000, 5500))
        assert [iv.length for iv in intervals] == [1000, 1000, 1000, 1000,
                                                   1000, 500]
        assert [iv.start_instruction for iv in intervals] == [
            0, 1000, 2000, 3000, 4000, 5000]
        for interval in intervals:
            assert sum(interval.block_counts.values()) == interval.length

    def test_iteration_is_deterministic(self, medium_workload):
        a = list(medium_workload.iter_intervals(500, 3000))
        b = list(medium_workload.iter_intervals(500, 3000))
        assert [iv.block_counts for iv in a] == [iv.block_counts for iv in b]

    def test_rejects_bad_interval_length(self, medium_workload):
        with pytest.raises(ValueError):
            list(medium_workload.iter_intervals(0, 1000))


class TestBBVProfile:
    def test_profile_shape(self, medium_workload):
        profile = profile_workload(medium_workload, 4000, 1000)
        assert len(profile) == 4
        assert profile.workload == medium_workload.name
        assert profile.total_instructions == 4000

    def test_vectors_are_normalised(self, medium_workload):
        profile = profile_workload(medium_workload, 4000, 1000)
        for vector in profile.vectors(dim=8):
            assert sum(vector) == pytest.approx(1.0)
            assert len(vector) == 8

    def test_projection_deterministic(self):
        counts = {0x1000: 40, 0x2040: 60}
        assert project_counts(counts, dim=4) == project_counts(counts, dim=4)
        assert sum(project_counts(counts, dim=4)) == pytest.approx(1.0)

    def test_interval_weights_sum_to_one(self, medium_workload):
        profile = profile_workload(medium_workload, 4500, 1000)
        assert sum(profile.interval_weights()) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# k-means and selection
# ----------------------------------------------------------------------
class TestKMeans:
    def test_deterministic_for_a_seed(self):
        vectors = [[float(i % 3), float(i % 5)] for i in range(20)]
        assert kmeans(vectors, 3, seed=7) == kmeans(vectors, 3, seed=7)

    def test_separates_obvious_clusters(self):
        vectors = [[0.0, 0.0]] * 5 + [[10.0, 10.0]] * 5
        labels = kmeans(vectors, 2, seed=1)
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_k_clamped_to_population(self):
        labels = kmeans([[0.0], [1.0]], 10, seed=1)
        assert len(labels) == 2

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            kmeans([[0.0]], 0)


class TestSelection:
    def test_kmeans_selection_weights_sum_to_one(self, medium_workload):
        profile = profile_workload(medium_workload, 8000, 1000)
        selection = select_intervals(profile, max_intervals=3)
        assert selection.k <= 3
        assert sum(iv.weight for iv in selection.intervals) == pytest.approx(1.0)
        starts = [iv.start_instruction for iv in selection.intervals]
        assert starts == sorted(starts)

    def test_stratified_selection_includes_interval_zero(self, medium_workload):
        config = make_sim_config(max_instructions=8000)
        profile = functional_profile(medium_workload, config, 8000, 1000)
        selection = select_stratified(
            profile, proxy_cycles(profile, config), max_intervals=4)
        assert selection.intervals[0].index == 0
        assert selection.intervals[0].cluster_size == 1
        assert sum(iv.weight for iv in selection.intervals) == pytest.approx(1.0)
        assert all(iv.proxy > 0 for iv in selection.intervals)

    def test_stratified_proxy_mass_covers_every_interval(self, medium_workload):
        config = make_sim_config(max_instructions=8000)
        profile = functional_profile(medium_workload, config, 8000, 1000)
        proxies = proxy_cycles(profile, config)
        selection = select_stratified(profile, proxies, max_intervals=4)
        assert (sum(iv.cluster_proxy_mass for iv in selection.intervals)
                == pytest.approx(sum(proxies)))

    def test_selection_is_deterministic(self, medium_workload):
        spec = SamplingSpec()
        config = make_sim_config(max_instructions=10_000)
        a = get_selection(medium_workload, 10_000, spec,
                          store=CheckpointStore(), config=config)
        b = get_selection(medium_workload, 10_000, spec,
                          store=CheckpointStore(), config=config)
        assert a == b


# ----------------------------------------------------------------------
# sampling spec
# ----------------------------------------------------------------------
class TestSamplingSpec:
    def test_derived_interval_length(self):
        spec = SamplingSpec()
        assert spec.resolved_interval_length(20_000) == 1000
        assert spec.resolved_interval_length(4_000) == 500   # floor applies
        assert spec.resolved_interval_length(100) == 100     # tiny budgets

    def test_explicit_interval_length(self):
        assert SamplingSpec(interval_length=750).resolved_interval_length(1) == 750
        with pytest.raises(ValueError):
            SamplingSpec(interval_length=-5).resolved_interval_length(1000)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            SamplingSpec(method="prophecy")


# ----------------------------------------------------------------------
# the sampled runner
# ----------------------------------------------------------------------
class TestRunSampled:
    @pytest.mark.parametrize("method", ["stratified", "kmeans"])
    def test_sampled_run_is_deterministic(self, medium_workload, method):
        config = make_sim_config(engine="clgp", max_instructions=8000)
        spec = SamplingSpec(method=method)
        a = _execute_sampled(config, medium_workload, spec=spec,
                             store=CheckpointStore())
        b = _execute_sampled(config, medium_workload, spec=spec,
                             store=CheckpointStore())
        assert a == b

    def test_sampled_run_estimates_the_full_run(self, medium_workload):
        config = make_sim_config(engine="clgp", max_instructions=10_000)
        full = Simulator(config, medium_workload).run()
        sampled = _execute_sampled(config, medium_workload,
                                   store=CheckpointStore())
        # The sampled estimate is normalised to the exact budget; the full
        # run may overshoot by up to a commit-width of instructions.
        assert sampled.committed_instructions == config.max_instructions
        assert full.committed_instructions >= config.max_instructions
        # The estimate is statistical; a loose envelope guards against
        # gross breakage without pinning the exact value.
        assert sampled.ipc == pytest.approx(full.ipc, rel=0.15)
        assert sampled.extras["sampled"] == 1.0
        assert 0 < sampled.extras["sampling_coverage"] < 1

    def test_sampled_metadata(self, medium_workload):
        config = make_sim_config(max_instructions=8000)
        result = _execute_sampled(config, medium_workload,
                                  store=CheckpointStore())
        assert result.workload == medium_workload.name
        assert result.extras["sampling_intervals"] >= 1
        assert (result.extras["sampled_instructions"]
                < result.committed_instructions)
