"""Cross-process artifact-store safety: locking, crash litter, stress.

The intra-process gc races in ``tests/test_artifact_cache.py`` exercise
the scan/evict interleavings inside one process; this module puts the
store under *separate processes* -- the shape the ROADMAP's shared
fleet-wide cache tier requires:

* a reader, a writer and a gc loop in three ``multiprocessing``
  processes against one root must never surface a torn or wrong value,
* ``write_crash:1.0`` (every publish dies between the temp write and
  the rename) must leave the store fsck-clean after repair while every
  result recomputes bit-identically,
* the full CLI stress harness: concurrent ``repro-clgp`` invocations
  share one cache under ``write_crash``+``io_error``+gc churn and their
  stdout must stay byte-identical with a fault-free run, with
  ``cache fsck`` exiting 0 afterwards.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro import faults
from repro.cache.store import ArtifactStore, temporary_cache_dir
from repro.simulator.testing import make_sim_config

_SRC = str(Path(repro.__file__).parents[1])

#: One value per key so concurrent writers keep the store's contract
#: (all writers of a key publish identical content).
_KEYS = [f"key{i}" for i in range(8)]


def _value_for(key: str) -> bytes:
    return (key.encode("ascii") + b"-payload") * 64


def _writer_proc(root: str, iterations: int, failures) -> None:
    store = ArtifactStore(root)
    for index in range(iterations):
        key = _KEYS[index % len(_KEYS)]
        store.put("kindA", key, _value_for(key))


def _reader_proc(root: str, iterations: int, failures) -> None:
    store = ArtifactStore(root)
    for index in range(iterations):
        key = _KEYS[index % len(_KEYS)]
        value = store.get("kindA", key)
        # Eviction makes misses routine; a *wrong* value never is.
        if value is not None and value != _value_for(key):
            failures.put(f"reader saw a torn value for {key}")
            return


def _gc_proc(root: str, rounds: int, failures) -> None:
    store = ArtifactStore(root)
    for _ in range(rounds):
        store.gc(0)      # evict everything the lock lets it see
        time.sleep(0.002)


class TestCrossProcessRaces:
    def test_concurrent_reader_writer_gc_processes(self, tmp_path):
        """gc in one process must never hand a concurrent reader a torn
        artifact, and the store must come out fsck-clean."""
        root = str(tmp_path / "shared-cache")
        ctx = multiprocessing.get_context()
        failures = ctx.Queue()
        procs = [
            ctx.Process(target=_writer_proc, args=(root, 150, failures)),
            ctx.Process(target=_reader_proc, args=(root, 300, failures)),
            ctx.Process(target=_gc_proc, args=(root, 40, failures)),
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert not proc.is_alive(), "store process wedged (deadlock?)"
            assert proc.exitcode == 0
        assert failures.empty(), failures.get()
        report = ArtifactStore(root).fsck()
        assert report.clean()

    def test_write_crash_everywhere_recomputes_bit_identically(
            self, tmp_path):
        """With every publish dying pre-rename, nothing is ever cached --
        runs must still agree bit-for-bit, and the stranded temp files
        must leave the store fsck-clean after repair."""
        from repro.simulator.runner import _execute_single, clear_process_caches

        config = make_sim_config(engine="fdp", max_instructions=1500)
        with temporary_cache_dir(tmp_path / "cache") as disk:
            saved = faults.snapshot_faults()
            faults.configure_faults("write_crash:1.0,seed:5")
            try:
                clear_process_caches()
                first = _execute_single(config, "gzip", 1500)
                clear_process_caches()
                second = _execute_single(config, "gzip", 1500)
            finally:
                faults.restore_faults(saved)
            assert first == second
            assert disk.stats.crashed_writes > 0
            assert disk.stats.stores == 0
            assert len(disk) == 0            # nothing ever published
            report = disk.fsck()
            assert report.tmp_files > 0      # the litter is visible...
            assert disk.fsck(repair=True).tmp_files == report.tmp_files
            assert disk.fsck().clean()       # ...and reaped

            # A fault-free rerun on the repaired store agrees too.
            clear_process_caches()
            assert _execute_single(config, "gzip", 1500) == first


class TestMultiProcessStress:
    """N concurrent CLI invocations share one cache under injected
    crashes, I/O errors and gc churn: stdout must stay byte-identical
    with a fault-free run and ``cache fsck`` must exit 0 afterwards."""

    #: Overlapping figure sweeps (two processes race on the same figure,
    #: a third shares the benchmark's traces/profiles from another
    #: figure).  Budgets are tiny: the point is contention, not scale.
    COMMANDS = (
        ("figure", "4", "--benchmarks", "gzip", "--instructions", "1500"),
        ("figure", "4", "--benchmarks", "gzip", "--instructions", "1500"),
        ("figure", "5", "--benchmarks", "gzip", "--instructions", "1500"),
    )
    FAULT_SPEC = "write_crash:0.4,io_error:0.2,seed:7"

    @staticmethod
    def _env(cache_dir: str, fault_spec: str = "") -> dict:
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = cache_dir
        env["REPRO_FAULTS"] = fault_spec
        env.pop("REPRO_CACHE_DISABLE", None)
        env.pop("REPRO_RESULT_CACHE_DISABLE", None)
        return env

    @classmethod
    def _run_cli(cls, command, env):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *command],
            env=env, capture_output=True, text=True, timeout=150,
        )

    def test_shared_cache_stress_is_byte_identical_and_fsck_clean(
            self, tmp_path):
        # Fault-free reference stdout, in an isolated cache.
        reference_env = self._env(str(tmp_path / "reference-cache"))
        expected = {}
        for command in dict.fromkeys(self.COMMANDS):
            proc = self._run_cli(command, reference_env)
            assert proc.returncode == 0, proc.stderr
            expected[command] = proc.stdout

        # The chaos run: concurrent processes on one shared cache while
        # this process churns gc against the same root.
        shared = str(tmp_path / "shared-cache")
        chaos_env = self._env(shared, self.FAULT_SPEC)
        children = [
            subprocess.Popen(
                [sys.executable, "-m", "repro.cli", *command],
                env=chaos_env, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True,
            )
            for command in self.COMMANDS
        ]
        gc_store = ArtifactStore(shared)
        deadline = time.monotonic() + 150
        while any(child.poll() is None for child in children):
            assert time.monotonic() < deadline, "stress children wedged"
            gc_store.gc(64 * 1024)    # keep evicting under the sweeps
            time.sleep(0.05)

        for command, child in zip(self.COMMANDS, children):
            stdout, stderr = child.communicate(timeout=10)
            assert child.returncode == 0, stderr
            assert stdout == expected[command], (
                f"{command}: stdout diverged under faults")

        # The store survives an audit: repair reaps the crash litter,
        # after which a plain fsck exits clean.
        from repro.cli import main

        assert main(["cache", "fsck", "--repair", "--cache-dir", shared]) == 0
        assert main(["cache", "fsck", "--cache-dir", shared]) == 0
