"""Tests for the plain-text report formatting."""

from repro.analysis.report import (
    format_ipc_sweep,
    format_key_value_table,
    format_latency_table,
    format_per_benchmark,
    format_source_distribution,
    format_speedups,
)


class TestFormatIpcSweep:
    def test_contains_schemes_sizes_and_values(self):
        series = {"CLGP+L0": {256: 1.234, 4096: 1.5},
                  "base": {256: 0.75, 4096: 0.9}}
        text = format_ipc_sweep(series, "Figure X")
        assert "Figure X" in text
        assert "CLGP+L0" in text and "base" in text
        assert "256B" in text and "4KB" in text
        assert "1.234" in text

    def test_missing_cells_render_nan(self):
        series = {"a": {256: 1.0}, "b": {512: 2.0}}
        text = format_ipc_sweep(series, "t")
        assert "nan" in text


class TestOtherFormatters:
    def test_per_benchmark(self):
        series = {"gzip": {"CLGP": 2.5, "FDP": 2.4}, "HMEAN": {"CLGP": 1.2, "FDP": 1.1}}
        text = format_per_benchmark(series, "Figure 6")
        assert "gzip" in text and "HMEAN" in text and "2.500" in text

    def test_source_distribution_percentages(self):
        series = {"CLGP": {4096: {"PB": 0.9, "il1": 0.1}}}
        text = format_source_distribution(series, "Figure 7")
        assert "90.0%" in text and "PB" in text

    def test_key_value_table(self):
        text = format_key_value_table({"RAS": "8-entry"}, "Table 2")
        assert "RAS" in text and "8-entry" in text

    def test_latency_table(self):
        text = format_latency_table({"0.09um": {256: 1, 1 << 20: 17}})
        assert "0.09um" in text and "17" in text

    def test_speedups(self):
        data = {"0.09um": {"clgp_over_fdp": 0.035,
                           "clgp_over_base_pipelined": 0.39,
                           "ipc": {"CLGP+L0+PB16": 1.5}}}
        text = format_speedups(data)
        assert "+3.5%" in text and "+39.0%" in text and "CLGP+L0+PB16" in text
