"""Tests for the related-work prefetchers (next-N-line, target-line)."""

import pytest

from repro.core.classic_prefetchers import NextNLineEngine, TargetLineEngine
from repro.core.engine import FetchEngineConfig
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy

from engine_harness import RecordingBackend, block_for, drive


def make_hierarchy():
    return MemoryHierarchy(HierarchyConfig(technology="0.045um",
                                           l1_size_bytes=4096))


def big_block(workload, min_size=4):
    index = next(i for i, b in enumerate(workload.cfg.all_blocks())
                 if b.size >= min_size)
    return block_for(workload, index)


class TestNextNLine:
    def test_invalid_degree(self, tiny_workload):
        with pytest.raises(ValueError):
            NextNLineEngine(FetchEngineConfig(), make_hierarchy(),
                            tiny_workload.bbdict, degree=0)

    def test_no_candidates_at_enqueue_time(self, tiny_workload):
        engine = NextNLineEngine(FetchEngineConfig(), make_hierarchy(),
                                 tiny_workload.bbdict, degree=2)
        engine.enqueue_block(big_block(tiny_workload), 0)
        assert len(engine.piq) == 0

    def test_consuming_a_line_prefetches_successors(self, tiny_workload):
        engine = NextNLineEngine(FetchEngineConfig(), make_hierarchy(),
                                 tiny_workload.bbdict, degree=2)
        backend = RecordingBackend()
        block = big_block(tiny_workload)
        line = block.lines(64)[0]
        engine.hierarchy.l1.fill(line)
        engine.enqueue_block(block, 0)
        drive(engine, backend, 30, prefetch=False)
        # The two sequential successor lines became prefetch candidates.
        expected = {line + 64, line + 128}
        assert expected <= (set(engine.piq)
                            | set(engine.prefetch_buffer._entries))

    def test_name_includes_degree(self, tiny_workload):
        engine = NextNLineEngine(FetchEngineConfig(), make_hierarchy(),
                                 tiny_workload.bbdict, degree=3)
        assert engine.name == "next-3-line"


class TestTargetLine:
    def test_learns_non_sequential_transition(self, tiny_workload):
        engine = TargetLineEngine(FetchEngineConfig(), make_hierarchy(),
                                  tiny_workload.bbdict, degree=1)
        backend = RecordingBackend()
        blocks = tiny_workload.cfg.all_blocks()
        # Fetch two blocks whose lines are far apart so the transition is
        # recorded in the target table.
        far_pairs = None
        for i, a in enumerate(blocks):
            for j, b in enumerate(blocks):
                if abs(a.addr - b.addr) > 256:
                    far_pairs = (i, j)
                    break
            if far_pairs:
                break
        assert far_pairs is not None
        a, b = far_pairs
        for index in (a, b):
            blk = block_for(tiny_workload, index)
            engine.hierarchy.l1.fill(blk.lines(64)[0])
            engine.enqueue_block(blk, 0)
        drive(engine, backend, 60, prefetch=False)
        line_a = blocks[a].addr - blocks[a].addr % 64
        line_b = blocks[b].addr - blocks[b].addr % 64
        assert engine._target_table.get(line_a) == line_b

    def test_target_table_capacity_bounded(self, tiny_workload):
        engine = TargetLineEngine(FetchEngineConfig(), make_hierarchy(),
                                  tiny_workload.bbdict, degree=1,
                                  table_entries=2)
        for i in range(6):
            engine._last_line = i * 0x1000
            engine._remember_transition((i + 100) * 0x1000)
        assert len(engine._target_table) <= 2

    def test_name(self, tiny_workload):
        engine = TargetLineEngine(FetchEngineConfig(), make_hierarchy(),
                                  tiny_workload.bbdict, degree=1)
        assert engine.name.startswith("target-line")
