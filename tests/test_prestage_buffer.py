"""Tests for the CLGP prestage buffer (consumers-counter replacement)."""

import pytest

from repro.core.prestage_buffer import PrestageBuffer


class TestConsumersCounter:
    def test_allocate_sets_one_consumer(self):
        buffer = PrestageBuffer(entries=4)
        entry = buffer.allocate_for_prefetch(0x1000)
        assert entry.consumers == 1
        assert not entry.valid

    def test_add_consumer_extends_lifetime(self):
        buffer = PrestageBuffer(entries=4)
        entry = buffer.allocate_for_prefetch(0x1000)
        buffer.add_consumer(entry)
        assert entry.consumers == 2
        assert buffer.consumer_increments == 2

    def test_consume_decrements(self):
        buffer = PrestageBuffer(entries=4)
        entry = buffer.allocate_for_prefetch(0x1000)
        buffer.consume(entry)
        assert entry.consumers == 0
        assert buffer.consumer_decrements == 1

    def test_consume_never_goes_negative(self):
        buffer = PrestageBuffer(entries=4)
        entry = buffer.allocate_for_prefetch(0x1000)
        buffer.consume(entry)
        buffer.consume(entry)
        assert entry.consumers == 0

    def test_total_consumers(self):
        buffer = PrestageBuffer(entries=4)
        a = buffer.allocate_for_prefetch(0x1000)
        b = buffer.allocate_for_prefetch(0x2000)
        buffer.add_consumer(a)
        assert buffer.total_consumers() == 3
        del b


class TestReplacement:
    def test_entry_with_consumers_is_protected(self):
        buffer = PrestageBuffer(entries=1)
        entry = buffer.allocate_for_prefetch(0x1000)
        entry.mark_arrived(5, "ul2")
        # The single entry still has one consumer: allocation must fail.
        assert buffer.allocate_for_prefetch(0x2000) is None
        buffer.consume(entry)
        assert buffer.allocate_for_prefetch(0x2000) is not None

    def test_lru_among_free_entries(self):
        buffer = PrestageBuffer(entries=2)
        a = buffer.allocate_for_prefetch(0x1000)
        b = buffer.allocate_for_prefetch(0x2000)
        for entry in (a, b):
            entry.mark_arrived(1, "ul2")
            buffer.consume(entry)
        # Touch `a` so `b` becomes LRU among the replaceable entries.
        buffer.touch(a)
        buffer.allocate_for_prefetch(0x3000)
        assert buffer.contains(0x1000)
        assert not buffer.contains(0x2000)

    def test_reset_consumers_makes_all_replaceable(self):
        buffer = PrestageBuffer(entries=2)
        a = buffer.allocate_for_prefetch(0x1000)
        b = buffer.allocate_for_prefetch(0x2000)
        buffer.add_consumer(a)
        buffer.add_consumer(b)
        buffer.reset_consumers()
        assert buffer.total_consumers() == 0
        assert len(buffer.replaceable_entries()) == 2
        assert buffer.counter_resets == 1

    def test_valid_lines_survive_reset_until_replaced(self):
        buffer = PrestageBuffer(entries=2)
        a = buffer.allocate_for_prefetch(0x1000)
        a.mark_arrived(3, "ul2")
        buffer.reset_consumers()
        # The line is still present and valid after the counters reset ...
        assert buffer.get(0x1000) is a and a.valid
        # ... and only disappears once a new prefetch claims the entry.
        buffer.allocate_for_prefetch(0x2000)
        buffer.allocate_for_prefetch(0x3000)
        assert not buffer.contains(0x1000)


class TestInvariants:
    def test_check_invariants_ok(self):
        buffer = PrestageBuffer(entries=4)
        for i in range(4):
            entry = buffer.allocate_for_prefetch(0x1000 + i * 64)
            entry.mark_arrived(i, "ul2")
        buffer.check_invariants()

    def test_check_invariants_detects_negative_counter(self):
        buffer = PrestageBuffer(entries=2)
        entry = buffer.allocate_for_prefetch(0x1000)
        entry.consumers = -1
        with pytest.raises(AssertionError):
            buffer.check_invariants()

    def test_pipelined_latency_configurable(self):
        buffer = PrestageBuffer(entries=16, latency=3, pipelined=True)
        assert buffer.port.pipelined
        assert buffer.port.latency == 3


class TestVictimEquivalence:
    """The prestage buffer's _victim fast path must always pick the same
    entry as replaceable_entries()[0] (LRU among consumers==0)."""

    def _mixed_buffer(self, seed: int) -> PrestageBuffer:
        import random
        rng = random.Random(seed)
        buffer = PrestageBuffer(entries=8)
        for i in range(8):
            entry = buffer.allocate_for_prefetch(0x1000 * (i + 1))
            if rng.random() < 0.7:
                entry.mark_arrived(cycle=i, source="ul2")
            if rng.random() < 0.6:
                buffer.consume(entry)          # consumers -> 0
            if rng.random() < 0.3:
                buffer.add_consumer(entry)
            if rng.random() < 0.4:
                buffer.touch(entry)
        return buffer

    @pytest.mark.parametrize("seed", range(20))
    def test_victim_matches_replaceable_head(self, seed):
        buffer = self._mixed_buffer(seed)
        candidates = buffer.replaceable_entries()
        victim = buffer._victim()
        if not candidates:
            assert victim is None
        else:
            assert victim is candidates[0]
