"""Differential suite for the batch kernels (:mod:`repro.kernels`).

Every batch kernel must be *bit-identical* to the block-by-block
reference interpreter it replaces -- numpy fast path and pure-python
fallback alike -- because profiles, proxy features and checkpoints are
persisted and compared across processes by their serialized bytes.
The tests here therefore compare pickled bytes and exact dict key
order, not just values, between:

* the numpy path and the pure-python fallback of every kernel,
* the batched BBV / proxy / functional-skip passes and the original
  block-by-block interpreters (toggled via ``REPRO_NO_BATCH``).
"""

import pickle
import random
from array import array

import pytest

from repro import kernels
from repro.cache.shared import dumps_with_workload
from repro.cache.traces import ensure_compiled_trace
from repro.memory.cache import Cache
from repro.sampling import proxy as proxy_module
from repro.sampling.bbv import profile_workload
from repro.simulator.config import SimulationConfig
from repro.simulator.runner import clear_process_caches, get_workload
from repro.simulator.simulator import Simulator

needs_numpy = pytest.mark.skipif(
    kernels.numpy_or_none() is None, reason="numpy unavailable"
)


@pytest.fixture
def numpy_fallback():
    """Force the pure-python kernels for the duration of a test."""
    kernels.set_numpy_enabled(False)
    try:
        yield
    finally:
        kernels.set_numpy_enabled(True)


def _with_fallback(fn, *args):
    kernels.set_numpy_enabled(False)
    try:
        return fn(*args)
    finally:
        kernels.set_numpy_enabled(True)


# ----------------------------------------------------------------------
# the hash lattice behind the deterministic miss draws
# ----------------------------------------------------------------------
@needs_numpy
def test_hash_lattice_matches_scalar():
    np = kernels.numpy_or_none()
    for salt in (0, 7, 977 ^ 0x5A5A5A5A, 2**31 - 1, 2**63 + 11):
        for start in (0, 1, 977, 10**12):
            vec = kernels._hash01_array(np, start, 257, salt)
            ref = [kernels._hash01(start + i, salt) for i in range(257)]
            assert vec.tolist() == ref


# ----------------------------------------------------------------------
# grouped_load_miss_counts (proxy base pass)
# ----------------------------------------------------------------------
def _random_chunks(rng, group_count):
    chunks = []
    for _ in range(rng.randint(5, 40)):
        group = rng.randrange(group_count)
        probs = tuple(rng.random() for _ in range(rng.randint(0, 12)))
        chunks.append((group, probs))
    return chunks


@needs_numpy
def test_grouped_load_miss_counts_numpy_matches_python():
    rng = random.Random(1234)
    for _trial in range(12):
        group_count = rng.randint(1, 9)
        chunks = _random_chunks(rng, group_count)
        args = (chunks, group_count, rng.randrange(10**6),
                rng.randrange(2**32), rng.random())
        fast = kernels.grouped_load_miss_counts(*args)
        slow = _with_fallback(kernels.grouped_load_miss_counts, *args)
        assert fast == slow


def test_grouped_load_miss_counts_empty_and_certain():
    for l2_rate in (0.0, 1.0):
        d, dm = kernels.grouped_load_miss_counts(
            [(0, (1.0, 1.0)), (1, ()), (0, (0.0,))], 2, 5, 42, l2_rate
        )
        assert d == [2, 0]
        assert dm == ([2, 0] if l2_rate == 1.0 else [0, 0])


# ----------------------------------------------------------------------
# interval_block_counts (BBV slicing)
# ----------------------------------------------------------------------
def _random_columns(rng, blocks):
    addrs = array("q")
    sizes = array("q")
    for _ in range(blocks):
        # A small address pool guarantees repeats, exercising both the
        # count aggregation and the first-occurrence key ordering.
        addrs.append(0x1000 + 4 * rng.randrange(0, 64))
        sizes.append(rng.randint(1, 24))
    return addrs, sizes


@needs_numpy
def test_interval_block_counts_numpy_matches_python():
    rng = random.Random(99)
    for _trial in range(10):
        addrs, sizes = _random_columns(rng, rng.randint(40, 200))
        covered = sum(sizes)
        total = rng.randint(1, covered)
        length = rng.choice([1, 7, 64, 257, covered])
        fast = kernels.interval_block_counts(addrs, sizes, total, length)
        slow = _with_fallback(
            kernels.interval_block_counts, addrs, sizes, total, length
        )
        # Key *order* is part of the contract (profile pickles depend
        # on it), so compare item lists, not just dict equality.
        assert [list(d.items()) for d in fast] \
            == [list(d.items()) for d in slow]


# ----------------------------------------------------------------------
# TwoLevelLRUReplay vs a real Cache pair
# ----------------------------------------------------------------------
def _reference_replay(l1, l2, lines):
    """The exact probe/fill sequence of the proxy feature interpreter."""
    i1 = i2 = 0
    for line in lines:
        if not l1.contains(line):
            i1 += 1
            if not l2.contains(line):
                i2 += 1
            l2.fill(line)
        l1.fill(line)
    return i1, i2


def test_two_level_lru_replay_matches_cache_pair():
    rng = random.Random(4242)
    geometries = [
        (1024, 32, 2, 8192, 64, 8),
        (512, 32, None, 4096, 64, None),
        (256, 16, 1, 2048, 32, 4),
    ]
    for l1_size, l1_line, l1_assoc, l2_size, l2_line, l2_assoc in geometries:
        replay = kernels.TwoLevelLRUReplay(
            l1_size, l1_line, l1_assoc, l2_size, l2_line, l2_assoc
        )
        l1 = Cache("il1", l1_size, line_size=l1_line, associativity=l1_assoc)
        l2 = Cache("ul2", l2_size, line_size=l2_line, associativity=l2_assoc)
        warm = [l1_line * rng.randrange(0, 512) for _ in range(300)]
        replay.warm(warm)
        for line in warm:
            l2.fill(line)
            l1.fill(line)
        for _round in range(5):
            lines = [l1_line * rng.randrange(0, 512) for _ in range(400)]
            assert replay.replay(lines) == _reference_replay(l1, l2, lines)


def test_fill_span_matches_fill_sequence():
    rng = random.Random(7)
    batched = Cache("il1", 1024, line_size=32, associativity=2)
    reference = Cache("il1", 1024, line_size=32, associativity=2)
    for _round in range(20):
        addrs = [4 * rng.randrange(0, 2048) for _ in range(rng.randint(1, 40))]
        batched.fill_span(addrs)
        for addr in addrs:
            reference.fill(addr)
        assert batched._sets == reference._sets
        assert batched.stats == reference.stats


# ----------------------------------------------------------------------
# end-to-end: batched BBV profiling == the block-by-block walker
# ----------------------------------------------------------------------
BBV_CASES = [(10_000, 1000), (9_999, 257), (500, 1000)]


@pytest.mark.parametrize("workload_name", ["gzip", "mcf"])
def test_bbv_profile_batched_matches_walker(workload_name, monkeypatch):
    workload = get_workload(workload_name)
    for total, length in BBV_CASES:
        ensure_compiled_trace(workload, total)
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        reference = profile_workload(workload, total, length)
        monkeypatch.delenv("REPRO_NO_BATCH")
        batched = profile_workload(workload, total, length)
        assert pickle.dumps(batched) == pickle.dumps(reference)
        fallback = _with_fallback(profile_workload, workload, total, length)
        assert pickle.dumps(fallback) == pickle.dumps(reference)


# ----------------------------------------------------------------------
# end-to-end: batched proxy pass == the oracle interpreter
# ----------------------------------------------------------------------
PROXY_CONFIGS = [
    SimulationConfig(engine="clgp", technology="0.045um",
                     l1_size_bytes=4096, max_instructions=4000,
                     warmup_instructions=3000),
    SimulationConfig(engine="clgp", technology="0.045um",
                     l1_size_bytes=1024, l1_associativity=1,
                     max_instructions=4000, warmup_instructions=3000),
]


def _proxy_profile(config, total, length):
    clear_process_caches()
    workload = get_workload("gzip")
    ensure_compiled_trace(
        workload, max(total, config.resolved_warmup_instructions())
    )
    return proxy_module.functional_profile(workload, config, total, length)


@pytest.mark.parametrize("config", PROXY_CONFIGS,
                         ids=["l1-4096", "l1-1024-direct"])
def test_functional_profile_batched_matches_generic(config, monkeypatch):
    total, length = 6000, 500
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    reference = _proxy_profile(config, total, length)
    monkeypatch.delenv("REPRO_NO_BATCH")
    batched = _proxy_profile(config, total, length)
    assert pickle.dumps(batched) == pickle.dumps(reference)
    fallback = _with_fallback(_proxy_profile, config, total, length)
    assert pickle.dumps(fallback) == pickle.dumps(reference)


# ----------------------------------------------------------------------
# end-to-end: batched functional skip == the single-stream stepper
# ----------------------------------------------------------------------
def test_functional_skip_batched_matches_generic(monkeypatch):
    """Snapshot *bytes* after every skip -- and the timed continuation --
    must be identical with and without the batched segment stride."""
    config = SimulationConfig(engine="clgp", technology="0.045um",
                              l1_size_bytes=4096, max_instructions=4000,
                              warmup_instructions=3000)

    def states(batched):
        if batched:
            monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
        else:
            monkeypatch.setenv("REPRO_NO_BATCH", "1")
        clear_process_caches()
        workload = get_workload("gzip")
        ensure_compiled_trace(workload, 20_000)
        sim = Simulator(config, workload)
        sim.warm_up()
        blobs = []
        # Successive targets land mid-block, mid-stream and far past the
        # already-compiled prefix; each snapshot must match byte for byte.
        for target in (1300, 2900, 6001):
            sim.skip_to(target)
            blobs.append(dumps_with_workload(sim.snapshot()._state, workload))
        return blobs, sim.run(500)

    generic_blobs, generic_result = states(batched=False)
    batched_blobs, batched_result = states(batched=True)
    assert batched_blobs == generic_blobs
    assert batched_result == generic_result
