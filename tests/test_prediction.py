"""Tests for the decoupled prediction unit (oracle + predictor + wrong path)."""

import pytest

from repro.frontend.prediction import PredictionUnit
from repro.frontend.stream_predictor import StreamPredictor
from repro.workloads.isa import INSTRUCTION_BYTES


class RecordingEngine:
    """Minimal fetch-engine stand-in that records enqueued blocks."""

    def __init__(self, capacity=8):
        self.capacity = capacity
        self.blocks = []

    def can_accept_block(self):
        return len(self.blocks) < self.capacity

    def enqueue_block(self, block, cycle):
        self.blocks.append(block)

    def drain(self, n=1):
        for _ in range(n):
            if self.blocks:
                self.blocks.pop(0)


def make_unit(workload, pretrained=False):
    unit = PredictionUnit(workload)
    if pretrained:
        # Train the predictor on the first portion of the correct path so
        # most predictions are right.
        oracle = workload.new_oracle()
        history = 0
        for _ in range(3000):
            addr = oracle.current_address()
            actual = oracle.peek_stream(unit.max_stream)
            unit.predictor.train(addr, history, actual)
            history = StreamPredictor.fold_history(
                history, actual.next_addr, actual.ends_taken)
            oracle.advance(actual.length)
    return unit


class TestBlockProduction:
    def test_one_block_per_tick(self, tiny_workload):
        unit = make_unit(tiny_workload)
        engine = RecordingEngine()
        produced = unit.tick(0, engine)
        assert produced == 1
        assert len(engine.blocks) == 1

    def test_respects_queue_capacity(self, tiny_workload):
        unit = make_unit(tiny_workload)
        engine = RecordingEngine(capacity=2)
        for cycle in range(5):
            unit.tick(cycle, engine)
        assert len(engine.blocks) == 2

    def test_first_block_starts_at_entry(self, tiny_workload):
        unit = make_unit(tiny_workload)
        engine = RecordingEngine()
        unit.tick(0, engine)
        assert engine.blocks[0].start == tiny_workload.cfg.entry_address

    def test_correct_blocks_are_contiguous_with_oracle(self, tiny_workload):
        unit = make_unit(tiny_workload, pretrained=True)
        engine = RecordingEngine(capacity=1000)
        for cycle in range(200):
            unit.tick(cycle, engine)
            if unit.awaiting_redirect:
                break
        # All blocks before any misprediction lie on the correct path and the
        # instruction counts line up with the oracle cursor.
        correct = [b for b in engine.blocks if not b.wrong_path and not b.mispredicted]
        consumed = sum(b.length for b in engine.blocks
                       if not b.wrong_path) - sum(
            b.length - b.correct_prefix for b in engine.blocks if b.mispredicted)
        assert consumed == unit.oracle.consumed_instructions
        assert correct, "expected at least one correctly predicted block"


class TestMispredictionFlow:
    def _run_until_mispredict(self, unit, engine, max_cycles=2000):
        for cycle in range(max_cycles):
            unit.tick(cycle, engine)
            if unit.awaiting_redirect:
                return cycle
        pytest.fail("no misprediction occurred")

    def test_mispredicted_block_flags(self, tiny_workload):
        unit = make_unit(tiny_workload)
        engine = RecordingEngine(capacity=10_000)
        self._run_until_mispredict(unit, engine)
        bad = [b for b in engine.blocks if b.mispredicted]
        assert len(bad) == 1
        block = bad[0]
        assert 1 <= block.correct_prefix <= block.length
        assert block.redirect_target is not None

    def test_wrong_path_mode_until_redirect(self, tiny_workload):
        unit = make_unit(tiny_workload)
        engine = RecordingEngine(capacity=10_000)
        cycle = self._run_until_mispredict(unit, engine)
        n_before = len(engine.blocks)
        for extra in range(1, 4):
            unit.tick(cycle + extra, engine)
        assert all(b.wrong_path for b in engine.blocks[n_before:])
        assert unit.stats.wrong_path_blocks >= 3

    def test_redirect_resumes_on_correct_path(self, tiny_workload):
        unit = make_unit(tiny_workload)
        engine = RecordingEngine(capacity=10_000)
        cycle = self._run_until_mispredict(unit, engine)
        bad = next(b for b in engine.blocks if b.mispredicted)
        resume = unit.redirect(cycle + 10)
        assert resume == bad.redirect_target
        assert not unit.awaiting_redirect
        unit.tick(cycle + 11, engine)
        assert engine.blocks[-1].start == resume
        assert not engine.blocks[-1].wrong_path

    def test_redirect_without_pending_raises(self, tiny_workload):
        unit = make_unit(tiny_workload)
        with pytest.raises(RuntimeError):
            unit.redirect(0)

    def test_statistics(self, tiny_workload):
        unit = make_unit(tiny_workload)
        engine = RecordingEngine(capacity=100_000)
        for cycle in range(500):
            unit.tick(cycle, engine)
            if unit.awaiting_redirect:
                unit.redirect(cycle)
        stats = unit.stats
        assert stats.streams_predicted > 0
        assert stats.stream_mispredictions == stats.redirects
        assert 0.0 <= stats.misprediction_rate <= 1.0


class TestPretrainedAccuracy:
    def test_training_reduces_mispredictions(self, tiny_workload):
        cold = make_unit(tiny_workload)
        warm = make_unit(tiny_workload, pretrained=True)
        for unit in (cold, warm):
            engine = RecordingEngine(capacity=10**9)
            for cycle in range(800):
                unit.tick(cycle, engine)
                if unit.awaiting_redirect:
                    unit.redirect(cycle)
        assert warm.stats.misprediction_rate < cold.stats.misprediction_rate
