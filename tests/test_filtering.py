"""Tests for the prefetch filtering policies."""

import pytest

from repro.core.filtering import (
    EnqueueCacheProbeFilter,
    NullFilter,
    make_filter,
)
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(HierarchyConfig(l0_size_bytes=256))


class TestNullFilter:
    def test_always_prefetches(self, hierarchy):
        f = NullFilter()
        hierarchy.l1.fill(0x1000)
        assert f.should_prefetch(0x1000, hierarchy)
        assert f.stats.candidates == 1
        assert f.stats.filtered == 0


class TestEnqueueCacheProbeFilter:
    def test_filters_l1_resident_lines(self, hierarchy):
        f = EnqueueCacheProbeFilter()
        hierarchy.l1.fill(0x1000)
        assert not f.should_prefetch(0x1000, hierarchy)
        assert f.stats.filtered_l1 == 1

    def test_filters_l0_resident_lines(self, hierarchy):
        f = EnqueueCacheProbeFilter()
        hierarchy.l0.fill(0x2000)
        assert not f.should_prefetch(0x2000, hierarchy)
        assert f.stats.filtered_l0 == 1

    def test_passes_uncached_lines(self, hierarchy):
        f = EnqueueCacheProbeFilter()
        assert f.should_prefetch(0x3000, hierarchy)

    def test_l0_probe_can_be_disabled(self, hierarchy):
        f = EnqueueCacheProbeFilter(probe_l0=False)
        hierarchy.l0.fill(0x2000)
        assert f.should_prefetch(0x2000, hierarchy)

    def test_works_without_l0(self):
        f = EnqueueCacheProbeFilter()
        h = MemoryHierarchy(HierarchyConfig())
        assert f.should_prefetch(0x1000, h)

    def test_filter_rate(self, hierarchy):
        f = EnqueueCacheProbeFilter()
        hierarchy.l1.fill(0x1000)
        f.should_prefetch(0x1000, hierarchy)
        f.should_prefetch(0x5000, hierarchy)
        assert f.stats.filter_rate == pytest.approx(0.5)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        (None, NullFilter), ("none", NullFilter),
        ("enqueue-cache-probe", EnqueueCacheProbeFilter),
        ("ecpf", EnqueueCacheProbeFilter),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_filter(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_filter("markov")
