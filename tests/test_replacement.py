"""Tests for the replacement policies."""

import pytest

from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recently_used(self):
        policy = LRUPolicy()
        for tag in ("a", "b", "c"):
            policy.insert(tag)
        policy.touch("a")
        assert policy.victim(["a", "b", "c"]) == "b"

    def test_touch_refreshes(self):
        policy = LRUPolicy()
        policy.insert("a")
        policy.insert("b")
        policy.touch("a")
        assert policy.victim(["a", "b"]) == "b"

    def test_evict_removes_state(self):
        policy = LRUPolicy()
        policy.insert("a")
        policy.evict("a")
        # re-inserted entry should behave as new
        policy.insert("b")
        policy.insert("a")
        assert policy.victim(["a", "b"]) == "b"

    def test_age_rank_ordering(self):
        policy = LRUPolicy()
        for tag in ("a", "b", "c"):
            policy.insert(tag)
        policy.touch("a")
        assert policy.age_rank(["a", "b", "c"]) == ["b", "c", "a"]


class TestFIFO:
    def test_victim_is_first_inserted(self):
        policy = FIFOPolicy()
        for tag in ("x", "y", "z"):
            policy.insert(tag)
        policy.touch("x")  # hits do not matter for FIFO
        assert policy.victim(["x", "y", "z"]) == "x"

    def test_eviction_moves_to_next_oldest(self):
        policy = FIFOPolicy()
        for tag in ("x", "y", "z"):
            policy.insert(tag)
        policy.evict("x")
        assert policy.victim(["y", "z"]) == "y"


class TestRandom:
    def test_victim_is_member(self):
        policy = RandomPolicy(seed=3)
        resident = ["a", "b", "c", "d"]
        for _ in range(20):
            assert policy.victim(resident) in resident

    def test_seeded_reproducibility(self):
        a = RandomPolicy(seed=9)
        b = RandomPolicy(seed=9)
        resident = ["a", "b", "c", "d"]
        assert [a.victim(resident) for _ in range(10)] == [
            b.victim(resident) for _ in range(10)
        ]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("fifo", FIFOPolicy), ("random", RandomPolicy),
        ("LRU", LRUPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("plru")
