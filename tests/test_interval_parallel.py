"""Differential tests for intra-run interval parallelism.

The contract under test: a sampled run whose interval measurements are
fanned across the shared pool (``interval_jobs >= 2``) returns a result
**byte-identical** to the serial walk -- for every selection shape
(single segment, all-jumped singletons, mixed), under worker-kill
chaos, and with graceful serial fallback whenever the parallel path is
unavailable.  Also covers the PR's service-layer satellites: the fair
scheduler forgetting idle clients, the client honoring the advertised
Retry-After, and the sampled replay guard validating weights.
"""

import math
import pickle

import pytest

from repro.api import ExecutionOptions, ExperimentSpec, Session
from repro.cache import configure_result_cache
from repro.cache.keys import content_key, stable_repr
from repro.faults import configure_faults, restore_faults, snapshot_faults
from repro.sampling import SamplingSpec, get_selection
from repro.sampling.checkpoint import CheckpointStore
from repro.sampling.sampled import (
    _execute_sampled,
    _measure_intervals_parallel,
    _segments,
    ensure_compiled_trace,
)
from repro.service import codec
from repro.service.client import RetryLater, ServiceClient
from repro.service.codec import CodecError
from repro.service.scheduler import FairScheduler
from repro.simulator.plan import SimTask
from repro.simulator.runner import get_workload, shutdown_pool
from repro.simulator.testing import make_sim_config

TOTAL = 40_000

#: Real selection shapes at ``max_instructions=40000`` (engine "clgp"):
#: gcc/stratified k=4 -> segments [(0,1,2),(3,)] (mixed), gcc/kmeans
#: k=3 -> all singleton jumps, gzip/stratified k=4 -> one contiguous
#: segment.  Pool workers recompute the selection deterministically, so
#: the differential tests must use spec-derived selections, never
#: hand-built ones.
MIXED = SamplingSpec(max_intervals=4)
ALL_JUMPED = SamplingSpec(max_intervals=3, method="kmeans")
ONE_SEGMENT = SamplingSpec(max_intervals=4)


def run_sampled(benchmark, spec, interval_jobs=None, store=None):
    config = make_sim_config(engine="clgp", max_instructions=TOTAL)
    return _execute_sampled(config, benchmark, spec=spec,
                            store=store if store is not None
                            else CheckpointStore(),
                            interval_jobs=interval_jobs)


def assert_identical(serial, parallel):
    assert serial == parallel
    assert pickle.dumps(serial) == pickle.dumps(parallel)


@pytest.fixture(autouse=True)
def _fresh_measurements():
    """Disable measurement replay so both runs of a pair really measure
    (the artifact store is shared session-wide), and leave no pool
    behind for unrelated tests."""
    configure_result_cache(False)
    try:
        yield
    finally:
        configure_result_cache(None)
        shutdown_pool()


# ----------------------------------------------------------------------
# segment partitioning (pure)
# ----------------------------------------------------------------------
class _Interval:
    def __init__(self, start, length):
        self.start_instruction = start
        self.length = length


class TestSegments:
    def test_empty(self):
        assert _segments([]) == []

    def test_singleton(self):
        assert _segments([_Interval(500, 100)]) == [(0,)]

    def test_all_adjacent_is_one_segment(self):
        intervals = [_Interval(0, 100), _Interval(100, 100),
                     _Interval(200, 100)]
        assert _segments(intervals) == [(0, 1, 2)]

    def test_mixed_breaks_on_gaps(self):
        intervals = [_Interval(0, 100), _Interval(100, 100),
                     _Interval(500, 100), _Interval(600, 100),
                     _Interval(900, 100)]
        assert _segments(intervals) == [(0, 1), (2, 3), (4,)]

    def test_touching_but_reordered_lengths(self):
        intervals = [_Interval(0, 250), _Interval(250, 100),
                     _Interval(351, 100)]
        assert _segments(intervals) == [(0, 1), (2,)]


# ----------------------------------------------------------------------
# differential: parallel == serial, bit for bit
# ----------------------------------------------------------------------
class TestParallelMatchesSerial:
    def test_mixed_segments(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_INLINE_FALLBACK", "1")
        serial = run_sampled("gcc", MIXED)
        parallel = run_sampled("gcc", MIXED, interval_jobs=4)
        assert_identical(serial, parallel)

    def test_all_jumped_segments(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_INLINE_FALLBACK", "1")
        serial = run_sampled("gcc", ALL_JUMPED)
        parallel = run_sampled("gcc", ALL_JUMPED, interval_jobs=2)
        assert_identical(serial, parallel)

    def test_single_contiguous_segment_falls_back(self):
        # gzip's stratified selection is one contiguous run: nothing to
        # fan out, the parallel path declines and the serial walk runs.
        store = CheckpointStore()
        config = make_sim_config(engine="clgp", max_instructions=TOTAL)
        workload = get_workload("gzip")
        ensure_compiled_trace(
            workload, max(TOTAL, config.resolved_warmup_instructions()))
        selection = get_selection(workload, TOTAL, ONE_SEGMENT,
                                  store=store, config=config)
        assert len(_segments(selection.intervals)) == 1
        assert _measure_intervals_parallel(
            config, workload, selection, ONE_SEGMENT, store, TOTAL, 4,
        ) is None
        serial = run_sampled("gzip", ONE_SEGMENT)
        parallel = run_sampled("gzip", ONE_SEGMENT, interval_jobs=4)
        assert_identical(serial, parallel)

    def test_k_equals_one_falls_back(self):
        spec = SamplingSpec(max_intervals=1)
        serial = run_sampled("gcc", spec)
        parallel = run_sampled("gcc", spec, interval_jobs=4)
        assert_identical(serial, parallel)

    def test_store_disabled_falls_back_to_serial(self):
        # Workers share warm/positioned checkpoints through the artifact
        # store; without one the parallel path declines gracefully.
        memory_only = CheckpointStore(artifacts=None)
        config = make_sim_config(engine="clgp", max_instructions=TOTAL)
        workload = get_workload("gcc")
        ensure_compiled_trace(
            workload, max(TOTAL, config.resolved_warmup_instructions()))
        selection = get_selection(workload, TOTAL, MIXED,
                                  store=memory_only, config=config)
        assert _measure_intervals_parallel(
            config, workload, selection, MIXED, memory_only, TOTAL, 4,
        ) is None
        serial = run_sampled("gcc", MIXED,
                             store=CheckpointStore(artifacts=None))
        parallel = run_sampled("gcc", MIXED, interval_jobs=4,
                               store=CheckpointStore(artifacts=None))
        assert_identical(serial, parallel)

    def test_worker_kill_chaos_still_identical(self):
        # Killed workers are retried; a terminally failed segment drops
        # the whole run to the serial walk.  Either way the result must
        # match the clean serial run bit for bit.
        serial = run_sampled("gcc", ALL_JUMPED)
        snapshot = snapshot_faults()
        try:
            configure_faults("worker_kill:0.5,seed:3")
            parallel = run_sampled("gcc", ALL_JUMPED, interval_jobs=2)
        finally:
            restore_faults(snapshot)
            shutdown_pool()
        assert_identical(serial, parallel)


# ----------------------------------------------------------------------
# replay guard: weights are validated, not trusted
# ----------------------------------------------------------------------
class TestReplayGuard:
    @staticmethod
    def _measurement_key(config, workload, spec):
        return content_key(
            "sampled-measurements", stable_repr(config),
            workload.name, workload.profile.seed, TOTAL, stable_repr(spec),
        )

    @pytest.mark.parametrize("corrupt", [
        lambda weights: weights[:-1],                 # short list
        lambda weights: [math.nan] + list(weights[1:]),   # non-finite
        lambda weights: ["0.25"] + list(weights[1:]),     # non-numeric
        lambda weights: [True] + list(weights[1:]),       # bool imposter
    ])
    def test_bad_weights_force_remeasure(self, corrupt):
        spec = SamplingSpec(max_intervals=3)
        store = CheckpointStore()
        configure_result_cache(None)  # replay on for this test
        clean = run_sampled("gcc", spec, store=store)
        config = make_sim_config(engine="clgp", max_instructions=TOTAL)
        workload = get_workload("gcc")
        disk = store.artifact_store()
        key = self._measurement_key(config, workload, spec)
        payload = disk.get("measurement", key)
        assert payload is not None and len(payload["weights"]) == 3
        disk.put("measurement", key,
                 dict(payload, weights=corrupt(list(payload["weights"]))))
        again = run_sampled("gcc", spec, store=CheckpointStore())
        assert_identical(clean, again)
        # The recompute must have replaced the corrupt payload.
        healed = disk.get("measurement", key)
        assert healed["weights"] == payload["weights"]

    def test_good_payload_replays(self):
        spec = SamplingSpec(max_intervals=3)
        configure_result_cache(None)
        first = run_sampled("gcc", spec)
        second = run_sampled("gcc", spec)
        assert_identical(first, second)


# ----------------------------------------------------------------------
# option plumbing: validation, codec policy, session inheritance
# ----------------------------------------------------------------------
class TestIntervalJobsOption:
    def test_valid_values(self):
        assert ExecutionOptions(interval_jobs=None).interval_jobs is None
        assert ExecutionOptions(interval_jobs=0).interval_jobs == 0
        assert ExecutionOptions(interval_jobs=3).interval_jobs == 3

    @pytest.mark.parametrize("bad", [-1, 1.5, "2"])
    def test_invalid_values(self, bad):
        with pytest.raises(ValueError, match="interval_jobs"):
            ExecutionOptions(interval_jobs=bad)

    def test_codec_rejects_client_interval_jobs(self):
        with pytest.raises(CodecError, match="server policy"):
            codec.decode_options({"interval_jobs": 2})

    def test_request_key_ignores_interval_jobs(self):
        spec = ExperimentSpec(scheme="base", benchmarks=("gzip",),
                              max_instructions=800)
        assert codec.request_key(spec, ExecutionOptions(sampled=True)) \
            == codec.request_key(
                spec, ExecutionOptions(sampled=True, interval_jobs=8))


class TestSessionInheritance:
    def _plan(self, benchmarks=("gzip",)):
        spec = ExperimentSpec(scheme="base", benchmarks=benchmarks,
                              max_instructions=800)
        return spec.to_plan(sampled=True)

    def test_single_task_plan_inherits_session_jobs(self):
        with Session(jobs=2) as session:
            plan = session._with_interval_jobs(
                self._plan(), ExecutionOptions(sampled=True), jobs=2)
        assert [task.interval_jobs for task in plan.tasks] == [2]

    def test_multi_task_plan_stays_serial_by_default(self):
        with Session(jobs=2) as session:
            plan = self._plan(benchmarks=("gzip", "mcf"))
            out = session._with_interval_jobs(
                plan, ExecutionOptions(sampled=True), jobs=2)
        assert out is plan
        assert all(task.interval_jobs is None for task in out.tasks)

    def test_explicit_interval_jobs_wins_on_multi_task_plans(self):
        with Session(jobs=2) as session:
            out = session._with_interval_jobs(
                self._plan(benchmarks=("gzip", "mcf")),
                ExecutionOptions(sampled=True, interval_jobs=3), jobs=2)
        assert [task.interval_jobs for task in out.tasks] == [3, 3]

    def test_interval_jobs_one_is_a_no_op(self):
        with Session(jobs=4) as session:
            plan = self._plan()
            out = session._with_interval_jobs(
                plan, ExecutionOptions(sampled=True, interval_jobs=1),
                jobs=4)
        assert out is plan

    def test_full_runs_never_stamped(self):
        spec = ExperimentSpec(scheme="base", benchmarks=("gzip",),
                              max_instructions=800)
        plan = spec.to_plan(sampled=False)
        with Session(jobs=4) as session:
            out = session._with_interval_jobs(
                plan, ExecutionOptions(), jobs=4)
        assert out is plan
        assert all(isinstance(task, SimTask)
                   and task.interval_jobs is None for task in out.tasks)


# ----------------------------------------------------------------------
# satellite: the fair scheduler forgets idle clients
# ----------------------------------------------------------------------
class TestSchedulerForgetsIdleClients:
    def test_churning_identities_do_not_accumulate(self):
        scheduler = FairScheduler(quota=8, max_queue_depth=256)
        for i in range(100):
            client = f"client-{i}"
            scheduler.submit(client, f"job-{i}")
            assert scheduler.next_ready() == f"job-{i}"
            scheduler.finish(client, seconds=0.01)
        assert scheduler._queues == {}
        assert scheduler._rotation == []
        assert scheduler._charged == {}
        assert scheduler.queued == 0

    def test_client_with_queued_work_is_kept(self):
        scheduler = FairScheduler()
        scheduler.submit("a", "j1")
        scheduler.submit("a", "j2")
        assert scheduler.next_ready() == "j1"
        scheduler.finish("a")
        assert "a" in scheduler._queues
        assert "a" in scheduler._rotation
        assert scheduler.next_ready() == "j2"
        scheduler.finish("a")
        assert scheduler._queues == {}
        assert scheduler._rotation == []

    def test_running_client_survives_empty_queue_sweeps(self):
        scheduler = FairScheduler()
        scheduler.submit("a", "j1")
        scheduler.submit("b", "j2")
        assert scheduler.next_ready() == "j1"
        # "a" is running with an empty queue: sweeps must keep it until
        # finish() releases the charge, else finish() would miss it.
        assert scheduler.next_ready() == "j2"
        assert scheduler.next_ready() is None
        assert "a" in scheduler._rotation
        scheduler.finish("a")
        scheduler.finish("b")
        assert scheduler._rotation == []
        assert scheduler._queues == {}

    def test_discard_forgets_too(self):
        scheduler = FairScheduler()
        scheduler.submit("a", "j1")
        assert scheduler.discard("a", "j1")
        assert scheduler._queues == {}
        assert scheduler._rotation == []

    def test_round_robin_still_fair(self):
        scheduler = FairScheduler()
        for job in ("a1", "a2", "a3"):
            scheduler.submit("a", job)
        scheduler.submit("b", "b1")
        order = [scheduler.next_ready() for _ in range(4)]
        assert order == ["a1", "b1", "a2", "a3"]


# ----------------------------------------------------------------------
# satellite: the client honors the advertised Retry-After
# ----------------------------------------------------------------------
class TestClientBackoff:
    def _client_with_responses(self, monkeypatch, responses, sleeps):
        client = ServiceClient(client_id="t")
        queue = list(responses)

        def fake_request(method, path, body=None, stream=False):
            return queue.pop(0)

        monkeypatch.setattr(client, "_request", fake_request)
        monkeypatch.setattr("repro.service.client.time.sleep",
                            sleeps.append)
        return client

    @staticmethod
    def _spec():
        return ExperimentSpec(scheme="base", benchmarks=("gzip",),
                              max_instructions=800)

    def test_sleeps_the_full_advertised_backoff(self, monkeypatch):
        sleeps = []
        client = self._client_with_responses(monkeypatch, [
            (429, {"retry-after": "37"}, b'{"error": "busy"}'),
            (200, {}, b'{"job": "abc"}'),
        ], sleeps)
        assert client.submit(self._spec(), wait_on_quota=True) \
            == {"job": "abc"}
        assert sleeps == [37.0]

    def test_max_backoff_caps_the_sleep(self, monkeypatch):
        sleeps = []
        client = self._client_with_responses(monkeypatch, [
            (429, {"retry-after": "90"}, b'{"error": "busy"}'),
            (429, {"retry-after": "2"}, b'{"error": "busy"}'),
            (200, {}, b'{"job": "abc"}'),
        ], sleeps)
        assert client.submit(self._spec(), wait_on_quota=True,
                             max_backoff=5.0) == {"job": "abc"}
        assert sleeps == [5.0, 2.0]

    def test_without_wait_on_quota_raises(self, monkeypatch):
        sleeps = []
        client = self._client_with_responses(monkeypatch, [
            (429, {"retry-after": "7"}, b'{"error": "busy"}'),
        ], sleeps)
        with pytest.raises(RetryLater) as excinfo:
            client.submit(self._spec())
        assert excinfo.value.retry_after == 7
        assert sleeps == []
