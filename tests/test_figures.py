"""Tests for the figure data builders (small, fast parameterisations).

These are integration tests: they run real (tiny) simulations through the
:class:`repro.api.Session` figure methods and check the structure of the
returned series plus a few coarse sanity properties.  The full-size
reproductions live in ``benchmarks/``.
"""

import pytest

from repro.api import Session

FAST = dict(benchmarks=["gzip"], max_instructions=1200)
TWO_SIZES = [1024, 16384]


@pytest.fixture(scope="module")
def session():
    with Session() as session:
        yield session


@pytest.fixture(scope="module")
def fig1(session):
    return session.figure1_series(l1_sizes=TWO_SIZES, **FAST)


class TestFigure1:
    def test_schemes_and_sizes(self, fig1):
        assert set(fig1) == {"ideal", "base-pipelined", "base+L0", "base"}
        for per_size in fig1.values():
            assert set(per_size) == set(TWO_SIZES)
            assert all(v > 0 for v in per_size.values())

    def test_ideal_dominates_base(self, fig1):
        for size in TWO_SIZES:
            assert fig1["ideal"][size] >= fig1["base"][size] * 0.98


class TestFigure5And6:
    def test_figure5_structure(self, session):
        series = session.figure5_series(l1_sizes=[4096], **FAST)
        assert len(series) == 6
        assert all(4096 in per for per in series.values())

    def test_figure6_structure(self, session):
        series = session.figure6_series(benchmarks=["gzip", "mcf"],
                                        max_instructions=1200)
        assert set(series) == {"gzip", "mcf", "HMEAN"}
        for per_scheme in series.values():
            assert len(per_scheme) == 3
            assert all(v > 0 for v in per_scheme.values())


class TestSourceDistributions:
    def test_figure7_fractions_sum_to_one(self, session):
        series = session.figure7_series(with_l0=True, l1_sizes=[4096], **FAST)
        for scheme, per_size in series.items():
            dist = per_size[4096]
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)

    def test_figure7_clgp_uses_prebuffer_more_than_fdp(self, session):
        series = session.figure7_series(with_l0=False, l1_sizes=[4096],
                                        benchmarks=["gcc"],
                                        max_instructions=2000)
        assert series["CLGP"][4096]["PB"] > series["FDP"][4096]["PB"]

    def test_figure8_structure(self, session):
        series = session.figure8_series(l1_sizes=[4096], **FAST)
        assert set(series) == {"FDP", "CLGP"}


class TestHeadlineAndAblation:
    def test_headline_speedups_structure(self, session):
        data = session.headline_speedups(benchmarks=["gzip"],
                                         max_instructions=1200)
        assert set(data) == {"0.09um", "0.045um"}
        for tech in data.values():
            assert {"clgp_over_fdp", "clgp_over_base_pipelined",
                    "ipc"} <= set(tech)

    def test_ablation_series_contains_all_variants(self, session):
        data = session.ablation_series(benchmarks=["gzip"],
                                       max_instructions=1200)
        assert "CLGP+L0 (full)" in data
        assert "FDP+L0 (reference)" in data
        assert len(data) == 5
        assert all(v > 0 for v in data.values())
