"""Tests for the SPECint2000 benchmark profiles."""

import pytest

from repro.workloads.spec2000 import (
    DEFAULT_MIX,
    SPECINT2000_NAMES,
    SPECINT2000_PROFILES,
    profile_for,
    profiles_for,
)


class TestProfileCatalogue:
    def test_all_twelve_benchmarks_present(self):
        assert len(SPECINT2000_NAMES) == 12
        assert set(SPECINT2000_NAMES) == set(SPECINT2000_PROFILES)

    def test_names_match_paper_figure6_order(self):
        assert SPECINT2000_NAMES == [
            "gzip", "vpr", "gcc", "mcf", "crafty", "parser",
            "eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
        ]

    def test_profile_for_known(self):
        p = profile_for("gcc")
        assert p.name == "gcc"

    def test_profile_for_unknown_raises_with_hint(self):
        with pytest.raises(KeyError) as excinfo:
            profile_for("doom")
        assert "gzip" in str(excinfo.value)

    def test_profiles_for_preserves_order(self):
        ps = profiles_for(["mcf", "gzip"])
        assert [p.name for p in ps] == ["mcf", "gzip"]

    def test_default_mix_is_valid_subset(self):
        assert set(DEFAULT_MIX) <= set(SPECINT2000_NAMES)
        assert len(DEFAULT_MIX) >= 3


class TestProfileCharacteristics:
    def test_unique_seeds(self):
        seeds = [p.seed for p in SPECINT2000_PROFILES.values()]
        assert len(set(seeds)) == len(seeds)

    def test_footprint_split(self):
        """Small benchmarks must be much smaller than the large ones (the
        paper's premise: gzip fits in tiny caches, gcc does not)."""
        small = {"gzip", "mcf", "bzip2"}
        large = {"gcc", "eon", "perlbmk", "vortex"}
        max_small = max(SPECINT2000_PROFILES[n].footprint_kb for n in small)
        min_large = min(SPECINT2000_PROFILES[n].footprint_kb for n in large)
        assert min_large > 5 * max_small

    def test_mcf_is_data_bound(self):
        mcf = profile_for("mcf")
        others = [p for n, p in SPECINT2000_PROFILES.items() if n != "mcf"]
        assert mcf.dl1_miss_rate > max(p.dl1_miss_rate for p in others)

    def test_gzip_is_most_predictable(self):
        gzip = profile_for("gzip")
        assert gzip.hard_branch_fraction <= min(
            p.hard_branch_fraction for p in SPECINT2000_PROFILES.values()
        )

    def test_probabilities_are_valid(self):
        for profile in SPECINT2000_PROFILES.values():
            assert 0.0 <= profile.dl1_miss_rate <= 1.0
            assert 0.0 <= profile.l2_data_miss_rate <= 1.0
            assert 0.0 <= profile.hard_branch_fraction <= 1.0
            assert 0.0 <= profile.load_fraction + profile.store_fraction < 1.0
