"""Tests for the ``repro.api`` Session/Experiment façade.

Covers the v1 surface: session lifecycle (shared-pool shutdown on
``__exit__``), eager spec validation, sampled-vs-full parity through
``submit()``, progress-event ordering and payloads, and cancellation.
"""

import threading

import pytest

from repro.api import (
    ExecutionOptions,
    ExperimentPlan,
    ExperimentSpec,
    ProgressEvent,
    RunCancelled,
    Session,
    default_session,
    paper_config,
)
from repro.simulator import runner as runner_module
from repro.simulator.config import SimulationConfig


def fast_config(**kw):
    base = dict(engine="baseline", technology="0.045um", l1_size_bytes=4096,
                max_instructions=800, warmup_instructions=2000)
    base.update(kw)
    return SimulationConfig(**base)


def fast_spec(**kw):
    base = dict(scheme="base", benchmarks=("gzip",), max_instructions=800)
    base.update(kw)
    return ExperimentSpec(**base)


class TestSpecValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            ExperimentSpec(scheme="NOPE")

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="quake"):
            ExperimentSpec(scheme="base", benchmarks=("quake",))

    def test_empty_benchmarks(self):
        with pytest.raises(ValueError, match="at least one benchmark"):
            ExperimentSpec(scheme="base", benchmarks=())

    def test_bad_instruction_budget(self):
        with pytest.raises(ValueError, match="max_instructions"):
            ExperimentSpec(scheme="base", max_instructions=0)

    def test_bad_l1_sizes(self):
        with pytest.raises(ValueError, match="l1_sizes"):
            ExperimentSpec(scheme="base", l1_sizes=(0,))

    def test_negative_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            ExecutionOptions(jobs=-2)

    def test_session_rejects_negative_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            Session(jobs=-1)

    def test_all_benchmarks_keyword(self):
        spec = ExperimentSpec(scheme="base", benchmarks="all")
        assert len(spec.benchmarks) == 12

    def test_single_strings_normalized(self):
        spec = fast_spec()
        assert spec.schemes == ("base",)
        assert spec.benchmarks == ("gzip",)

    def test_submit_rejects_other_types(self):
        with Session() as session:
            with pytest.raises(TypeError):
                session.submit(object())


class TestSpecPlans:
    def test_sweep_keys(self):
        spec = fast_spec(scheme=("base", "FDP"), benchmarks=("gzip", "mcf"),
                         l1_sizes=(1024, 4096))
        plan = spec.to_plan()
        assert len(plan) == 8
        assert plan.tasks[0].key == ("base", 1024)
        assert plan.tasks[-1].key == ("FDP", 4096)

    def test_point_keys_and_overrides(self):
        spec = fast_spec(config_overrides={"warmup_instructions": 1234})
        plan = spec.to_plan()
        assert plan.tasks[0].key == ("base",)
        assert plan.tasks[0].config.warmup_instructions == 1234

    def test_sampled_flag_rides_tasks(self):
        plan = fast_spec().to_plan(sampled=True)
        assert all(task.sampled for task in plan.tasks)


class TestSessionLifecycle:
    def test_context_manager_shuts_down_pool(self, monkeypatch):
        # Force the pool path: this fast plan is small enough that the
        # overhead-aware planner would otherwise run it inline.
        monkeypatch.setenv("REPRO_NO_INLINE_FALLBACK", "1")
        with Session(jobs=2) as session:
            session.run(fast_spec(benchmarks=("gzip", "mcf")))
            assert runner_module._POOL is not None
        assert runner_module._POOL is None
        assert session.closed

    def test_submit_after_close_raises(self):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(fast_spec())

    def test_close_is_idempotent(self):
        session = Session()
        session.close()
        session.close()

    def test_cache_overrides_restored_on_close(self, tmp_path):
        from repro.cache import cache_enabled, get_store

        before_root = str(get_store().root)
        with Session(cache_dir=str(tmp_path / "api-cache"), cache=False):
            assert str(get_store().root) == str(tmp_path / "api-cache")
            assert not cache_enabled()
        assert str(get_store().root) == before_root

    def test_workload_registry(self):
        with Session() as session:
            assert "gzip" in session.workloads()
            assert session.workload("gzip") is session.workload("gzip")


class TestRunHandle:
    def test_run_matches_legacy_inline_result(self):
        config = fast_config()
        plan = ExperimentPlan("t")
        plan.add(config, "gzip", 800)
        with Session() as session:
            facade = session.run(plan).results[0]
        legacy = runner_module._execute_single(config, "gzip", 800)
        assert facade == legacy

    def test_progress_event_ordering(self):
        spec = fast_spec(benchmarks=("gzip", "mcf", "eon"))
        with Session() as session:
            handle = session.submit(spec)
            streamed = list(handle.events())
        kinds = [event.kind for event in handle.event_log]
        assert kinds[0] == "submitted"
        assert kinds[1] == "started"
        assert kinds[2:-1] == ["task"] * 3
        assert kinds[-1] == "done"
        # completed counts are monotonically non-decreasing and end at total
        completed = [event.completed for event in handle.event_log]
        assert completed == sorted(completed)
        assert handle.event_log[-1].completed == 3
        assert handle.progress() == (3, 3)
        # the streamed view saw every event, in order
        assert streamed == handle.event_log

    def test_task_events_carry_payload(self):
        with Session() as session:
            handle = session.submit(fast_spec())
            handle.result()
        task_events = [e for e in handle.event_log if e.kind == "task"]
        assert len(task_events) == 1
        event = task_events[0]
        assert event.benchmark == "gzip"
        assert event.key == ("base",)
        assert event.seconds > 0
        assert event.cache_hits is not None

    def test_listener_callbacks(self):
        seen = []
        with Session() as session:
            handle = session.submit(fast_spec())
            handle.add_listener(seen.append)
            handle.result()
        assert any(event.kind == "done" for event in seen)
        assert all(isinstance(event, ProgressEvent) for event in seen)

    def test_parallel_results_identical_to_inline(self):
        spec = fast_spec(scheme=("base", "FDP"), benchmarks=("gzip", "mcf"))
        with Session() as inline:
            serial = inline.run(spec)
        with Session(jobs=2) as parallel:
            fanned = parallel.run(spec)
        assert serial.results == fanned.results
        assert list(serial.by_key()) == list(fanned.by_key())

    def test_result_timeout(self):
        with Session() as session:
            handle = session.submit(fast_spec())
            handle.result()   # make sure it finishes
            assert handle.result(timeout=0.001).results

    def test_run_result_metadata(self):
        with Session() as session:
            result = session.run(fast_spec())
        assert result.elapsed_seconds > 0
        assert len(result) == 1


class TestCancellation:
    def test_cancel_mid_run_stops_remaining_tasks(self):
        spec = fast_spec(benchmarks=("gzip", "mcf", "eon", "gcc"))
        with Session() as session:
            # Attach the listener while the execution lock keeps the run
            # queued: with warm result replay a task can finish in
            # microseconds, so attaching after submit() would race the
            # whole run.  Cancel then fires from the executor thread
            # after the first finished task, deterministically (listeners
            # run synchronously between tasks).
            with session._exec_lock:
                handle = session.submit(spec)
                handle.add_listener(
                    lambda event: handle.cancel()
                    if event.kind == "task" else None)
            with pytest.raises(RunCancelled):
                handle.result()
        assert handle.status() == "cancelled"
        completed, total = handle.progress()
        assert completed < total
        assert handle.event_log[-1].kind == "cancelled"
        assert handle.cancel() is False   # already finished

    def test_cancel_before_start(self):
        with Session() as session:
            # Hold the execution lock so the submission stays queued.
            with session._exec_lock:
                handle = session.submit(fast_spec())
                assert handle.cancel() is True
            with pytest.raises(RunCancelled):
                handle.result()
        assert handle.status() == "cancelled"


class TestSampledParity:
    BUDGET = 4000

    def test_sampled_submit_matches_legacy_run_sampled(self):
        from repro.sampling.sampled import _execute_sampled

        config = fast_config(max_instructions=self.BUDGET)
        plan = ExperimentPlan("t")
        plan.add(config, "gzip", self.BUDGET, sampled=True)
        with Session() as session:
            facade = session.run(plan).results[0]
        legacy = _execute_sampled(config, "gzip",
                                  max_instructions=self.BUDGET)
        assert facade == legacy
        assert facade.extras.get("sampled") == 1.0

    def test_sampled_vs_full_through_submit(self):
        spec = fast_spec(scheme="base-pipelined",
                         max_instructions=self.BUDGET)
        with Session() as session:
            full = session.run(spec).results[0]
            sampled = session.run(
                spec, options=ExecutionOptions(sampled=True)).results[0]
        assert full.extras.get("sampled") is None
        assert sampled.extras.get("sampled") == 1.0
        # The sampled estimate is normalized to the requested budget; the
        # full run may commit a handful of instructions past it.
        assert sampled.committed_instructions == self.BUDGET
        assert full.committed_instructions >= self.BUDGET
        # The sampled estimate tracks the full run closely at this budget.
        assert sampled.ipc == pytest.approx(full.ipc, rel=0.25)


class TestFigure5SampledParity:
    def test_sampled_figure5_byte_identical_across_jobs(self, tmp_path):
        """Acceptance: `figure 5 --sampled` output is byte-identical
        whether the grid runs inline or fanned out over workers."""
        from repro.api import format_ipc_sweep
        from repro.cache import temporary_cache_dir

        kwargs = dict(benchmarks=["gzip"], l1_sizes=[1024],
                      max_instructions=4000,
                      options=ExecutionOptions(sampled=True))
        with temporary_cache_dir(tmp_path / "fig5-parity"):
            with Session() as inline:
                serial = inline.figure5_series(**kwargs)
            with Session(jobs=2) as parallel:
                fanned = parallel.figure5_series(**kwargs)
        title = "Figure 5: main comparison [sampled]"
        assert (format_ipc_sweep(serial, title)
                == format_ipc_sweep(fanned, title))


class TestResultCacheReporting:
    """Full-run result replays are reported distinctly from ordinary
    artifact-store hits, and ``result_cache=False`` forces resimulation."""

    @staticmethod
    def _task_events(handle):
        return [e for e in handle.event_log if e.kind == "task"]

    def test_events_report_result_replays_distinctly(self, tmp_path):
        from repro.simulator.runner import clear_process_caches

        spec = fast_spec(benchmarks=("gzip", "mcf"))
        with Session(cache_dir=str(tmp_path / "rc")) as session:
            cold = session.submit(spec)
            cold_result = cold.result()
            assert all(e.result_cache_hits == 0
                       for e in self._task_events(cold))
            assert cold_result.result_cache_hits == 0

            clear_process_caches()
            warm = session.submit(spec)
            warm_result = warm.result()
        warm_events = self._task_events(warm)
        # Every task replayed its complete SimulationResult from disk --
        # exactly one result replay each, reported on its own field, and
        # counted separately from the store hit the replay itself causes.
        assert [e.result_cache_hits for e in warm_events] == [1, 1]
        assert all(e.cache_hits >= 1 for e in warm_events)
        assert warm_result.result_cache_hits == 2
        assert warm_result.results == cold_result.results

    def test_result_cache_false_forces_resimulation(self, tmp_path,
                                                    monkeypatch):
        from repro.simulator import runner as runner_mod
        from repro.simulator.runner import clear_process_caches

        spec = fast_spec()
        with Session(cache_dir=str(tmp_path / "rc-off")) as session:
            cold = session.run(spec)

            runs = []
            real_simulator = runner_mod.Simulator

            class SpySimulator(real_simulator):
                def run(self, *args, **kwargs):
                    runs.append(1)
                    return super().run(*args, **kwargs)

            monkeypatch.setattr(runner_mod, "Simulator", SpySimulator)
            clear_process_caches()
            warm = session.run(spec)
            assert not runs          # replayed: no simulation ran at all

            clear_process_caches()
            forced_handle = session.submit(
                spec, options=ExecutionOptions(result_cache=False))
            forced = forced_handle.result()
            assert runs              # --no-result-cache resimulated
        assert all(e.result_cache_hits == 0
                   for e in self._task_events(forced_handle))
        assert forced.result_cache_hits == 0
        assert warm.results == cold.results == forced.results

    def test_result_cache_override_is_scoped_to_the_submission(self,
                                                               tmp_path):
        from repro.cache.results import result_cache_enabled

        assert result_cache_enabled()
        with Session(cache_dir=str(tmp_path / "rc-scope")) as session:
            session.run(fast_spec(),
                        options=ExecutionOptions(result_cache=False))
            assert result_cache_enabled()   # restored after the run


class TestDefaultSession:
    def test_default_session_is_cached_and_reopened(self):
        session = default_session()
        assert default_session() is session
        session.close()
        reopened = default_session()
        assert reopened is not session
        assert not reopened.closed


class TestWeightedAffineChunks:
    """_affine_chunks balances by instruction budget, not task count."""

    def test_mixed_budgets_split_where_the_work_is(self):
        config = fast_config()
        # One benchmark with one huge task, another with many small ones:
        # count-based chunking would pair the huge task with small ones.
        tasks = [runner_module.SimTask(config=config, benchmark="gzip",
                                       max_instructions=100_000)]
        tasks += [runner_module.SimTask(config=config, benchmark="mcf",
                                        max_instructions=1000)
                  for _ in range(10)]
        chunks = runner_module._affine_chunks(tasks, jobs=2)
        weights = [
            sum(runner_module._task_weight(task) for _idx, task in chunk)
            for chunk in chunks
        ]
        # Heaviest chunk first, and the huge task is alone in its chunk.
        assert weights == sorted(weights, reverse=True)
        heaviest = chunks[0]
        assert len(heaviest) == 1
        assert heaviest[0][1].benchmark == "gzip"

    def test_single_benchmark_still_splits_for_parallelism(self):
        config = fast_config()
        tasks = [runner_module.SimTask(config=config, benchmark="gzip",
                                       max_instructions=1000)
                 for _ in range(8)]
        chunks = runner_module._affine_chunks(tasks, jobs=4)
        assert len(chunks) >= 4
        covered = sorted(index for chunk in chunks for index, _t in chunk)
        assert covered == list(range(8))

    def test_chunks_stay_single_benchmark(self):
        config = fast_config()
        tasks = []
        for name in ("gzip", "mcf", "eon"):
            for _ in range(3):
                tasks.append(runner_module.SimTask(
                    config=config, benchmark=name, max_instructions=1000))
        for chunk in runner_module._affine_chunks(tasks, jobs=2):
            assert len({task.benchmark for _idx, task in chunk}) == 1
