"""Tests for analysis metrics helpers."""

import pytest

from repro.analysis.metrics import (
    budget_equivalent_size,
    crossover_size,
    speedup_table,
)


class TestSpeedupTable:
    def test_relative_to_baseline(self):
        table = speedup_table({"base": 1.0, "CLGP": 1.25, "FDP": 1.1}, "base")
        assert table["CLGP"] == pytest.approx(0.25)
        assert table["FDP"] == pytest.approx(0.10)
        assert table["base"] == pytest.approx(0.0)

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            speedup_table({"a": 1.0}, "missing")


class TestCrossover:
    def test_crossover_found(self):
        a = {256: 0.9, 1024: 1.1, 4096: 1.3}
        b = {256: 1.0, 1024: 1.0, 4096: 1.0}
        assert crossover_size(a, b) == 1024

    def test_no_crossover(self):
        a = {256: 0.5, 1024: 0.6}
        b = {256: 1.0, 1024: 1.0}
        assert crossover_size(a, b) is None

    def test_only_common_sizes_considered(self):
        a = {256: 2.0}
        b = {1024: 1.0}
        assert crossover_size(a, b) is None


class TestBudgetEquivalent:
    def test_smallest_size_reaching_target(self):
        series = {256: 0.8, 1024: 1.0, 4096: 1.2, 16384: 1.4}
        assert budget_equivalent_size(1.1, series) == 4096
        assert budget_equivalent_size(0.1, series) == 256

    def test_unreachable_target(self):
        assert budget_equivalent_size(9.9, {256: 1.0}) is None
