"""Determinism guard for simulator checkpoints (snapshot / restore / skip).

Analogous to ``tests/test_event_loop.py``: the core contract is that a
``snapshot()``/``restore()`` round trip is *bit-identical* -- every field
of ``SimulationResult`` of a run that checkpointed and restored mid-way
must equal the uninterrupted run's, for every engine, and a checkpoint
must be restorable any number of times (and into other simulators of the
same configuration) with identical continuations.
"""

import dataclasses
import functools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling.checkpoint import CheckpointStore
from repro.simulator.simulator import Simulator
from repro.simulator.testing import make_sim_config
from repro.workloads.generator import WorkloadProfile
from repro.workloads.trace import Workload, build_workload

ENGINES = ["baseline", "fdp", "clgp", "next-line", "target-line"]


@functools.lru_cache(maxsize=None)
def _pooled_workload(seed: int) -> Workload:
    """Small randomized workloads for the property-based round trips
    (cached: hypothesis revisits seeds, and builds are the slow part)."""
    rng = random.Random(977 * (seed + 1))
    profile = WorkloadProfile(
        name=f"ckpt-prop-{seed}",
        footprint_kb=rng.choice([8.0, 16.0, 32.0]),
        num_functions=rng.randint(6, 24),
        avg_block_size=rng.uniform(4.0, 6.5),
        hard_branch_fraction=rng.uniform(0.06, 0.16),
        loop_fraction=rng.uniform(0.08, 0.20),
        avg_loop_iterations=rng.uniform(3.0, 7.0),
        call_fraction=rng.uniform(0.05, 0.10),
        dl1_miss_rate=rng.uniform(0.01, 0.06),
        seed=seed,
    )
    return build_workload(profile)


def _assert_identical(a, b):
    if a == b:
        return
    diffs = [
        f"{f.name}: a={getattr(a, f.name)!r} b={getattr(b, f.name)!r}"
        for f in dataclasses.fields(a)
        if getattr(a, f.name) != getattr(b, f.name)
    ]
    raise AssertionError("checkpoint round-trip diverged:\n  "
                         + "\n  ".join(diffs))


class TestSnapshotRestoreRoundTrip:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_mid_run_round_trip_is_bit_identical(self, medium_workload, engine):
        config = make_sim_config(engine=engine, max_instructions=2500)
        reference = Simulator(config, medium_workload).run()

        sim = Simulator(config, medium_workload)
        sim.run(1000)
        checkpoint = sim.snapshot()
        sim.restore(checkpoint)
        _assert_identical(sim.run(2500), reference)

    def test_checkpoint_restorable_many_times(self, medium_workload):
        config = make_sim_config(engine="clgp", max_instructions=2000)
        sim = Simulator(config, medium_workload)
        sim.warm_up()
        checkpoint = sim.snapshot()
        first = sim.run(2000)
        for _ in range(2):
            sim.restore(checkpoint)
            _assert_identical(sim.run(2000), first)

    def test_restore_into_fresh_simulator(self, medium_workload):
        config = make_sim_config(engine="fdp", max_instructions=2000)
        sim = Simulator(config, medium_workload)
        sim.warm_up()
        checkpoint = sim.snapshot()
        result = sim.run(2000)

        other = Simulator(config, medium_workload)
        other.restore(checkpoint)
        _assert_identical(other.run(2000), result)

    def test_checkpoint_properties(self, medium_workload):
        config = make_sim_config(max_instructions=1500)
        sim = Simulator(config, medium_workload)
        sim.run(500)
        checkpoint = sim.snapshot()
        assert checkpoint.cycle == sim.cycle
        assert (checkpoint.consumed_instructions
                == sim.prediction.oracle.consumed_instructions)

    def test_restore_resets_cycle_and_stats(self, medium_workload):
        config = make_sim_config(max_instructions=2000)
        sim = Simulator(config, medium_workload)
        sim.warm_up()
        checkpoint = sim.snapshot()
        sim.run(1200)
        assert sim.cycle > 0
        sim.restore(checkpoint)
        assert sim.cycle == 0
        assert sim.backend.stats.committed_instructions == 0


class TestSkipTo:
    def test_skip_is_deterministic(self, medium_workload):
        config = make_sim_config(engine="clgp", max_instructions=1500)
        results = []
        for _ in range(2):
            sim = Simulator(config, medium_workload)
            sim.warm_up()
            sim.skip_to(4000)
            results.append(sim.run(1500))
        _assert_identical(results[0], results[1])

    def test_skip_positions_the_oracle_exactly(self, medium_workload):
        config = make_sim_config(max_instructions=1000)
        sim = Simulator(config, medium_workload)
        sim.warm_up()
        skipped = sim.skip_to(3210)
        assert skipped == 3210
        assert sim.prediction.oracle.consumed_instructions == 3210
        # Absolute target: a second call to the same offset is a no-op.
        assert sim.skip_to(3210) == 0

    def test_skip_advances_dcache_load_index(self, medium_workload):
        config = make_sim_config(max_instructions=1000)
        sim = Simulator(config, medium_workload)
        sim.warm_up()
        sim.skip_to(5000)
        assert sim.backend.dcache._load_index > 0

    def test_skip_does_not_touch_timing(self, medium_workload):
        config = make_sim_config(max_instructions=1000)
        sim = Simulator(config, medium_workload)
        sim.warm_up()
        sim.skip_to(2000)
        assert sim.cycle == 0
        assert sim.backend.stats.committed_instructions == 0


class TestPositionalProperties:
    """Property-based round trips: random seeded configs/workloads pushed
    through ``snapshot()``/``restore()``/``skip_to`` must leave the
    machine *positionally exact* -- the predictor-facing path history,
    RAS, instruction-cache contents and the data-cache load index after
    a skip split at arbitrary checkpoints equal those after one
    continuous skip, and the timed continuation is bit-identical.
    (This invariant is what lets persisted positioned checkpoints be
    restored by runs whose skip targets were never seen before.)"""

    @settings(max_examples=8, deadline=None)
    @given(
        engine=st.sampled_from(ENGINES),
        l1_size=st.sampled_from([1024, 4096]),
        cuts=st.lists(st.integers(min_value=50, max_value=5000),
                      min_size=1, max_size=3),
        target=st.integers(min_value=5000, max_value=7000),
    )
    def test_split_skip_is_positionally_exact(self, medium_workload,
                                              engine, l1_size, cuts, target):
        config = make_sim_config(engine=engine, l1_size_bytes=l1_size,
                                 max_instructions=1500)
        reference = Simulator(config, medium_workload)
        reference.warm_up()
        reference.skip_to(target)

        split = Simulator(config, medium_workload)
        split.warm_up()
        for cut in sorted(cuts):
            split.skip_to(min(cut, target))
            checkpoint = split.snapshot()
            split = Simulator(config, medium_workload)   # fresh machine
            split.restore(checkpoint)
        split.skip_to(target)

        ref_pred, split_pred = reference.prediction, split.prediction
        assert split_pred.oracle.consumed_instructions == target
        assert ref_pred.oracle.consumed_instructions == target
        assert (split_pred.oracle.current_address()
                == ref_pred.oracle.current_address())
        assert split_pred.history == ref_pred.history
        assert split_pred.ras.snapshot() == ref_pred.ras.snapshot()
        assert (split.backend.dcache._load_index
                == reference.backend.dcache._load_index)
        assert (sorted(split.hierarchy.l1.resident_lines())
                == sorted(reference.hierarchy.l1.resident_lines()))
        assert (sorted(split.hierarchy.l2.resident_lines())
                == sorted(reference.hierarchy.l2.resident_lines()))
        # Strongest check: the timed continuations are bit-identical
        # (covers the predictor tables and every other skipped structure).
        _assert_identical(split.run(1500), reference.run(1500))

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        engine=st.sampled_from(["baseline", "fdp", "clgp"]),
        skip=st.integers(min_value=500, max_value=4000),
    )
    def test_randomized_workload_round_trip(self, seed, engine, skip):
        """Mid-skip snapshots restore bit-identically on randomized
        seeded workloads, into fresh simulators, any number of times."""
        workload = _pooled_workload(seed)
        config = make_sim_config(engine=engine, max_instructions=1200,
                                 warmup_instructions=3000)
        sim = Simulator(config, workload)
        sim.warm_up()
        sim.skip_to(skip)
        checkpoint = sim.snapshot()
        assert checkpoint.consumed_instructions == skip
        expected = sim.run(1200)

        other = Simulator(config, workload)
        other.restore(checkpoint)
        _assert_identical(other.run(1200), expected)
        other.restore(checkpoint)
        assert other.prediction.oracle.consumed_instructions == skip
        _assert_identical(other.run(1200), expected)


class TestCheckpointStore:
    def test_warm_checkpoint_cached(self, medium_workload):
        store = CheckpointStore()
        config = make_sim_config(max_instructions=1000)
        a = store.warm_checkpoint(config, medium_workload)
        b = store.warm_checkpoint(config, medium_workload)
        assert a is b

    def test_peek_does_not_build(self, medium_workload):
        store = CheckpointStore()
        config = make_sim_config(max_instructions=1000)
        assert store.peek_warm_checkpoint(config, medium_workload) is None
        built = store.warm_checkpoint(config, medium_workload)
        assert store.peek_warm_checkpoint(config, medium_workload) is built

    def test_revisit_builds_on_second_request(self, medium_workload):
        store = CheckpointStore()
        config = make_sim_config(max_instructions=1000)
        assert store.warm_checkpoint_if_revisited(
            config, medium_workload) is None
        second = store.warm_checkpoint_if_revisited(config, medium_workload)
        assert second is not None
        assert store.warm_checkpoint_if_revisited(
            config, medium_workload) is second

    def test_distinct_configs_get_distinct_checkpoints(self, medium_workload):
        store = CheckpointStore()
        a = store.warm_checkpoint(
            make_sim_config(max_instructions=1000), medium_workload)
        b = store.warm_checkpoint(
            make_sim_config(max_instructions=1000, l1_size_bytes=1024),
            medium_workload)
        assert a is not b

    def test_clear(self, medium_workload):
        store = CheckpointStore()
        store.warm_checkpoint(make_sim_config(max_instructions=1000),
                              medium_workload)
        assert len(store) > 0
        store.clear()
        assert len(store) == 0

    def test_warm_checkpoint_matches_plain_warm_up(self, medium_workload):
        """Restoring the store's warm checkpoint must continue exactly like
        a freshly warmed simulator (the sampled runner relies on the two
        states being interchangeable)."""
        store = CheckpointStore()
        config = make_sim_config(engine="fdp", max_instructions=1500)
        fresh = Simulator(config, medium_workload)
        fresh.warm_up()
        expected = fresh.run(1500)

        restored = Simulator(config, medium_workload)
        restored.restore(store.warm_checkpoint(config, medium_workload))
        _assert_identical(restored.run(1500), expected)
