"""Tests for the two-level stream predictor."""

from repro.frontend.stream_predictor import StreamPredictor, _StreamTable
from repro.workloads.isa import BranchKind
from repro.workloads.trace import ActualStream


def make_stream(start=0x1000, length=8, next_addr=0x5000,
                kind=BranchKind.CONDITIONAL, taken=True):
    return ActualStream(
        start=start, length=length, next_addr=next_addr, ends_taken=taken,
        terminator_kind=kind if taken else BranchKind.NONE,
        terminator_addr=start + (length - 1) * 4,
    )


class TestStreamTable:
    def test_insert_and_lookup(self):
        table = _StreamTable(16, associativity=2)
        table.update(0x40, 8, 0x900, BranchKind.CONDITIONAL)
        entry = table.lookup(0x40)
        assert entry is not None and entry.length == 8 and entry.next_addr == 0x900

    def test_miss_returns_none(self):
        table = _StreamTable(16, associativity=2)
        assert table.lookup(0x40) is None

    def test_consistent_update_raises_confidence(self):
        table = _StreamTable(16, associativity=2)
        for _ in range(4):
            table.update(0x40, 8, 0x900, BranchKind.CONDITIONAL)
        assert table.lookup(0x40).confidence == 3

    def test_conflicting_update_uses_hysteresis(self):
        table = _StreamTable(16, associativity=2)
        table.update(0x40, 8, 0x900, BranchKind.CONDITIONAL)
        # One disagreement lowers confidence but keeps the old prediction.
        table.update(0x40, 4, 0x800, BranchKind.CONDITIONAL)
        entry = table.lookup(0x40)
        assert entry.length == 8
        # A second disagreement replaces it.
        table.update(0x40, 4, 0x800, BranchKind.CONDITIONAL)
        assert table.lookup(0x40).length == 4

    def test_associative_sets_avoid_conflicts(self):
        table = _StreamTable(8, associativity=4)
        keys = [0x10 + i * table.num_sets for i in range(4)]  # same set
        for key in keys:
            table.update(key, 8, key + 0x100, BranchKind.NONE)
        for key in keys:
            assert table.lookup(key) is not None

    def test_lru_eviction_beyond_associativity(self):
        table = _StreamTable(4, associativity=2)
        keys = [0x10, 0x10 + table.num_sets, 0x10 + 2 * table.num_sets]
        for key in keys:
            # Repeat to drain hysteresis of potential victims.
            table.update(key, 8, key + 0x100, BranchKind.NONE)
            table.update(key, 8, key + 0x100, BranchKind.NONE)
        present = [k for k in keys if table.lookup(k) is not None]
        assert len(present) == 2
        assert table.occupancy() <= 4


class TestStreamPredictor:
    def test_cold_prediction_is_sequential(self):
        predictor = StreamPredictor(default_length=32)
        prediction = predictor.predict(0x1000, 0)
        assert not prediction.hit
        assert prediction.length == 32
        assert prediction.next_addr == 0x1000 + 32 * 4

    def test_learns_after_training(self):
        predictor = StreamPredictor()
        stream = make_stream()
        predictor.train(0x1000, 0, stream)
        prediction = predictor.predict(0x1000, 0)
        assert prediction.hit
        assert prediction.length == stream.length
        assert prediction.next_addr == stream.next_addr

    def test_return_streams_flag_ras(self):
        predictor = StreamPredictor()
        stream = make_stream(kind=BranchKind.RETURN)
        predictor.train(0x1000, 0, stream)
        prediction = predictor.predict(0x1000, 0)
        assert prediction.uses_ras

    def test_history_table_overrides_when_confident(self):
        predictor = StreamPredictor()
        history = 0xBEEF
        context_stream = make_stream(length=4, next_addr=0x7000)
        other_stream = make_stream(length=12, next_addr=0x9000)
        # Train the base table with the "other" behaviour and the history
        # table (same history) repeatedly with the context behaviour.
        predictor.train(0x1000, 0, other_stream)
        for _ in range(4):
            predictor.train(0x1000, history, context_stream)
        prediction = predictor.predict(0x1000, history)
        assert prediction.length == context_stream.length
        assert prediction.source == "l2"

    def test_statistics_counters(self):
        predictor = StreamPredictor()
        predictor.predict(0x1000, 0)
        predictor.train(0x1000, 0, make_stream())
        predictor.predict(0x1000, 0)
        assert predictor.lookups == 2
        assert predictor.table_misses == 1
        assert 0.0 < predictor.table_hit_rate <= 1.0

    def test_fold_history_changes_and_masks(self):
        h0 = 0
        h1 = StreamPredictor.fold_history(h0, 0x4000, True, bits=16)
        h2 = StreamPredictor.fold_history(h1, 0x8000, False, bits=16)
        assert h1 != h0
        assert h2 != h1
        assert 0 <= h1 < (1 << 17)

    def test_cap_ended_stream_trains_none_kind(self):
        predictor = StreamPredictor()
        stream = make_stream(taken=False)
        predictor.train(0x2000, 0, stream)
        prediction = predictor.predict(0x2000, 0)
        assert prediction.terminator_kind is BranchKind.NONE
        assert not prediction.uses_ras
