"""Tests for the simplified out-of-order back-end model."""

import pytest

from repro.backend.dcache import DataCacheModel
from repro.backend.pipeline import BackendPipeline
from repro.frontend.fetch_block import FetchedInstruction
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.workloads.isa import InstrClass


def make_backend(workload, ruu_size=16, resolution=4, on_redirect=None):
    hierarchy = MemoryHierarchy(HierarchyConfig(technology="0.09um"))
    dcache = DataCacheModel(hierarchy)
    return BackendPipeline(
        dcache=dcache,
        bbdict=workload.bbdict,
        commit_width=4,
        ruu_size=ruu_size,
        branch_resolution_latency=resolution,
        on_redirect=on_redirect,
    )


def alu(addr=0x1000, wrong_path=False, triggers_redirect=False):
    return FetchedInstruction(addr=addr, cls=InstrClass.ALU,
                              wrong_path=wrong_path,
                              triggers_redirect=triggers_redirect)


class TestDispatchAndCommit:
    def test_commit_width_limits_per_cycle(self, tiny_workload):
        backend = make_backend(tiny_workload)
        for i in range(8):
            assert backend.dispatch(alu(0x1000 + 4 * i), cycle=0)
        assert backend.tick(1) == 4
        assert backend.tick(2) == 4
        assert backend.stats.committed_instructions == 8

    def test_instructions_commit_only_after_completion(self, tiny_workload):
        backend = make_backend(tiny_workload)
        backend.dispatch(alu(), cycle=10)
        assert backend.tick(10) == 0     # completes at cycle 11
        assert backend.tick(11) == 1

    def test_ruu_capacity_backpressure(self, tiny_workload):
        backend = make_backend(tiny_workload, ruu_size=2)
        assert backend.dispatch(alu(), 0)
        assert backend.dispatch(alu(), 0)
        assert not backend.has_space()
        assert not backend.dispatch(alu(), 0)
        assert backend.stats.ruu_full_stalls == 1
        backend.tick(5)
        assert backend.has_space()

    def test_loads_use_dcache_model(self, tiny_workload):
        backend = make_backend(tiny_workload)
        block = tiny_workload.cfg.all_blocks()[0]
        load = FetchedInstruction(addr=block.addr, cls=InstrClass.LOAD,
                                  wrong_path=False)
        backend.dispatch(load, 0)
        assert backend.dcache.stats.loads == 1

    def test_wrong_path_loads_do_not_touch_dcache(self, tiny_workload):
        backend = make_backend(tiny_workload)
        load = FetchedInstruction(addr=0x1000, cls=InstrClass.LOAD,
                                  wrong_path=True)
        backend.dispatch(load, 0)
        assert backend.dcache.stats.loads == 0

    def test_wrong_path_instructions_never_commit(self, tiny_workload):
        backend = make_backend(tiny_workload)
        backend.dispatch(alu(wrong_path=True), 0)
        for cycle in range(1, 10):
            assert backend.tick(cycle) == 0
        assert backend.stats.committed_instructions == 0


class TestRedirect:
    def test_redirect_fires_after_resolution_latency(self, tiny_workload):
        fired = []
        backend = make_backend(tiny_workload, resolution=5,
                               on_redirect=fired.append)
        backend.dispatch(alu(triggers_redirect=True), cycle=10)
        backend.dispatch(alu(wrong_path=True), cycle=10)
        for cycle in range(10, 20):
            backend.tick(cycle)
        assert fired == [15]
        assert backend.stats.redirects == 1

    def test_redirect_squashes_wrong_path(self, tiny_workload):
        backend = make_backend(tiny_workload, resolution=3)
        backend.dispatch(alu(triggers_redirect=True), 0)
        for i in range(5):
            backend.dispatch(alu(0x2000 + 4 * i, wrong_path=True), 0)
        for cycle in range(0, 6):
            backend.tick(cycle)
        assert backend.stats.squashed_instructions == 5
        assert backend.occupancy == 0
        # The branch itself was correct-path and must have committed.
        assert backend.stats.committed_instructions == 1

    def test_correct_path_instructions_survive_redirect(self, tiny_workload):
        backend = make_backend(tiny_workload, resolution=2)
        backend.dispatch(alu(0x1000), 0)
        backend.dispatch(alu(0x1004, triggers_redirect=True), 0)
        backend.dispatch(alu(0x2000, wrong_path=True), 0)
        for cycle in range(0, 5):
            backend.tick(cycle)
        assert backend.stats.committed_instructions == 2

    def test_redirect_pending_property(self, tiny_workload):
        backend = make_backend(tiny_workload, resolution=99)
        backend.dispatch(alu(triggers_redirect=True), 0)
        assert backend.redirect_pending


class TestStats:
    def test_dispatch_counters(self, tiny_workload):
        backend = make_backend(tiny_workload)
        backend.dispatch(alu(), 0)
        backend.dispatch(alu(wrong_path=True), 0)
        assert backend.stats.dispatched_instructions == 2
        assert backend.stats.wrong_path_dispatched == 1

    def test_commit_stall_cycles(self, tiny_workload):
        backend = make_backend(tiny_workload)
        backend.tick(0)
        assert backend.stats.commit_stall_cycles == 1
