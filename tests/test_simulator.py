"""Integration tests for the top-level simulator."""

import pytest

from repro.simulator.config import SimulationConfig
from repro.simulator.simulator import Simulator, simulate
from repro.simulator.testing import make_sim_config


class TestBasicRuns:
    @pytest.mark.parametrize("engine", ["baseline", "fdp", "clgp"])
    def test_engines_run_to_completion(self, tiny_workload, engine):
        config = make_sim_config(engine=engine, max_instructions=1500)
        result = Simulator(config, tiny_workload).run()
        assert result.committed_instructions >= 1500
        assert result.cycles > 0
        assert 0.05 < result.ipc < 4.0

    def test_next_line_and_target_line_engines(self, tiny_workload):
        for engine in ("next-line", "target-line"):
            config = make_sim_config(engine=engine, max_instructions=1000)
            result = Simulator(config, tiny_workload).run()
            assert result.committed_instructions >= 1000

    def test_simulate_helper(self, tiny_workload):
        config = make_sim_config(max_instructions=800)
        result = simulate(config, tiny_workload)
        assert result.committed_instructions >= 800

    def test_workload_by_name(self):
        config = make_sim_config(max_instructions=800, warmup_instructions=2000)
        result = simulate(config, "gzip")
        assert result.workload == "gzip"

    def test_workload_by_profile(self):
        from repro.workloads.generator import WorkloadProfile
        config = make_sim_config(max_instructions=500, warmup_instructions=0)
        profile = WorkloadProfile(name="adhoc", footprint_kb=4, seed=21)
        assert simulate(config, profile).workload == "adhoc"

    def test_invalid_workload_type(self):
        with pytest.raises(TypeError):
            Simulator(make_sim_config(), 12345)


class TestResultConsistency:
    def test_committed_not_more_than_dispatched(self, tiny_workload):
        result = simulate(make_sim_config(engine="fdp"), tiny_workload)
        assert result.committed_instructions <= result.dispatched_instructions

    def test_fetch_source_fractions_sum_to_one(self, tiny_workload):
        result = simulate(make_sim_config(engine="clgp"), tiny_workload)
        assert sum(result.fetch_source_fractions().values()) == pytest.approx(1.0)

    def test_baseline_never_prefetches(self, tiny_workload):
        result = simulate(make_sim_config(engine="baseline"), tiny_workload)
        assert result.prefetches_issued == 0
        assert result.bus_grants["prefetch"] == 0

    def test_prefetchers_issue_prefetches(self, medium_workload):
        result = simulate(make_sim_config(engine="clgp", max_instructions=3000),
                          medium_workload)
        assert result.prefetches_issued > 0

    def test_redirects_match_flushes(self, tiny_workload):
        result = simulate(make_sim_config(engine="clgp"), tiny_workload)
        assert result.flushes == result.stream_mispredictions or (
            result.flushes <= result.stream_mispredictions
        )

    def test_deterministic_given_config(self, tiny_workload):
        config = make_sim_config(engine="clgp", max_instructions=1200)
        a = Simulator(config, tiny_workload).run()
        b = Simulator(config, tiny_workload).run()
        assert a.cycles == b.cycles
        assert a.committed_instructions == b.committed_instructions
        assert a.fetch_source_lines == b.fetch_source_lines

    def test_extras_present(self, tiny_workload):
        result = simulate(make_sim_config(engine="clgp"), tiny_workload)
        assert "l1_latency" in result.extras
        assert result.extras["prebuffer_entries"] == 4


class TestConfigurationEffects:
    def test_ideal_l1_not_slower_than_blocking_base(self, medium_workload):
        base = simulate(make_sim_config(engine="baseline", max_instructions=3000),
                        medium_workload)
        ideal = simulate(make_sim_config(engine="baseline", ideal_l1=True,
                                         max_instructions=3000),
                         medium_workload)
        assert ideal.ipc >= base.ipc * 0.98

    def test_larger_l1_helps_ideal_baseline(self, medium_workload):
        small = simulate(make_sim_config(engine="baseline", ideal_l1=True,
                                         l1_size_bytes=512,
                                         max_instructions=3000),
                         medium_workload)
        large = simulate(make_sim_config(engine="baseline", ideal_l1=True,
                                         l1_size_bytes=65536,
                                         max_instructions=3000),
                         medium_workload)
        assert large.ipc > small.ipc

    def test_step_can_be_called_directly(self, tiny_workload):
        sim = Simulator(make_sim_config(max_instructions=100), tiny_workload)
        sim.warm_up()
        for _ in range(50):
            sim.step()
        assert sim.cycle == 50

    def test_max_cycles_limit_respected(self, tiny_workload):
        config = make_sim_config(max_instructions=10**9, max_cycles=300)
        result = Simulator(config, tiny_workload).run()
        assert result.cycles <= 300
