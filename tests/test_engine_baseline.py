"""Tests for the baseline (no-prefetch) fetch engine."""

import pytest

from repro.core.baseline import BaselineEngine
from repro.core.engine import FetchEngineConfig
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy

from engine_harness import RecordingBackend, block_for, drive


def make_engine(workload, l0=False, pipelined=False, l1_size=4096,
                tech="0.045um", **cfg_overrides):
    hierarchy = MemoryHierarchy(HierarchyConfig(
        technology=tech, l1_size_bytes=l1_size,
        l0_size_bytes=256 if l0 else None, l1_pipelined=pipelined,
    ))
    config = FetchEngineConfig(**cfg_overrides)
    return BaselineEngine(config, hierarchy, workload.bbdict)


class TestFetchFromL1:
    def test_delivers_all_instructions_of_block(self, tiny_workload):
        engine = make_engine(tiny_workload)
        backend = RecordingBackend()
        block = block_for(tiny_workload)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        drive(engine, backend, 20)
        assert backend.count == block.length
        assert set(backend.sources()) == {"il1"}

    def test_l1_latency_delays_first_delivery(self, tiny_workload):
        engine = make_engine(tiny_workload)   # 4KB @ 0.045um -> 4 cycles
        backend = RecordingBackend()
        block = block_for(tiny_workload)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        delivered_by_cycle = []
        for cycle in range(8):
            delivered_by_cycle.append(engine.fetch_tick(cycle, backend))
            engine.hierarchy.tick(cycle)
        # Nothing can be delivered before the 4-cycle L1 access completes.
        assert sum(delivered_by_cycle[:4]) == 0
        assert sum(delivered_by_cycle) > 0

    def test_fetch_width_limits_delivery_rate(self, tiny_workload):
        engine = make_engine(tiny_workload, fetch_width=2)
        backend = RecordingBackend()
        block = block_for(tiny_workload)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        for cycle in range(30):
            assert engine.fetch_tick(cycle, backend) <= 2
            engine.hierarchy.tick(cycle)

    def test_backend_backpressure(self, tiny_workload):
        engine = make_engine(tiny_workload)
        backend = RecordingBackend(capacity=2)
        # Pick a basic block with more instructions than the back-end space.
        index = next(i for i, b in enumerate(tiny_workload.cfg.all_blocks())
                     if b.size >= 4)
        block = block_for(tiny_workload, index)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        drive(engine, backend, 20)
        assert backend.count == 2
        assert engine.stats.stall_cycles.get("backend-full", 0) > 0


class TestDemandMiss:
    def test_miss_is_served_by_l2_and_fills_l1(self, tiny_workload):
        engine = make_engine(tiny_workload)
        backend = RecordingBackend()
        block = block_for(tiny_workload)
        engine.hierarchy.l2.fill(block.start)
        engine.enqueue_block(block, 0)
        drive(engine, backend, 40)
        assert backend.count == block.length
        assert set(backend.sources()) == {"ul2"}
        assert engine.hierarchy.l1.contains(block.start)

    def test_uncached_miss_goes_to_memory(self, tiny_workload):
        engine = make_engine(tiny_workload)
        backend = RecordingBackend()
        block = block_for(tiny_workload)
        engine.enqueue_block(block, 0)
        drive(engine, backend, 260)
        assert set(backend.sources()) == {"Mem"}
        assert engine.hierarchy.l2.contains(block.start)


class TestL0Behaviour:
    def test_l0_hit_is_one_cycle(self, tiny_workload):
        engine = make_engine(tiny_workload, l0=True)
        backend = RecordingBackend()
        block = block_for(tiny_workload)
        engine.hierarchy.l0.fill(block.start)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        first_delivery = None
        for cycle in range(10):
            if engine.fetch_tick(cycle, backend) and first_delivery is None:
                first_delivery = cycle
            engine.hierarchy.tick(cycle)
        assert first_delivery is not None and first_delivery <= 2
        assert backend.sources()[0] == "il0"

    def test_consumed_l1_lines_fill_l0(self, tiny_workload):
        engine = make_engine(tiny_workload, l0=True)
        backend = RecordingBackend()
        block = block_for(tiny_workload)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        drive(engine, backend, 20)
        assert engine.hierarchy.l0.contains(block.start)

    def test_name_reflects_l0(self, tiny_workload):
        assert make_engine(tiny_workload).name == "base"
        assert make_engine(tiny_workload, l0=True).name == "base+L0"


class TestQueueAndFlush:
    def test_can_accept_until_queue_full(self, tiny_workload):
        engine = make_engine(tiny_workload, queue_capacity_blocks=2)
        assert engine.can_accept_block()
        engine.enqueue_block(block_for(tiny_workload, 0), 0)
        engine.enqueue_block(block_for(tiny_workload, 1), 0)
        assert not engine.can_accept_block()

    def test_flush_discards_pending_work(self, tiny_workload):
        engine = make_engine(tiny_workload)
        backend = RecordingBackend()
        block = block_for(tiny_workload)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        drive(engine, backend, 2)   # start the access but deliver nothing yet
        engine.flush(2)
        drive(engine, backend, 20, start_cycle=3)
        assert backend.count == 0
        assert engine.stats.flushes == 1

    def test_never_prefetches(self, tiny_workload):
        engine = make_engine(tiny_workload)
        backend = RecordingBackend()
        engine.enqueue_block(block_for(tiny_workload), 0)
        drive(engine, backend, 50)
        assert engine.stats.prefetches_issued == 0
