"""Tests for the functional warm-up machinery."""

from repro.frontend.stream_predictor import StreamPredictor
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.simulator.warming import (
    apply_warmup,
    clear_warmup_cache,
    compute_warmup,
    functional_warmup,
    get_warmup_artifacts,
)


class TestComputeWarmup:
    def test_replays_requested_instructions(self, tiny_workload):
        artifacts = compute_warmup(tiny_workload, 2000)
        assert artifacts.instructions >= 2000
        assert artifacts.line_trace
        assert artifacts.predictor.base_table.occupancy() > 0

    def test_cache_returns_same_object(self, tiny_workload):
        clear_warmup_cache()
        a = get_warmup_artifacts(tiny_workload, 1000)
        b = get_warmup_artifacts(tiny_workload, 1000)
        assert a is b
        c = get_warmup_artifacts(tiny_workload, 2000)
        assert c is not a
        clear_warmup_cache()

    def test_apply_warmup_copies_predictor(self, tiny_workload):
        artifacts = compute_warmup(tiny_workload, 1000)
        hierarchy = MemoryHierarchy(HierarchyConfig())
        predictor = apply_warmup(artifacts, hierarchy)
        assert predictor is not artifacts.predictor
        assert predictor.base_table.occupancy() == artifacts.predictor.base_table.occupancy()
        assert hierarchy.l1.occupancy() > 0
        assert hierarchy.l2.occupancy() > 0

    def test_apply_warmup_without_caches(self, tiny_workload):
        artifacts = compute_warmup(tiny_workload, 500)
        hierarchy = MemoryHierarchy(HierarchyConfig())
        apply_warmup(artifacts, hierarchy, warm_caches=False)
        assert hierarchy.l1.occupancy() == 0


class TestFunctionalWarmup:
    def test_in_place_training(self, tiny_workload):
        predictor = StreamPredictor()
        hierarchy = MemoryHierarchy(HierarchyConfig())
        replayed = functional_warmup(tiny_workload, predictor, hierarchy, 1500)
        assert replayed >= 1500
        assert predictor.base_table.occupancy() > 0
        assert hierarchy.l1.occupancy() > 0

    def test_zero_budget_is_noop(self, tiny_workload):
        predictor = StreamPredictor()
        assert functional_warmup(tiny_workload, predictor, None, 0) == 0
        assert predictor.base_table.occupancy() == 0

    def test_improves_prediction_accuracy(self, tiny_workload):
        """A warmed predictor must predict the start of the correct path
        much better than a cold one."""
        cold = StreamPredictor()
        warm = StreamPredictor()
        functional_warmup(tiny_workload, warm, None, 4000)

        def count_hits(predictor):
            oracle = tiny_workload.new_oracle()
            history = 0
            hits = 0
            for _ in range(200):
                addr = oracle.current_address()
                actual = oracle.peek_stream(64)
                pred = predictor.predict(addr, history)
                if (pred.length == actual.length
                        and pred.next_addr == actual.next_addr):
                    hits += 1
                history = StreamPredictor.fold_history(
                    history, actual.next_addr, actual.ends_taken)
                oracle.advance(actual.length)
            return hits

        assert count_hits(warm) > count_hits(cold) + 50
