"""Tests for the Cache Line Guided Prestaging engine."""

import pytest

from repro.core.clgp import CLGPEngine
from repro.core.engine import FetchEngineConfig
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy

from engine_harness import (
    RecordingBackend,
    block_for,
    blocks_on_distinct_lines,
    drive,
)


def make_engine(workload, l0=False, entries=4, **cfg_overrides):
    hierarchy = MemoryHierarchy(HierarchyConfig(
        technology="0.045um", l1_size_bytes=4096,
        l0_size_bytes=256 if l0 else None,
    ))
    config = FetchEngineConfig(prebuffer_entries=entries, **cfg_overrides)
    return CLGPEngine(config, hierarchy, workload.bbdict)


def big_block(workload, min_size=4):
    index = next(i for i, b in enumerate(workload.cfg.all_blocks())
                 if b.size >= min_size)
    return block_for(workload, index)


class TestPrestagingAlgorithm:
    def test_blocks_split_into_cltq_lines(self, tiny_workload):
        engine = make_engine(tiny_workload)
        block = big_block(tiny_workload)
        engine.enqueue_block(block, 0)
        assert engine.cltq.occupancy_lines == len(block.lines(64))

    def test_new_line_allocates_prestage_entry(self, tiny_workload):
        engine = make_engine(tiny_workload)
        block = big_block(tiny_workload)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        entry = engine.prestage_buffer.get(block.lines(64)[0])
        assert entry is not None and entry.consumers == 1
        assert engine.stats.prefetches_issued == 1

    def test_repeated_line_increments_consumers_without_new_prefetch(self, tiny_workload):
        engine = make_engine(tiny_workload)
        block = big_block(tiny_workload)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        issued_before = engine.stats.prefetches_issued
        engine.enqueue_block(big_block(tiny_workload), 0)  # same lines again
        engine.prefetch_tick(1)
        engine.prefetch_tick(2)
        entry = engine.prestage_buffer.get(block.lines(64)[0])
        assert entry.consumers >= 2
        assert engine.stats.prefetch_source["PB"] >= 1
        assert engine.stats.prefetches_issued >= issued_before

    def test_no_filtering_prefetches_l1_resident_lines(self, tiny_workload):
        engine = make_engine(tiny_workload)
        block = big_block(tiny_workload)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        entry = engine.prestage_buffer.get(block.lines(64)[0])
        assert entry is not None
        assert entry.valid and entry.source == "il1"

    def test_filtering_ablation_skips_l1_resident_lines(self, tiny_workload):
        engine = make_engine(tiny_workload, clgp_use_filtering=True)
        block = big_block(tiny_workload)
        engine.hierarchy.l1.fill(block.start)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        assert engine.prestage_buffer.get(block.lines(64)[0]) is None

    def test_allocation_stalls_when_all_entries_have_consumers(self, tiny_workload):
        engine = make_engine(tiny_workload, entries=1)
        for block in blocks_on_distinct_lines(tiny_workload, 3):
            engine.enqueue_block(block, 0)
        for cycle in range(4):
            engine.prefetch_tick(cycle)
        assert engine.stats.prefetch_buffer_stalls >= 1
        assert engine.prestage_buffer.occupancy == 1


class TestFetchBehaviour:
    def test_fetch_from_prestage_decrements_consumers(self, tiny_workload):
        engine = make_engine(tiny_workload)
        backend = RecordingBackend()
        block = big_block(tiny_workload)
        engine.hierarchy.l2.fill(block.start)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        entry = engine.prestage_buffer.get(block.lines(64)[0])
        before = entry.consumers
        drive(engine, backend, 60, prefetch=False)
        assert "PB" in backend.sources()
        assert entry.consumers == before - 1

    def test_consumed_line_not_copied_to_cache(self, tiny_workload):
        engine = make_engine(tiny_workload, l0=True)
        backend = RecordingBackend()
        block = big_block(tiny_workload)
        line = block.lines(64)[0]
        engine.hierarchy.l2.fill(line)
        engine.enqueue_block(block, 0)
        # Let the prefetch land before any fetch happens, so the line is
        # served by the prestage buffer (not by a demand miss).
        engine.prefetch_tick(0)
        for cycle in range(30):
            engine.hierarchy.tick(cycle)
        drive(engine, backend, 40, start_cycle=30, prefetch=False)
        first_line_sources = {
            i.fetch_source for i in backend.instructions
            if (i.addr - (i.addr % 64)) == line
        }
        assert first_line_sources == {"PB"}
        assert not engine.hierarchy.l0.contains(line)
        assert not engine.hierarchy.l1.contains(line)
        # ... and the line stays in the prestage buffer.
        assert engine.prestage_buffer.contains(line)

    def test_copy_to_cache_ablation(self, tiny_workload):
        engine = make_engine(tiny_workload, l0=True, clgp_copy_to_cache=True)
        backend = RecordingBackend()
        block = big_block(tiny_workload)
        engine.hierarchy.l2.fill(block.start)
        engine.enqueue_block(block, 0)
        drive(engine, backend, 60)
        if "PB" in backend.sources():
            assert engine.hierarchy.l0.contains(block.lines(64)[0])

    def test_free_on_use_ablation_releases_entry(self, tiny_workload):
        engine = make_engine(tiny_workload, clgp_free_on_use=True)
        backend = RecordingBackend()
        block = big_block(tiny_workload)
        engine.hierarchy.l2.fill(block.start)
        engine.enqueue_block(block, 0)
        engine.enqueue_block(big_block(tiny_workload), 0)  # extra consumer
        drive(engine, backend, 80)
        if "PB" in backend.sources():
            entry = engine.prestage_buffer.get(block.lines(64)[0])
            assert entry is None or entry.consumers == 0

    def test_demand_miss_fills_emergency_caches(self, tiny_workload):
        engine = make_engine(tiny_workload, l0=True)
        backend = RecordingBackend()
        block = big_block(tiny_workload)
        engine.hierarchy.l2.fill(block.start)
        engine.enqueue_block(block, 0)
        # No prefetching at all: every line is a demand miss.
        drive(engine, backend, 80, prefetch=False)
        assert set(backend.sources()) == {"ul2"}
        assert engine.hierarchy.l1.contains(block.start)
        assert engine.hierarchy.l0.contains(block.start)


class TestMispredictionFlush:
    def test_flush_resets_consumers_and_clears_cltq(self, tiny_workload):
        engine = make_engine(tiny_workload)
        block = big_block(tiny_workload)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        assert engine.prestage_buffer.total_consumers() > 0
        engine.flush(1)
        assert engine.prestage_buffer.total_consumers() == 0
        assert engine.cltq.occupancy_lines == 0

    def test_valid_lines_survive_flush_and_remain_usable(self, tiny_workload):
        engine = make_engine(tiny_workload)
        backend = RecordingBackend()
        block = big_block(tiny_workload)
        engine.hierarchy.l2.fill(block.start)
        engine.enqueue_block(block, 0)
        engine.prefetch_tick(0)
        drive(engine, backend, 30, prefetch=False)  # let the prefetch land
        engine.flush(30)
        # Re-enqueue the same block along the "new" path: the line is still
        # in the prestage buffer and is fetched from there.
        backend2 = RecordingBackend()
        engine.enqueue_block(big_block(tiny_workload), 31)
        drive(engine, backend2, 30, start_cycle=31)
        assert "PB" in backend2.sources()

    def test_name(self, tiny_workload):
        assert make_engine(tiny_workload).name == "CLGP"
        assert make_engine(tiny_workload, l0=True).name == "CLGP+L0"
