"""Frontier checkpoints: budget increases fast-forward, reruns don't.

A completed full run publishes its end state ("frontier") keyed by
configuration identity and committed-instruction offset.  A later run of
the same configuration with a **larger** budget restores the frontier
and resumes the timed loop -- bit-identical to a continuous run, because
the budget only decides when the loop stops.  An **equal** budget must
keep resimulating (strictly-smaller reuse): ``--no-result-cache`` means
"do the work again", and frontier reuse at the same offset would quietly
turn it back into a replay.
"""

import pytest

from repro.cache.store import temporary_cache_dir
from repro.sampling.checkpoint import DEFAULT_STORE, frontier_key
from repro.simulator.config import SimulationConfig
from repro.simulator.runner import _execute_single, clear_process_caches


def fast_config(**overrides):
    params = dict(engine="clgp", technology="0.045um", l1_size_bytes=4096,
                  max_instructions=1500, warmup_instructions=2000)
    params.update(overrides)
    return SimulationConfig(**params)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_process_caches()
    yield
    clear_process_caches()


class TestFrontierKey:
    def test_budget_is_neutralized_but_cycles_are_not(self):
        base = fast_config()
        assert frontier_key(base) == frontier_key(
            fast_config(max_instructions=9999)
        )
        assert frontier_key(base) != frontier_key(
            fast_config(max_cycles=10_000)
        )
        assert frontier_key(base) != frontier_key(
            fast_config(l1_size_bytes=1024)
        )

    def test_derived_warmup_stays_distinct(self):
        # warmup defaults from max_instructions, so two budgets with
        # *different resolved warm-ups* must not share frontiers.
        a = fast_config(warmup_instructions=None, max_instructions=20_000)
        b = fast_config(warmup_instructions=None, max_instructions=40_000)
        assert a.resolved_warmup_instructions() \
            != b.resolved_warmup_instructions()
        assert frontier_key(a) != frontier_key(b)


class TestFrontierFastForward:
    def test_budget_increase_resumes_and_matches_continuous(self, tmp_path):
        config = fast_config()
        with temporary_cache_dir(tmp_path / "off", enabled=False):
            # Continuous reference at the large budget, from cold caches.
            reference = _execute_single(config, "gzip", 3000)
            clear_process_caches()

            publishes = DEFAULT_STORE.frontier_publishes
            small = _execute_single(config, "gzip", 1500)
            assert small.committed_instructions >= 1500
            assert DEFAULT_STORE.frontier_publishes == publishes + 1

            hits = DEFAULT_STORE.frontier_hits
            resumed = _execute_single(config, "gzip", 3000)
            assert DEFAULT_STORE.frontier_hits == hits + 1
            assert resumed == reference

    def test_equal_budget_rerun_resimulates(self, tmp_path):
        config = fast_config()
        with temporary_cache_dir(tmp_path / "off", enabled=False):
            first = _execute_single(config, "gzip", 1500)
            hits = DEFAULT_STORE.frontier_hits
            publishes = DEFAULT_STORE.frontier_publishes
            second = _execute_single(config, "gzip", 1500)
            assert second == first
            # Reuse is strictly-smaller-offset only, and the end state is
            # already published, so the rerun neither restores nor
            # re-snapshots.
            assert DEFAULT_STORE.frontier_hits == hits
            assert DEFAULT_STORE.frontier_publishes == publishes

    def test_frontier_persists_through_the_artifact_store(self, tmp_path):
        config = fast_config()
        with temporary_cache_dir(tmp_path / "ref", enabled=False):
            reference = _execute_single(config, "gzip", 3000)
        clear_process_caches()
        with temporary_cache_dir(tmp_path / "disk"):
            _execute_single(config, "gzip", 1500)
            # Drop every in-memory cache: only the on-disk artifact store
            # survives, as it would across CLI invocations.
            clear_process_caches()
            hits = DEFAULT_STORE.frontier_hits
            resumed = _execute_single(config, "gzip", 3000)
            assert DEFAULT_STORE.frontier_hits == hits + 1
            assert resumed == reference
