"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper.
Because the substrate is a pure-Python cycle-level simulator, the default
workload sizes are reduced; they can be scaled with environment variables:

* ``REPRO_BENCH_INSTRUCTIONS`` -- correct-path instructions per run
  (default 6000),
* ``REPRO_BENCH_BENCHMARKS``   -- comma-separated benchmark names or ``all``
  (default: gzip,gcc,eon,mcf),
* ``REPRO_BENCH_SIZES``        -- comma-separated L1 sizes for the sweeps
  (default: 256,1K,4K,16K,64K).

Each benchmark prints the regenerated rows/series (like the paper reports
them) and also writes them to ``benchmarks/results/<name>.txt`` so the
numbers recorded in EXPERIMENTS.md can be refreshed easily.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api import ExecutionOptions, ExperimentPlan, Session
from repro.simulator.runner import (
    bench_benchmark_names,
    bench_instruction_budget,
    bench_l1_sizes,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Headline performance metrics collected by the throughput benches via
#: the ``bench_metrics`` fixture; flushed to a top-level JSON file at
#: session end so the perf trajectory is tracked per PR.
BENCH_JSON_PATH = Path(__file__).parents[1] / "BENCH_throughput.json"
_BENCH_METRICS: dict = {}

#: Default knobs (kept deliberately small; see module docstring).
DEFAULT_INSTRUCTIONS = 6000
DEFAULT_SIZES = (256, 1024, 4096, 16384, 65536)


@pytest.fixture(scope="session")
def api_session():
    """One :class:`repro.api.Session` shared by every bench of the run
    (the façade the figure/table benches submit their grids through)."""
    with Session() as session:
        yield session


def run_plan(session, config, names, instructions, sampled=False, jobs=1,
             result_cache=None):
    """Run one explicit configuration over several benchmarks through the
    façade.  ``result_cache=False`` forces
    resimulation -- benches that measure the simulator itself must not
    accidentally time a full-run result replay."""
    plan = ExperimentPlan("bench-mix")
    for name in names:
        plan.add(config, name, instructions, sampled=sampled)
    return session.run(plan, options=ExecutionOptions(
        jobs=jobs, result_cache=result_cache)).results


@pytest.fixture(scope="session")
def bench_params():
    """Resolved workload parameters shared by all figure benches."""
    return {
        "instructions": bench_instruction_budget(DEFAULT_INSTRUCTIONS),
        "benchmarks": bench_benchmark_names(),
        "sizes": bench_l1_sizes(DEFAULT_SIZES),
    }


@pytest.fixture(scope="session")
def bench_metrics():
    """Mutable mapping the throughput benches drop headline numbers into
    (instr/s, sampled speedup, cold-vs-warm cache timings)."""
    return _BENCH_METRICS


def pytest_sessionfinish(session, exitstatus):
    """Update ``BENCH_throughput.json`` when any throughput bench ran.

    Merged into the existing file (a session that ran only a subset of
    the benches, like the CI sampled-smoke job, must not discard the
    other dimensions of the trajectory) and skipped entirely on failed
    sessions so a crash never publishes half-measured numbers.
    """
    if not _BENCH_METRICS or exitstatus != 0:
        return
    merged: dict = {}
    try:
        merged = json.loads(BENCH_JSON_PATH.read_text())
    except (OSError, ValueError):
        pass
    for key, value in _BENCH_METRICS.items():
        # One level deep: a session that ran only some parameters of a
        # bench (e.g. one scheme) updates those entries without erasing
        # its siblings.
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key].update(value)
        else:
            merged[key] = value
    BENCH_JSON_PATH.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="session")
def report():
    """Print a reproduction report and persist it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive figure-generation function exactly once under
    pytest-benchmark timing (rounds=1, iterations=1)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
