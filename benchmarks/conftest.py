"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper.
Because the substrate is a pure-Python cycle-level simulator, the default
workload sizes are reduced; they can be scaled with environment variables:

* ``REPRO_BENCH_INSTRUCTIONS`` -- correct-path instructions per run
  (default 6000),
* ``REPRO_BENCH_BENCHMARKS``   -- comma-separated benchmark names or ``all``
  (default: gzip,gcc,eon,mcf),
* ``REPRO_BENCH_SIZES``        -- comma-separated L1 sizes for the sweeps
  (default: 256,1K,4K,16K,64K).

Each benchmark prints the regenerated rows/series (like the paper reports
them) and also writes them to ``benchmarks/results/<name>.txt`` so the
numbers recorded in EXPERIMENTS.md can be refreshed easily.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.simulator.runner import (
    bench_benchmark_names,
    bench_instruction_budget,
    bench_l1_sizes,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Default knobs (kept deliberately small; see module docstring).
DEFAULT_INSTRUCTIONS = 6000
DEFAULT_SIZES = (256, 1024, 4096, 16384, 65536)


@pytest.fixture(scope="session")
def bench_params():
    """Resolved workload parameters shared by all figure benches."""
    return {
        "instructions": bench_instruction_budget(DEFAULT_INSTRUCTIONS),
        "benchmarks": bench_benchmark_names(),
        "sizes": bench_l1_sizes(DEFAULT_SIZES),
    }


@pytest.fixture(scope="session")
def report():
    """Print a reproduction report and persist it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive figure-generation function exactly once under
    pytest-benchmark timing (rounds=1, iterations=1)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
