"""Figure 2(b) -- FDP with and without an L0 cache (0.045 um).

The paper's observation: plain FDP stays flat as the L1 grows (its
filtering forces ever more fetches into the slow L1), while adding a
one-cycle L0 lets it tolerate the L1 latency.
"""

from repro.api import format_ipc_sweep

from conftest import run_once


def test_figure2_fdp_with_and_without_l0(benchmark, api_session, report, bench_params):
    series = run_once(
        benchmark, api_session.figure2_series,
        technology="0.045um",
        l1_sizes=bench_params["sizes"],
        benchmarks=bench_params["benchmarks"],
        max_instructions=bench_params["instructions"],
    )
    text = format_ipc_sweep(series, "Figure 2(b): FDP vs FDP+L0 (0.045um)")
    report("fig2_fdp_l0", text)

    sizes = sorted(bench_params["sizes"])
    mid_and_large = [s for s in sizes if s >= 4096]
    # The L0 helps FDP at every medium/large size (it never hurts by more
    # than noise).
    for size in mid_and_large:
        assert series["FDP+L0"][size] >= series["FDP"][size] * 0.97
    # And at the largest size the benefit is pronounced.
    assert series["FDP+L0"][sizes[-1]] >= series["FDP"][sizes[-1]]
