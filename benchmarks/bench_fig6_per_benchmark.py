"""Figure 6 -- per-benchmark IPC for the best configurations.

8 KB L1 at 0.045 um, comparing the pipelined baseline against FDP+L0+PB:16
and CLGP+L0+PB:16 for every SPECint2000 benchmark plus the harmonic mean.
Reproduction target: CLGP best (or tied) for most benchmarks, with gzip the
notable exception, and a clear HMEAN win for both prefetchers over the
baseline.
"""

import os

from repro.api import format_per_benchmark
from repro.api import SPECINT2000_NAMES

from conftest import run_once


def test_figure6_per_benchmark_ipc(benchmark, api_session, report, bench_params):
    # Figure 6 is defined over the full suite; honour an explicit override
    # but default to all twelve benchmarks.
    if os.environ.get("REPRO_BENCH_BENCHMARKS"):
        names = bench_params["benchmarks"]
    else:
        names = list(SPECINT2000_NAMES)
    series = run_once(
        benchmark, api_session.figure6_series,
        technology="0.045um",
        l1_size_bytes=8192,
        benchmarks=names,
        max_instructions=bench_params["instructions"],
    )
    text = format_per_benchmark(
        series, "Figure 6: per-benchmark IPC (8KB L1, 0.045um)")
    report("fig6_per_benchmark", text)

    hmean = series["HMEAN"]
    assert hmean["CLGP+L0+PB16"] > hmean["base-pipelined"]
    assert hmean["FDP+L0+PB16"] > hmean["base-pipelined"]
    # CLGP wins or ties (within 5%) against FDP for a clear majority of the
    # benchmarks evaluated.
    per_bench = {k: v for k, v in series.items() if k != "HMEAN"}
    wins = sum(
        1 for scores in per_bench.values()
        if scores["CLGP+L0+PB16"] >= scores["FDP+L0+PB16"] * 0.95
    )
    assert wins >= len(per_bench) * 0.6
