"""Related-work comparison (extension; paper section 2).

The paper argues that branch-predictor-directed prefetching (FDP, and its
prestaging refinement CLGP) outperforms classic sequential/target-table
prefetchers.  This extension benchmark places the implemented related-work
schemes -- next-2-line prefetching and target-line prefetching -- next to
the baseline, FDP and CLGP at the paper's headline design point.
"""

from repro.api import SimulationConfig, harmonic_mean_ipc, paper_config

from conftest import run_once, run_plan


def test_related_work_comparison(benchmark, api_session, report, bench_params):
    instructions = bench_params["instructions"]
    names = bench_params["benchmarks"]

    def measure():
        out = {}
        for scheme in ("base-pipelined", "FDP+L0", "CLGP+L0"):
            config = paper_config(scheme, l1_size_bytes=4096,
                                  technology="0.045um",
                                  max_instructions=instructions)
            out[scheme] = harmonic_mean_ipc(
                run_plan(api_session, config, names, instructions))
        for engine, label, extra in (
            ("next-line", "next-2-line+L0", {"next_line_degree": 2}),
            ("target-line", "target-line+L0", {"next_line_degree": 1}),
        ):
            config = SimulationConfig(
                engine=engine, technology="0.045um", l1_size_bytes=4096,
                l0_enabled=True, max_instructions=instructions,
                label=label, **extra)
            out[label] = harmonic_mean_ipc(
                run_plan(api_session, config, names, instructions))
        return out

    ipc = run_once(benchmark, measure)
    lines = ["Related-work prefetchers (4KB L1, 0.045um)", "=" * 46]
    lines += [f"  {label:>18s} : {value:.3f} IPC" for label, value in ipc.items()]
    report("related_work", "\n".join(lines))

    # Branch-predictor-guided prefetching beats the purely sequential and
    # target-table schemes, and every prefetcher beats the baseline.
    assert ipc["CLGP+L0"] >= ipc["next-2-line+L0"]
    assert ipc["CLGP+L0"] >= ipc["target-line+L0"]
    assert ipc["next-2-line+L0"] >= ipc["base-pipelined"] * 0.95
