"""Headline speedups (Section 5.1) and the hardware-budget comparison.

The paper's headline numbers with a 4 KB L1 and pipelined pre-buffers:

* CLGP over FDP:                +3.5% at 0.09 um, +12.5% at 0.045 um,
* CLGP over the pipelined baseline: +39% at 0.09 um, +48% at 0.045 um,
* CLGP with ~2.5 KB of fast-storage budget matches a pipelined I-cache of
  6.4x that budget.

The reproduction target is the sign and rough magnitude of these ratios,
not the exact percentages.
"""

from repro.api import format_speedups, harmonic_mean_ipc, paper_config

from conftest import run_once, run_plan


def test_headline_speedups(benchmark, api_session, report, bench_params):
    data = run_once(
        benchmark, api_session.headline_speedups,
        l1_size_bytes=4096,
        benchmarks=bench_params["benchmarks"],
        max_instructions=bench_params["instructions"],
    )
    text = format_speedups(data)
    report("headline_speedups", text)

    for tech, row in data.items():
        # CLGP clearly beats the pipelined baseline at both nodes.
        assert row["clgp_over_base_pipelined"] > 0.15, tech
        # CLGP is at worst on par with FDP (small negative noise tolerated).
        assert row["clgp_over_fdp"] > -0.05, tech
    # The latency problem is worse at 0.045um, so the gain over the
    # baseline should not shrink when moving to the finer node.
    assert (data["0.045um"]["clgp_over_base_pipelined"]
            >= data["0.09um"]["clgp_over_base_pipelined"] * 0.8)


def test_budget_equivalence(benchmark, api_session, report, bench_params):
    """CLGP with a small L1 versus pipelined caches several times larger."""
    instructions = bench_params["instructions"]
    names = bench_params["benchmarks"]

    def measure():
        clgp_small = paper_config(
            "CLGP+L0+PB16", l1_size_bytes=1024, technology="0.09um",
            max_instructions=instructions)
        out = {"CLGP 1KB (2.5KB budget)": harmonic_mean_ipc(
            run_plan(api_session, clgp_small, names, instructions))}
        for size in (4096, 16384, 65536):
            config = paper_config("base-pipelined", l1_size_bytes=size,
                                  technology="0.09um",
                                  max_instructions=instructions)
            out[f"pipelined {size // 1024}KB"] = harmonic_mean_ipc(
                run_plan(api_session, config, names, instructions))
        return out

    ipc = run_once(benchmark, measure)
    lines = ["Hardware-budget comparison (0.09um)", "=" * 40]
    lines += [f"  {label:>24s} : {value:.3f} IPC" for label, value in ipc.items()]
    report("headline_budget_equivalence", "\n".join(lines))

    # The 2.5KB CLGP configuration reaches (or exceeds) a pipelined cache
    # with >= 6.4x the fast-storage budget.
    assert ipc["CLGP 1KB (2.5KB budget)"] >= ipc["pipelined 16KB"] * 0.95
