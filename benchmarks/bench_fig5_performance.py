"""Figure 5 -- main performance comparison at both technology nodes.

Six configurations (CLGP+L0+PB16, CLGP+L0, FDP+L0+PB16, FDP+L0,
base-pipelined, base+L0) swept over the L1 size, at 0.09 um (Figure 5a,
8-entry one-cycle pre-buffers) and 0.045 um (Figure 5b, 4-entry one-cycle
pre-buffers).  Reproduction targets: CLGP at or above FDP, both prefetchers
well above the baselines, and CLGP nearly insensitive to the L1 size.
"""

import pytest

from repro.api import format_ipc_sweep

from conftest import run_once


@pytest.mark.parametrize("technology,figure", [("0.09um", "5a"), ("0.045um", "5b")])
def test_figure5_main_comparison(benchmark, api_session, report, bench_params, technology, figure):
    series = run_once(
        benchmark, api_session.figure5_series,
        technology=technology,
        l1_sizes=bench_params["sizes"],
        benchmarks=bench_params["benchmarks"],
        max_instructions=bench_params["instructions"],
    )
    text = format_ipc_sweep(
        series,
        f"Figure {figure}: IPC vs L1 size ({technology}) -- "
        f"benchmarks={','.join(bench_params['benchmarks'])}",
    )
    report(f"fig{figure}_performance_{technology.replace('.', '_')}", text)

    sizes = sorted(bench_params["sizes"])
    mid = sizes[len(sizes) // 2]
    # Prefetching beats the pipelined baseline at the mid-size point.
    assert series["CLGP+L0+PB16"][mid] > series["base-pipelined"][mid]
    assert series["FDP+L0+PB16"][mid] > series["base-pipelined"][mid]
    # CLGP is not slower than FDP (allowing a small noise margin).
    assert series["CLGP+L0"][mid] >= series["FDP+L0"][mid] * 0.95
    # CLGP saturates at small sizes: its smallest-size IPC is already within
    # 45% of its largest-size IPC, unlike the baseline.
    clgp_ratio = series["CLGP+L0+PB16"][sizes[0]] / series["CLGP+L0+PB16"][sizes[-1]]
    base_ratio = series["base-pipelined"][sizes[0]] / series["base-pipelined"][sizes[-1]]
    assert clgp_ratio > base_ratio
