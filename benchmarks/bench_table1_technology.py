"""Table 1 -- SIA technology roadmap parameters.

Regenerates the year / feature size / clock / cycle-time table the paper
takes from the 2001 SIA roadmap.  (The "benchmark" aspect is trivial; the
point is that the constants used by every other experiment are printed and
archived alongside the measured figures.)
"""

from repro.analysis.report import format_key_value_table
from repro.analysis.tables import table1

from conftest import run_once


def test_table1_technology_roadmap(benchmark, report):
    rows = run_once(benchmark, table1)
    formatted = {
        str(int(row["year"])): (
            f"{row['technology_um']:g} um, {row['clock_ghz']:g} GHz, "
            f"{row['cycle_time_ns']:g} ns"
        )
        for row in rows
    }
    text = format_key_value_table(
        formatted, "Table 1: technological parameters predicted by the SIA")
    report("table1_technology", text)
    assert len(rows) == 5
    assert any(row["technology_um"] == 0.045 for row in rows)
