"""Throughput of the experiment service's warm dedup path.

Measures the requests-per-second a client sees for a spec whose job has
already completed: the server replays the canonical result bytes from
memory (zero simulation, backed by the content-addressed result cache),
so this number is the service overhead floor -- HTTP parse, dedup-key
computation, canonical-bytes write.  Recorded into the top-level
``BENCH_throughput.json`` under the ``service`` entry.
"""

import tempfile
import time

from repro.api import ExperimentSpec, Session
from repro.service import ServerThread, ServiceClient

#: Submit+result round trips timed against the warm job.
WARM_REQUESTS = 40


def test_warm_dedup_requests_per_second(benchmark, bench_metrics, report):
    with tempfile.TemporaryDirectory() as cache_dir:
        with Session(jobs=1, cache_dir=cache_dir) as session:
            with ServerThread(session, parallel=2) as thread:
                client = ServiceClient(port=thread.port,
                                       client_id="bench-warm")
                spec = ExperimentSpec("CLGP+L0", "gcc",
                                      max_instructions=4000,
                                      name="bench-service")
                first = client.submit(spec)
                reference = client.result_bytes(first["job"])

                def warm_round_trips() -> float:
                    start = time.perf_counter()
                    for _ in range(WARM_REQUESTS):
                        job = client.submit(spec)
                        body = client.result_bytes(job["job"])
                        assert body == reference
                    return time.perf_counter() - start

                seconds = benchmark.pedantic(
                    warm_round_trips, rounds=1, iterations=1,
                    warmup_rounds=0)
                stats = client.stats()["service"]

    # Every timed request joined the completed job: no new simulations.
    assert stats["runs_started"] == 1
    assert stats["deduplicated"] >= WARM_REQUESTS
    rps = WARM_REQUESTS / seconds if seconds else 0.0
    bench_metrics["service"] = {
        "warm_requests_per_second": round(rps, 1),
        "requests": WARM_REQUESTS,
        "dedup_hits": stats["deduplicated"],
    }
    report("service_throughput",
           "\n".join([
               "Experiment service: warm dedup-hit throughput",
               "=" * 50,
               f"  requests timed        : {WARM_REQUESTS} "
               "(submit + result round trips)",
               f"  wall-clock            : {seconds:.3f}s",
               f"  requests per second   : {rps:.1f}",
               f"  simulations triggered : {stats['runs_started']} "
               "(everything after the first replayed)",
           ]))
