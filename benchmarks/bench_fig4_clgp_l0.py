"""Figure 4(b) -- CLGP with and without an L0 cache (0.045 um).

Adding the L0 'emergency cache' improves CLGP (mispredicted-path lines are
one cycle away, and prefetches are served by the L1), but CLGP is already
close to insensitive to the L1 because most fetches come from the prestage
buffer.
"""

from repro.api import format_ipc_sweep

from conftest import run_once


def test_figure4_clgp_with_and_without_l0(benchmark, api_session, report, bench_params):
    series = run_once(
        benchmark, api_session.figure4_series,
        technology="0.045um",
        l1_sizes=bench_params["sizes"],
        benchmarks=bench_params["benchmarks"],
        max_instructions=bench_params["instructions"],
    )
    text = format_ipc_sweep(series, "Figure 4(b): CLGP vs CLGP+L0 (0.045um)")
    report("fig4_clgp_l0", text)

    sizes = sorted(bench_params["sizes"])
    for size in sizes:
        # The L0 never hurts CLGP beyond noise.
        assert series["CLGP+L0"][size] >= series["CLGP"][size] * 0.95
    # CLGP saturates early: going from the smallest to the largest L1 gains
    # far less than a factor of two.
    assert series["CLGP+L0"][sizes[-1]] < series["CLGP+L0"][sizes[0]] * 2.0
