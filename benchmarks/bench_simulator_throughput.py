"""Micro-benchmarks of simulator throughput (simulated instructions/second).

Not a paper experiment -- these keep an eye on the cost of the pure-Python
cycle loop for the three main engines so performance regressions in the
simulator itself are visible.  pytest-benchmark runs these with its normal
statistics (multiple rounds) because a single run is fast.
"""

import pytest

from repro.simulator.presets import paper_config
from repro.simulator.runner import get_workload
from repro.simulator.simulator import Simulator

INSTRUCTIONS = 2000


@pytest.mark.parametrize("scheme", ["base-pipelined", "FDP+L0", "CLGP+L0"])
def test_simulation_throughput(benchmark, scheme):
    workload = get_workload("gcc")
    config = paper_config(scheme, l1_size_bytes=4096, technology="0.045um",
                          max_instructions=INSTRUCTIONS,
                          warmup_instructions=20_000)

    def run_once_():
        return Simulator(config, workload).run(INSTRUCTIONS)

    result = benchmark.pedantic(run_once_, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert result.committed_instructions >= INSTRUCTIONS
