"""Micro-benchmarks of simulator throughput (simulated instructions/second).

Not a paper experiment -- these keep an eye on the cost of the pure-Python
cycle loop for the three main engines so performance regressions in the
simulator itself are visible.  pytest-benchmark runs these with its normal
statistics (multiple rounds) because a single run is fast.

Five dimensions are tracked (each also lands in the session-level
``bench_metrics`` mapping, flushed to the top-level
``BENCH_throughput.json`` so the perf trajectory is recorded per PR):

* per-engine single-run throughput (the event-driven loop is the default;
  ``simulated_instructions_per_second`` is recorded in ``extra_info`` so
  the bench trajectory captures the headline metric directly),
* multi-benchmark sweep throughput with the parallel executor
  (a façade ``Session.run`` with ``ExecutionOptions(jobs=N)``), which is
  how the figure sweeps actually consume the simulator,
* sampled-vs-full comparison: the SimPoint-style sampled runner against
  the full run at the REPRO_BENCH instruction budget, recording the
  wall-clock speedup and the IPC relative error in ``extra_info`` so the
  accuracy/speed trade-off of the sampling subsystem stays on the bench
  trajectory (run with the persistent cache disabled, so it measures the
  sampling subsystem itself, not artifact replay),
* cold-vs-warm artifact cache: the same sampled mix against an empty and
  a populated ``repro.cache`` store, with in-memory caches cleared
  between runs so the warm number models a fresh CLI invocation,
* cold-vs-warm full-run result cache: the non-sampled counterpart --
  warm rounds replay complete persisted ``SimulationResult``\\ s with no
  simulation at all.
"""

import os
import pickle
import time

import pytest

from repro.api import Simulator, paper_config
from repro.cache import temporary_cache_dir
from repro.cache.shared import dumps_with_workload
from repro.cache.traces import ensure_compiled_trace
from repro.sampling import proxy as proxy_module
from repro.sampling.bbv import profile_workload
from repro.sampling.checkpoint import clear_checkpoint_store
from repro.simulator.runner import (
    bench_instruction_budget,
    clear_process_caches,
    get_workload,
)

from conftest import run_plan

INSTRUCTIONS = 2000

#: Worker count for the parallel-sweep benchmark (env override for CI and
#: bigger machines; 2 keeps the smoke run meaningful on small containers).
SWEEP_JOBS = max(1, int(os.environ.get("REPRO_BENCH_JOBS", "2")))
SWEEP_BENCHMARKS = ("gzip", "gcc", "eon", "mcf")


@pytest.mark.parametrize("scheme", ["base-pipelined", "FDP+L0", "CLGP+L0"])
def test_simulation_throughput(benchmark, scheme, bench_metrics):
    workload = get_workload("gcc")
    config = paper_config(scheme, l1_size_bytes=4096, technology="0.045um",
                          max_instructions=INSTRUCTIONS,
                          warmup_instructions=20_000)

    def run_once_():
        return Simulator(config, workload).run(INSTRUCTIONS)

    # rounds=5: single-digit-ms runs on shared CI boxes are noisy; the
    # recorded min is the honest throughput number.
    result = benchmark.pedantic(run_once_, rounds=5, iterations=1,
                                warmup_rounds=1)
    assert result.committed_instructions >= INSTRUCTIONS
    instructions_per_second = (
        result.committed_instructions / benchmark.stats.stats.min
    )
    benchmark.extra_info["simulated_instructions_per_second"] = (
        instructions_per_second
    )
    benchmark.extra_info["sim_loop"] = config.sim_loop
    bench_metrics.setdefault("instructions_per_second", {})[scheme] = round(
        instructions_per_second
    )
    if scheme == "CLGP+L0":
        # The timed cycle loop is one of the per-pass entries tracked
        # alongside the batched functional passes (see the per-pass
        # benches below); record it under the same umbrella.
        bench_metrics.setdefault("per_pass", {})["timed_loop"] = {
            "instructions_per_second": round(instructions_per_second),
        }


@pytest.mark.parametrize("jobs", [1, SWEEP_JOBS])
def test_sweep_throughput(benchmark, api_session, jobs, bench_metrics):
    """Multi-benchmark sweep throughput with the `jobs=` execution knob."""
    config = paper_config("CLGP+L0", l1_size_bytes=4096, technology="0.045um",
                          max_instructions=INSTRUCTIONS,
                          warmup_instructions=20_000)
    # Pre-build workloads so the sweep itself (not program generation) is
    # measured in the serial case; worker processes inherit nothing and
    # keep their own caches.
    for name in SWEEP_BENCHMARKS:
        get_workload(name)

    def run_sweep():
        # result_cache=False: later rounds must measure the sweep's
        # simulations, not full-run result replays from round one.
        return run_plan(api_session, config, SWEEP_BENCHMARKS, INSTRUCTIONS,
                        jobs=jobs, result_cache=False)

    results = benchmark.pedantic(run_sweep, rounds=2, iterations=1,
                                 warmup_rounds=1)
    simulated = sum(r.committed_instructions for r in results)
    assert simulated >= INSTRUCTIONS * len(SWEEP_BENCHMARKS)
    instructions_per_second = simulated / benchmark.stats.stats.min
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["simulated_instructions_per_second"] = (
        instructions_per_second
    )
    bench_metrics.setdefault("sweep_instructions_per_second", {})[
        f"jobs={jobs}"
    ] = round(instructions_per_second)
    sweep = bench_metrics["sweep_instructions_per_second"]
    if jobs != 1 and "jobs=1" in sweep:
        # Regression guard: asking for parallelism must never *cost*
        # throughput.  At this budget the overhead-aware planner runs
        # the jobs=N sweep inline, so the two legs execute the same
        # code and only measurement noise separates them.
        assert sweep[f"jobs={jobs}"] >= 0.9 * sweep["jobs=1"], (
            f"jobs={jobs} sweep throughput regressed below jobs=1: "
            f"{sweep}"
        )


# ----------------------------------------------------------------------
# per-pass throughput: the batched functional passes vs their
# block-by-block reference interpreters (REPRO_NO_BATCH=1)
# ----------------------------------------------------------------------
PASS_INSTRUCTIONS = 30_000
PASS_INTERVAL = 1000


def _record_pass(bench_metrics, benchmark, name, instructions, ref_seconds):
    seconds = benchmark.stats.stats.min
    ips = instructions / seconds
    ref_ips = instructions / ref_seconds if ref_seconds else 0.0
    speedup = round(ips / ref_ips, 2) if ref_ips else 0.0
    benchmark.extra_info["simulated_instructions_per_second"] = ips
    benchmark.extra_info["reference_instructions_per_second"] = ref_ips
    benchmark.extra_info["batch_speedup"] = speedup
    bench_metrics.setdefault("per_pass", {})[name] = {
        "instructions_per_second": round(ips),
        "reference_instructions_per_second": round(ref_ips),
        "speedup": speedup,
    }


def test_bbv_profile_throughput(benchmark, bench_metrics, monkeypatch):
    """Batched BBV profiling over compiled columns vs the block walker."""
    workload = get_workload("gcc")
    ensure_compiled_trace(workload, PASS_INSTRUCTIONS)

    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    start = time.perf_counter()
    reference = profile_workload(workload, PASS_INSTRUCTIONS, PASS_INTERVAL)
    ref_seconds = time.perf_counter() - start
    monkeypatch.delenv("REPRO_NO_BATCH")

    batched = benchmark.pedantic(
        lambda: profile_workload(workload, PASS_INSTRUCTIONS, PASS_INTERVAL),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    assert pickle.dumps(batched) == pickle.dumps(reference)
    _record_pass(bench_metrics, benchmark, "bbv_profile",
                 PASS_INSTRUCTIONS, ref_seconds)


def test_functional_skip_throughput(benchmark, bench_metrics, monkeypatch):
    """Batched functional skip (segment stride) vs single-stream stepping."""
    config = paper_config("CLGP+L0", l1_size_bytes=4096,
                          technology="0.045um",
                          max_instructions=PASS_INSTRUCTIONS,
                          warmup_instructions=20_000)
    workload = get_workload("gcc")
    ensure_compiled_trace(workload, PASS_INSTRUCTIONS + 20_000)

    def skipped_state(target):
        simulator = Simulator(config, workload)
        simulator.warm_up()
        simulator.skip_to(target)
        return dumps_with_workload(simulator.snapshot()._state, workload)

    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    start = time.perf_counter()
    reference_state = skipped_state(PASS_INSTRUCTIONS)
    ref_seconds = time.perf_counter() - start
    monkeypatch.delenv("REPRO_NO_BATCH")
    assert skipped_state(PASS_INSTRUCTIONS) == reference_state

    def setup():
        simulator = Simulator(config, workload)
        simulator.warm_up()
        return (simulator,), {}

    benchmark.pedantic(
        lambda simulator: simulator.skip_to(PASS_INSTRUCTIONS),
        setup=setup, rounds=5, iterations=1, warmup_rounds=1,
    )
    # The reference timing includes one warm-up + snapshot alongside the
    # skip; both are small next to 30k block-by-block steps, and the
    # recorded speedup is the conservative side of that bias anyway.
    _record_pass(bench_metrics, benchmark, "functional_skip",
                 PASS_INSTRUCTIONS, ref_seconds)


def test_proxy_profile_throughput(benchmark, bench_metrics, monkeypatch):
    """Batched proxy base pass + LRU replay vs the oracle interpreter."""
    config = paper_config("CLGP+L0", l1_size_bytes=4096,
                          technology="0.045um",
                          max_instructions=PASS_INSTRUCTIONS,
                          warmup_instructions=20_000)
    workload = get_workload("gcc")
    ensure_compiled_trace(workload, PASS_INSTRUCTIONS + 20_000)

    def profile_once():
        # The memoized base pass would answer every later round for
        # free; clearing it makes each round do the real work.
        proxy_module.clear_base_profile_cache()
        return proxy_module.functional_profile(
            workload, config, PASS_INSTRUCTIONS, PASS_INTERVAL
        )

    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    profile_once()   # warm the warm-up artifact cache outside the timing
    start = time.perf_counter()
    reference = profile_once()
    ref_seconds = time.perf_counter() - start
    monkeypatch.delenv("REPRO_NO_BATCH")

    batched = benchmark.pedantic(profile_once, rounds=5, iterations=1,
                                 warmup_rounds=1)
    assert pickle.dumps(batched) == pickle.dumps(reference)
    _record_pass(bench_metrics, benchmark, "proxy_profile",
                 PASS_INSTRUCTIONS, ref_seconds)


@pytest.mark.parametrize("scheme", ["CLGP+L0", "base-pipelined"])
def test_sampled_vs_full(benchmark, api_session, scheme, bench_metrics,
                         tmp_path_factory):
    """Sampled-run speedup and IPC error versus the full run.

    Uses the REPRO_BENCH instruction budget (default 20k -- sampling is
    pointless below a few thousand instructions) over the default mix.
    The benchmark measures the *sampled* runs; the full-run baseline is
    timed once alongside and both the wall-clock ratio and the
    per-benchmark worst IPC relative error land in ``extra_info``.
    The persistent artifact cache is disabled for the whole test: with it
    enabled the sampled rounds would replay measurement artifacts instead
    of simulating, and this bench tracks the sampling subsystem itself
    (the cache's own effect is tracked by
    :func:`test_artifact_cache_cold_vs_warm`).
    """
    instructions = bench_instruction_budget()
    names = SWEEP_BENCHMARKS
    config = paper_config(scheme, l1_size_bytes=4096, technology="0.045um",
                          max_instructions=instructions)
    with temporary_cache_dir(tmp_path_factory.mktemp("unused"),
                             enabled=False):
        # Drop per-process caches first: earlier tests may have attached
        # compiled traces to the cached workloads, and this comparison
        # must measure the walker-backed regime regardless of test order.
        clear_process_caches()
        # Prime every per-process cache (workloads, warm-up artifacts)
        # with an untimed full pass so the full baseline is measured as
        # warm as the sampled rounds (whose own one-time costs land in
        # the discarded pedantic warm-up round).
        for name in names:
            get_workload(name)
            run_plan(api_session, config, [name], instructions)

        full_seconds = 0.0
        full_results = {}
        for name in names:
            start = time.perf_counter()
            full_results[name] = run_plan(api_session, config, [name],
                                          instructions)[0]
            full_seconds += time.perf_counter() - start

        def run_sampled_mix():
            # Per-process caches (selections, functional profiles)
            # persist between rounds -- exactly how a sweep uses the
            # sampled runner.
            return dict(zip(names, run_plan(api_session, config, names,
                                            instructions, sampled=True)))

        clear_checkpoint_store()
        sampled = benchmark.pedantic(run_sampled_mix, rounds=2, iterations=1,
                                     warmup_rounds=1)
    sampled_seconds = benchmark.stats.stats.min
    errors = {
        name: sampled[name].ipc / full_results[name].ipc - 1.0
        for name in names
    }
    sampled_speedup = (
        round(full_seconds / sampled_seconds, 3) if sampled_seconds else 0.0
    )
    worst_abs_error = round(max(abs(e) for e in errors.values()), 5)
    benchmark.extra_info["instructions"] = instructions
    benchmark.extra_info["full_seconds"] = round(full_seconds, 4)
    benchmark.extra_info["sampled_speedup"] = sampled_speedup
    benchmark.extra_info["ipc_relative_error"] = {
        name: round(err, 5) for name, err in errors.items()
    }
    benchmark.extra_info["worst_abs_ipc_error"] = worst_abs_error
    bench_metrics.setdefault("sampled", {})[scheme] = {
        "instructions": instructions,
        "speedup": sampled_speedup,
        "worst_abs_ipc_error": worst_abs_error,
    }


def test_interval_parallel_latency(benchmark, api_session, bench_metrics,
                                   tmp_path_factory, monkeypatch):
    """Serial-vs-parallel latency of one sampled run (``interval_jobs``).

    One gcc sampled run whose k-means selection partitions into >= 3
    non-adjacent segments, measured twice through the façade: the serial
    walk (``interval_jobs=1``) and the segment fan-out across the shared
    pool.  Both runs restore the positioned checkpoints published by an
    untimed prewarm pass, so the comparison isolates the timed interval
    measurement -- the part the fan-out actually parallelizes.  The two
    results must be byte-identical (the tentpole guarantee); the
    latency ratio lands in ``BENCH_throughput.json`` and is asserted
    >= 1.5x wherever >= 2 cores make a speedup physically possible.
    """
    from repro.api import ExecutionOptions, ExperimentPlan
    from repro.sampling import SamplingSpec, get_selection
    from repro.sampling.checkpoint import DEFAULT_STORE
    from repro.sampling.sampled import _segments

    # Pool dispatch is the thing under test: the overhead-aware planner
    # must not inline the segment tasks however small the box.
    monkeypatch.setenv("REPRO_NO_INLINE_FALLBACK", "1")
    instructions = max(40_000, bench_instruction_budget(40_000))
    spec = SamplingSpec(max_intervals=4, method="kmeans")
    config = paper_config("CLGP+L0", l1_size_bytes=4096,
                          technology="0.045um",
                          max_instructions=instructions)

    def run_once(interval_jobs):
        plan = ExperimentPlan("interval-parallel")
        plan.add(config, "gcc", instructions, sampled=True, sampling=spec)
        results = api_session.run(plan, options=ExecutionOptions(
            interval_jobs=interval_jobs, result_cache=False)).results
        assert len(results) == 1
        return results[0]

    cache_dir = tmp_path_factory.mktemp("interval-parallel-cache")
    with temporary_cache_dir(cache_dir):
        clear_process_caches()
        # Untimed prewarm: publishes the compiled trace, selection, warm
        # checkpoint and every positioned checkpoint, so both timed arms
        # start from the same deepest-prefix state.
        prewarm = run_once(interval_jobs=1)
        selection = get_selection(get_workload("gcc"), instructions, spec,
                                  store=DEFAULT_STORE, config=config)
        segments = _segments(selection.intervals)

        serial_seconds = float("inf")
        serial = None
        for _ in range(2):
            start = time.perf_counter()
            serial = run_once(interval_jobs=1)
            serial_seconds = min(serial_seconds,
                                 time.perf_counter() - start)

        jobs = min(4, len(segments))
        parallel = benchmark.pedantic(
            lambda: run_once(interval_jobs=jobs),
            rounds=2, iterations=1, warmup_rounds=1)
    parallel_seconds = benchmark.stats.stats.min

    assert len(segments) >= 3, (
        f"selection no longer fans out: segments={segments}")
    assert pickle.dumps(parallel) == pickle.dumps(serial)
    assert pickle.dumps(parallel) == pickle.dumps(prewarm)
    latency_ratio = (
        round(serial_seconds / parallel_seconds, 3) if parallel_seconds
        else 0.0
    )
    benchmark.extra_info["instructions"] = instructions
    benchmark.extra_info["segments"] = len(segments)
    benchmark.extra_info["interval_jobs"] = jobs
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["latency_ratio"] = latency_ratio
    bench_metrics["interval_parallel"] = {
        "instructions": instructions,
        "segments": len(segments),
        "interval_jobs": jobs,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "latency_ratio": latency_ratio,
        "cores": os.cpu_count(),
    }
    if (os.cpu_count() or 1) >= 2 and jobs >= 2:
        # On a single-core box the fan-out cannot beat the serial walk
        # (equal compute, no idle cores); record the honest ratio there,
        # enforce the speedup wherever it is physically possible.
        assert latency_ratio >= 1.5, (
            f"interval parallelism below 1.5x on {os.cpu_count()} cores: "
            f"{bench_metrics['interval_parallel']}")


def test_artifact_cache_cold_vs_warm(benchmark, api_session, bench_metrics,
                                     tmp_path_factory):
    """Cold-vs-warm persistent-cache timings for a sampled mix.

    Cold: empty artifact store, empty in-memory caches -- every compiled
    trace, profile, selection and interval measurement is computed and
    published.  Warm: the same work with in-memory caches cleared before
    every round, so all reuse comes from the on-disk store alone (the
    fresh-CLI-invocation model).  Results must be bit-identical.
    """
    instructions = bench_instruction_budget()
    names = SWEEP_BENCHMARKS
    config = paper_config("CLGP+L0", l1_size_bytes=4096,
                          technology="0.045um",
                          max_instructions=instructions)

    def sampled_mix():
        return dict(zip(names, run_plan(api_session, config, names,
                                        instructions, sampled=True)))

    cache_dir = tmp_path_factory.mktemp("artifact-cache")
    with temporary_cache_dir(cache_dir):
        clear_process_caches()
        start = time.perf_counter()
        cold = sampled_mix()
        cold_seconds = time.perf_counter() - start

        def warm_run():
            clear_process_caches()
            return sampled_mix()

        warm = benchmark.pedantic(warm_run, rounds=3, iterations=1,
                                  warmup_rounds=0)
    clear_process_caches()
    assert warm == cold, "warm-cache results diverged from cold"
    warm_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    benchmark.extra_info["instructions"] = instructions
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["cache_speedup"] = round(speedup, 2)
    bench_metrics["artifact_cache"] = {
        "instructions": instructions,
        "benchmarks": len(names),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 2),
    }


def test_result_cache_cold_vs_warm(benchmark, api_session, bench_metrics,
                                   tmp_path_factory):
    """Cold-vs-warm **full-run result cache** timings for a non-sampled mix.

    Cold: empty store -- every run simulates and publishes its complete
    ``SimulationResult``.  Warm: in-memory caches cleared before every
    round, so each task is answered by a result replay off disk (the
    fresh-CLI-invocation model: no simulation at all, not even a
    workload build).  Results must be bit-identical; CI separately
    asserts the >=5x wall-clock floor on the non-sampled `figure 5`
    warm replay.
    """
    instructions = bench_instruction_budget()
    names = SWEEP_BENCHMARKS
    config = paper_config("CLGP+L0", l1_size_bytes=4096,
                          technology="0.045um",
                          max_instructions=instructions)

    def full_mix():
        return dict(zip(names, run_plan(api_session, config, names,
                                        instructions)))

    cache_dir = tmp_path_factory.mktemp("result-cache")
    with temporary_cache_dir(cache_dir):
        clear_process_caches()
        start = time.perf_counter()
        cold = full_mix()
        cold_seconds = time.perf_counter() - start

        def warm_run():
            clear_process_caches()
            return full_mix()

        warm = benchmark.pedantic(warm_run, rounds=3, iterations=1,
                                  warmup_rounds=0)
    clear_process_caches()
    assert warm == cold, "warm result replay diverged from cold"
    warm_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    benchmark.extra_info["instructions"] = instructions
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["result_cache_speedup"] = round(speedup, 2)
    bench_metrics["result_cache"] = {
        "instructions": instructions,
        "benchmarks": len(names),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 2),
    }
