"""Micro-benchmarks of simulator throughput (simulated instructions/second).

Not a paper experiment -- these keep an eye on the cost of the pure-Python
cycle loop for the three main engines so performance regressions in the
simulator itself are visible.  pytest-benchmark runs these with its normal
statistics (multiple rounds) because a single run is fast.

Two dimensions are tracked:

* per-engine single-run throughput (the event-driven loop is the default;
  ``simulated_instructions_per_second`` is recorded in ``extra_info`` so
  the bench trajectory captures the headline metric directly),
* multi-benchmark sweep throughput with the parallel runner
  (``run_benchmarks(..., jobs=N)``), which is how the figure sweeps
  actually consume the simulator.
"""

import os

import pytest

from repro.simulator.presets import paper_config
from repro.simulator.runner import get_workload, run_benchmarks
from repro.simulator.simulator import Simulator

INSTRUCTIONS = 2000

#: Worker count for the parallel-sweep benchmark (env override for CI and
#: bigger machines; 2 keeps the smoke run meaningful on small containers).
SWEEP_JOBS = max(1, int(os.environ.get("REPRO_BENCH_JOBS", "2")))
SWEEP_BENCHMARKS = ("gzip", "gcc", "eon", "mcf")


@pytest.mark.parametrize("scheme", ["base-pipelined", "FDP+L0", "CLGP+L0"])
def test_simulation_throughput(benchmark, scheme):
    workload = get_workload("gcc")
    config = paper_config(scheme, l1_size_bytes=4096, technology="0.045um",
                          max_instructions=INSTRUCTIONS,
                          warmup_instructions=20_000)

    def run_once_():
        return Simulator(config, workload).run(INSTRUCTIONS)

    # rounds=5: single-digit-ms runs on shared CI boxes are noisy; the
    # recorded min is the honest throughput number.
    result = benchmark.pedantic(run_once_, rounds=5, iterations=1,
                                warmup_rounds=1)
    assert result.committed_instructions >= INSTRUCTIONS
    benchmark.extra_info["simulated_instructions_per_second"] = (
        result.committed_instructions / benchmark.stats.stats.min
    )
    benchmark.extra_info["sim_loop"] = config.sim_loop


@pytest.mark.parametrize("jobs", [1, SWEEP_JOBS])
def test_sweep_throughput(benchmark, jobs):
    """Multi-benchmark sweep throughput with the `jobs=` runner knob."""
    config = paper_config("CLGP+L0", l1_size_bytes=4096, technology="0.045um",
                          max_instructions=INSTRUCTIONS,
                          warmup_instructions=20_000)
    # Pre-build workloads so the sweep itself (not program generation) is
    # measured in the serial case; worker processes inherit nothing and
    # keep their own caches.
    for name in SWEEP_BENCHMARKS:
        get_workload(name)

    def run_sweep():
        return run_benchmarks(config, SWEEP_BENCHMARKS, INSTRUCTIONS, jobs=jobs)

    results = benchmark.pedantic(run_sweep, rounds=2, iterations=1,
                                 warmup_rounds=1)
    simulated = sum(r.committed_instructions for r in results)
    assert simulated >= INSTRUCTIONS * len(SWEEP_BENCHMARKS)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["simulated_instructions_per_second"] = (
        simulated / benchmark.stats.stats.min
    )
