"""Table 2 -- baseline simulation parameters.

Regenerated from the default :class:`SimulationConfig`, so the archived
table always matches what the simulator actually uses.
"""

from repro.analysis.report import format_key_value_table
from repro.analysis.tables import table2

from conftest import run_once


def test_table2_simulation_parameters(benchmark, report):
    rows = run_once(benchmark, table2)
    text = format_key_value_table(rows, "Table 2: simulation parameters")
    report("table2_parameters", text)
    assert rows["Fetch/Issue/Commit"] == "4 instructions"
    assert rows["RUU Size"] == "64 instructions"
    assert rows["Mem. lat."] == "200 cycles"
