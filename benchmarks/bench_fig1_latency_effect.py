"""Figure 1 -- effect of the L1 I-cache access latency on performance.

Sweeps the L1 size for the four no-prefetching configurations (ideal,
pipelined, base+L0, base) at 0.045 um.  The reproduction target is the
*shape*: the ideal curve grows with cache size, the blocking 'base' curve is
far below it and nearly flat, pipelining recovers most of the gap, and the
L0 filter cache helps the blocking cache at small-to-medium sizes.
"""

from repro.api import format_ipc_sweep

from conftest import run_once


def test_figure1_l1_latency_effect(benchmark, api_session, report, bench_params):
    series = run_once(
        benchmark, api_session.figure1_series,
        technology="0.045um",
        l1_sizes=bench_params["sizes"],
        benchmarks=bench_params["benchmarks"],
        max_instructions=bench_params["instructions"],
    )
    text = format_ipc_sweep(
        series,
        "Figure 1: IPC vs L1 size, no prefetching (0.045um) -- "
        f"benchmarks={','.join(bench_params['benchmarks'])}",
    )
    report("fig1_latency_effect", text)

    sizes = sorted(bench_params["sizes"])
    small, large = sizes[0], sizes[-1]
    # Shape checks: the ideal cache benefits from capacity, and at the
    # largest size it beats the blocking base configuration clearly.
    assert series["ideal"][large] > series["ideal"][small]
    assert series["ideal"][large] >= series["base"][large] * 1.2
    # Pipelining recovers most of the latency loss at large sizes.
    assert series["base-pipelined"][large] > series["base"][large]
