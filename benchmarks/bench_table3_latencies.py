"""Table 3 -- L1/L2 cache access latencies per size and technology node.

The paper derives these from CACTI 3.0 access times divided by the SIA
cycle times; the repository's CACTI-like model reproduces the table exactly
for the paper's sizes (checked here) and interpolates other sizes.
"""

from repro.analysis.report import format_latency_table
from repro.analysis.tables import table3

from conftest import run_once

PAPER_090 = {256: 1, 512: 1, 1024: 2, 2048: 2, 4096: 3, 8192: 3,
             16384: 3, 32768: 3, 65536: 3, 1 << 20: 17}
PAPER_045 = {256: 1, 512: 2, 1024: 3, 2048: 4, 4096: 4, 8192: 4,
             16384: 4, 32768: 4, 65536: 5, 1 << 20: 24}


def test_table3_cache_latencies(benchmark, report):
    rows = run_once(benchmark, table3)
    text = format_latency_table(
        rows, "Table 3: cache access latencies (cycles) per size and process")
    report("table3_latencies", text)
    assert rows["0.09um"] == PAPER_090
    assert rows["0.045um"] == PAPER_045
