"""Ablation of CLGP's design decisions (DESIGN.md section 5).

Each variant reverts one CLGP design choice back to its FDP counterpart:

* ``free-on-use``    -- prestage entries become replaceable on first use
  instead of when their consumers counter reaches zero,
* ``copy-to-cache``  -- consumed prestage lines are copied into the L0/L1
  (re-introducing the replication CLGP avoids),
* ``with filtering`` -- lines already in the I-cache are not prestaged,
  so their fetches pay the multi-cycle cache latency.

The full CLGP design should be the best (or tied-best) variant, and the
FDP reference should be at or below it.
"""

from conftest import run_once


def test_clgp_design_ablation(benchmark, api_session, report, bench_params):
    data = run_once(
        benchmark, api_session.ablation_series,
        technology="0.045um",
        l1_size_bytes=4096,
        benchmarks=bench_params["benchmarks"],
        max_instructions=bench_params["instructions"],
    )
    lines = ["CLGP design-choice ablation (4KB L1, 0.045um)", "=" * 50]
    full = data["CLGP+L0 (full)"]
    for label, value in data.items():
        delta = (value / full - 1.0) * 100 if full else 0.0
        lines.append(f"  {label:<26s} : {value:.3f} IPC ({delta:+.1f}% vs full)")
    report("ablation_clgp", "\n".join(lines))

    # The decisive design choice in this reproduction is the absence of
    # filtering (prestaging even cache-resident lines); reverting it must
    # hurt, and the full design must beat the FDP reference.  The other two
    # choices (free-on-use, copy-to-cache) are reported but may be close to
    # neutral at this design point -- see EXPERIMENTS.md for the discussion.
    assert full >= data["CLGP+L0 with filtering"], "filtering should hurt CLGP"
    assert full >= data["FDP+L0 (reference)"] * 0.97
    assert data["CLGP+L0 free-on-use"] <= full * 1.05
