"""Figure 8 -- distribution of prefetch sources (FDP vs CLGP).

For every prefetch request: where was the line found?  'PB' means the
request was already satisfied by the pre-buffer (no prefetch performed) --
the paper reports 21.5% for FDP and up to 28% for CLGP -- and CLGP performs
fewer prefetches from L2/memory thanks to its better pre-buffer management.
"""

from repro.api import format_source_distribution

from conftest import run_once


def test_figure8_prefetch_source_distribution(benchmark, api_session, report, bench_params):
    series = run_once(
        benchmark, api_session.figure8_series,
        technology="0.045um",
        l1_sizes=bench_params["sizes"],
        benchmarks=bench_params["benchmarks"],
        max_instructions=bench_params["instructions"],
    )
    text = format_source_distribution(
        series, "Figure 8: prefetch source distribution (0.045um, 4-entry pre-buffer)")
    report("fig8_prefetch_source", text)

    sizes = sorted(bench_params["sizes"])
    # Averaged over the sweep, CLGP finds its prefetch requests already in
    # the pre-buffer at least as often as FDP does.
    clgp_pb = sum(series["CLGP"][s]["PB"] for s in sizes) / len(sizes)
    fdp_pb = sum(series["FDP"][s]["PB"] for s in sizes) / len(sizes)
    assert clgp_pb >= fdp_pb * 0.9
    # Memory-sourced prefetches are a small minority for both schemes.
    for scheme in ("FDP", "CLGP"):
        for size in sizes:
            assert series[scheme][size]["Mem"] < 0.5
