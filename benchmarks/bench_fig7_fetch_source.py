"""Figure 7 -- distribution of fetch sources (FDP vs CLGP).

Figure 7(a): 4-entry pre-buffers without an L0; Figure 7(b): with an L0.
Reproduction targets: CLGP serves the large majority of fetches from the
prestage buffer at every L1 size, whereas FDP's pre-buffer share shrinks as
the I-cache grows (filtering sends ever more fetches to the slow L1); with
an L0, most FDP fetches still need the one-cycle L0+PB pair to stay fast.
"""

import pytest

from repro.api import format_source_distribution

from conftest import run_once


@pytest.mark.parametrize("with_l0,figure", [(False, "7a"), (True, "7b")])
def test_figure7_fetch_source_distribution(benchmark, api_session, report, bench_params,
                                           with_l0, figure):
    series = run_once(
        benchmark, api_session.figure7_series,
        with_l0=with_l0,
        technology="0.045um",
        l1_sizes=bench_params["sizes"],
        benchmarks=bench_params["benchmarks"],
        max_instructions=bench_params["instructions"],
    )
    label = "with L0" if with_l0 else "without L0"
    text = format_source_distribution(
        series, f"Figure {figure}: fetch source distribution ({label}, 0.045um)")
    report(f"fig{figure}_fetch_source", text)

    fdp_scheme, clgp_scheme = ("FDP+L0", "CLGP+L0") if with_l0 else ("FDP", "CLGP")
    sizes = sorted(bench_params["sizes"])
    for size in sizes:
        clgp_pb = series[clgp_scheme][size]["PB"]
        fdp_pb = series[fdp_scheme][size]["PB"]
        # CLGP's prestage buffer is the dominant instruction supplier.
        assert clgp_pb > fdp_pb
        assert clgp_pb > 0.5
    # FDP leans on the I-cache more and more as it grows.
    assert (series[fdp_scheme][sizes[-1]]["il1"]
            >= series[fdp_scheme][sizes[0]]["il1"] * 0.8)
