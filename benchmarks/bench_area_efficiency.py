"""Area / energy efficiency of the fetch front-end (extension).

The paper argues that CLGP reaches the performance of much larger pipelined
I-caches while avoiding their area and energy overheads; Section 5.1 makes
the argument in capacity (2.5 KB vs 16 KB).  This extension restates it
with the analytical area/energy model of ``repro.memory.area``: IPC per
mm^2 of fast fetch storage, and the average fetch energy implied by each
configuration's measured fetch-source mix.
"""

from repro.api import harmonic_mean_ipc, paper_config
from repro.memory.area import front_end_budget
from repro.simulator.stats import aggregate_fetch_sources

from conftest import run_once, run_plan

DESIGN_POINTS = (
    ("CLGP+L0+PB16", 1024),
    ("CLGP+L0", 4096),
    ("FDP+L0+PB16", 1024),
    ("FDP+L0", 4096),
    ("base-pipelined", 16384),
    ("base-pipelined", 65536),
    ("base+L0", 16384),
)


def test_front_end_area_efficiency(benchmark, api_session, report, bench_params):
    instructions = bench_params["instructions"]
    names = bench_params["benchmarks"]

    def measure():
        rows = []
        for scheme, l1_size in DESIGN_POINTS:
            config = paper_config(scheme, l1_size_bytes=l1_size,
                                  technology="0.09um",
                                  max_instructions=instructions)
            results = run_plan(api_session, config, names, instructions)
            ipc = harmonic_mean_ipc(results)
            sources = aggregate_fetch_sources(results)
            budget = front_end_budget(config, sources,
                                      label=f"{scheme} ({l1_size // 1024}KB L1)")
            rows.append({
                "label": budget.label,
                "capacity_kb": budget.capacity_bytes / 1024,
                "area_mm2": budget.area_mm2,
                "ipc": ipc,
                "ipc_per_mm2": ipc / budget.area_mm2 if budget.area_mm2 else 0.0,
                "energy_nj": budget.energy_per_line_fetch_nj,
            })
        return rows

    rows = run_once(benchmark, measure)
    lines = ["Front-end area/energy efficiency (0.09um)", "=" * 78,
             f"{'configuration':>28s} | {'fast KB':>7s} | {'mm^2':>6s} | "
             f"{'IPC':>5s} | {'IPC/mm^2':>8s} | {'nJ/line':>7s}"]
    lines.append("-" * 78)
    for row in rows:
        lines.append(
            f"{row['label']:>28s} | {row['capacity_kb']:7.1f} | "
            f"{row['area_mm2']:6.3f} | {row['ipc']:5.2f} | "
            f"{row['ipc_per_mm2']:8.1f} | {row['energy_nj']:7.3f}")
    report("area_efficiency", "\n".join(lines))

    by_label = {row["label"]: row for row in rows}
    clgp = by_label["CLGP+L0+PB16 (1KB L1)"]
    big_pipe = by_label["base-pipelined (16KB L1)"]
    # CLGP's small front end is far more area-efficient than the large
    # pipelined cache it matches in performance.
    assert clgp.get("area_mm2") < big_pipe["area_mm2"]
    assert clgp["ipc_per_mm2"] > 2.0 * big_pipe["ipc_per_mm2"]
    assert clgp["ipc"] >= big_pipe["ipc"] * 0.9
