#!/usr/bin/env python3
"""Cache-size sweep: reproduce the shape of the paper's Figure 5.

Sweeps the L1 instruction-cache size for the six main configurations at a
chosen technology node, over a benchmark mix, and prints the harmonic-mean
IPC table plus two derived observations:

* the size at which the pipelined baseline finally catches the smallest
  CLGP configuration ("equivalent performance at N x the hardware budget"),
* how flat each configuration's curve is (CLGP's insensitivity to L1 size).

Everything runs through one :class:`repro.api.Session`
(``session.figure5_series`` is the façade's counterpart of the paper's
Figure 5 grid).

Run:
    python examples/cache_size_sweep.py [0.09um|0.045um] [instructions]
"""

from __future__ import annotations

import sys

from repro.api import DEFAULT_MIX, Session, budget_equivalent_size, format_ipc_sweep

SIZES = (256, 1024, 4096, 16384, 65536)


def main() -> int:
    technology = sys.argv[1] if len(sys.argv) > 1 else "0.045um"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 6000

    print(f"Sweeping L1 sizes {SIZES} at {technology} over {DEFAULT_MIX} "
          f"({instructions} instructions per run) ...\n")
    with Session() as session:
        series = session.figure5_series(
            technology=technology,
            l1_sizes=SIZES,
            benchmarks=DEFAULT_MIX,
            max_instructions=instructions,
        )
    print(format_ipc_sweep(series, f"Figure 5 reproduction ({technology})"))

    # Hardware-budget observation: which pipelined-baseline size matches the
    # smallest CLGP+L0+PB16 configuration?
    clgp_small_ipc = series["CLGP+L0+PB16"][min(SIZES)]
    equivalent = budget_equivalent_size(clgp_small_ipc, series["base-pipelined"])
    print()
    if equivalent is None:
        print(f"No pipelined baseline size up to {max(SIZES) // 1024}KB reaches "
              f"CLGP+L0+PB16 with a {min(SIZES)}B L1 (IPC {clgp_small_ipc:.3f}).")
    else:
        print(f"CLGP+L0+PB16 with a {min(SIZES)}B L1 (IPC {clgp_small_ipc:.3f}) is "
              f"matched by the pipelined baseline only at {equivalent // 1024}KB.")

    print("\nSensitivity to L1 size (largest / smallest IPC):")
    for scheme, per_size in series.items():
        ratio = per_size[max(SIZES)] / per_size[min(SIZES)]
        print(f"  {scheme:>16s} : {ratio:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
