#!/usr/bin/env python3
"""Per-benchmark comparison across the SPECint2000 suite (Figure 6 style).

Runs the pipelined baseline, FDP+L0+PB:16 and CLGP+L0+PB:16 on every
synthetic SPECint2000 benchmark (8 KB L1, 0.045 um) through one
:class:`repro.api.Session`, prints the per-benchmark IPC table with the
harmonic mean, and highlights where CLGP wins and loses -- in the paper,
CLGP is best everywhere except gzip, with the biggest gains on eon,
vortex and gap.

Run:
    python examples/per_benchmark_report.py [instructions] [benchmarks...]
"""

from __future__ import annotations

import sys

from repro.api import SPECINT2000_NAMES, Session, format_per_benchmark


def main() -> int:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    names = sys.argv[2:] or list(SPECINT2000_NAMES)

    print(f"Running {len(names)} benchmarks x 3 configurations "
          f"({instructions} instructions each) ...\n")
    with Session() as session:
        series = session.figure6_series(
            technology="0.045um", l1_size_bytes=8192,
            benchmarks=names, max_instructions=instructions,
        )
    print(format_per_benchmark(
        series, "Figure 6 reproduction: per-benchmark IPC (8KB L1, 0.045um)"))

    print("\nCLGP+L0+PB16 speedup over FDP+L0+PB16:")
    for name in names:
        scores = series[name]
        delta = scores["CLGP+L0+PB16"] / scores["FDP+L0+PB16"] - 1.0
        marker = "  <-- FDP wins" if delta < -0.01 else ""
        print(f"  {name:>8s} : {delta:+6.1%}{marker}")
    hmean = series["HMEAN"]
    print(f"\n  HMEAN   : CLGP {hmean['CLGP+L0+PB16']:.3f}  "
          f"FDP {hmean['FDP+L0+PB16']:.3f}  "
          f"base-pipelined {hmean['base-pipelined']:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
