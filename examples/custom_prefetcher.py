#!/usr/bin/env python3
"""Extending the library: plug a custom fetch engine into the simulator.

This example builds a toy "streaming prestager": a CLGP variant whose
prestaging algorithm also prefetches the *next sequential line* after every
CLTQ entry it processes (a CLGP/next-line hybrid).  It demonstrates the
extension points a downstream user has:

* subclass one of the engines (``CLGPEngine`` here) and override the
  prefetching policy,
* build the surrounding machine by hand (hierarchy, prediction unit,
  back-end) exactly as ``repro.api.Simulator`` does, or monkey-patch
  the engine into a stock ``Simulator``,
* compare against the stock engines (run through the
  :class:`repro.api.Session` façade) on the same workload.

Run:
    python examples/custom_prefetcher.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro.api import ExperimentSpec, Session, Simulator, paper_config
from repro.core.clgp import CLGPEngine   # extension point: the engine layer


class StreamingPrestager(CLGPEngine):
    """CLGP plus next-sequential-line prestaging.

    After the normal CLGP scan, if the prestage buffer still has a free
    entry, prefetch the line that sequentially follows the newest CLTQ
    entry -- a cheap way to cover short fall-through runs that the stream
    predictor has not materialised into the CLTQ yet.
    """

    name = "CLGP+nextline"

    def prefetch_tick(self, cycle: int) -> None:
        super().prefetch_tick(cycle)
        newest = None
        for entry in self.cltq.iter_entries():
            newest = entry
        if newest is None:
            return
        candidate = newest.line_addr + self.hierarchy.line_size
        if self.prestage_buffer.get(candidate) is not None:
            return
        entry = self.prestage_buffer.allocate_for_prefetch(candidate)
        if entry is None:
            return
        # No CLTQ entry references this speculative line yet, so leave it
        # replaceable (consumers = 0); if the predictor later materialises
        # the line in the CLTQ, the normal CLGP scan will add a consumer.
        entry.consumers = 0
        self.stats.prefetches_issued += 1

        def _arrived(arrival_cycle: int, source: str, entry=entry) -> None:
            entry.mark_arrived(arrival_cycle, source)
            self.stats.prefetch_source[source] += 1
            self.stats.prefetches_completed += 1

        self.hierarchy.prefetch_access(
            candidate, cycle, _arrived,
            probe_l1=self.config.prefetch_probe_l1,
        )


def run_custom(session: Session, benchmark: str, instructions: int):
    """Build a stock CLGP+L0 simulator, then swap in the custom engine."""
    config = paper_config("CLGP+L0", l1_size_bytes=4096, technology="0.045um",
                          max_instructions=instructions)
    workload = session.workload(benchmark)
    simulator = Simulator(config, workload)
    simulator.engine = StreamingPrestager(
        config.engine_config(), simulator.hierarchy, workload.bbdict
    )
    return simulator.run(instructions)


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "eon"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8000

    with Session() as session:
        def stock(scheme: str):
            return session.run(ExperimentSpec(
                scheme=scheme, benchmarks=benchmark,
                max_instructions=instructions,
                technology="0.045um", l1_size_bytes=4096,
            )).results[0]

        stock_fdp = stock("FDP+L0")
        stock_clgp = stock("CLGP+L0")
        custom = run_custom(session, benchmark, instructions)

    print(f"benchmark={benchmark}, 4KB L1, 0.045um, {instructions} instructions\n")
    for label, result in (("FDP+L0 (stock)", stock_fdp),
                          ("CLGP+L0 (stock)", stock_clgp),
                          ("CLGP+next-line (custom)", custom)):
        print(f"  {label:>24s} : IPC {result.ipc:.3f}   "
              f"PB fetches {result.fetch_source_fractions()['PB']:.1%}   "
              f"prefetches {result.prefetches_issued}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
