#!/usr/bin/env python3
"""Where do instructions actually come from?  (Figures 7 and 8.)

For FDP and CLGP (with an L0 cache) on one benchmark, prints

* the fetch-source distribution: which storage supplied each fetched cache
  line (prestage/prefetch buffer, L0, L1, L2, memory), and
* the prefetch-source distribution: where prefetch requests found their
  line (already in the pre-buffer = no prefetch needed, in the L1, in the
  L2, or in main memory),

which together explain *why* CLGP outperforms FDP: more fetches served by
one-cycle storage, fewer accesses escalating to the slow levels.  Both
runs go through one :class:`repro.api.Session`.

Run:
    python examples/fetch_source_breakdown.py [benchmark] [l1_size_bytes] [instructions]
"""

from __future__ import annotations

import sys

from repro.api import FETCH_SOURCES, ExperimentSpec, Session


def print_distribution(title: str, distribution: dict) -> None:
    print(f"  {title}")
    for source in FETCH_SOURCES:
        share = distribution.get(source, 0.0)
        bar = "#" * int(round(share * 40))
        print(f"    {source:>4s} {share:6.1%} {bar}")


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    l1_size = int(sys.argv[2]) if len(sys.argv) > 2 else 4096
    instructions = int(sys.argv[3]) if len(sys.argv) > 3 else 10_000

    with Session() as session:
        for scheme in ("FDP+L0", "CLGP+L0"):
            spec = ExperimentSpec(
                scheme=scheme,
                benchmarks=benchmark,
                max_instructions=instructions,
                technology="0.045um",
                l1_size_bytes=l1_size,
            )
            result = session.run(spec).results[0]
            print(f"\n{scheme} on {benchmark} ({l1_size}B L1, 0.045um): "
                  f"IPC {result.ipc:.3f}")
            print_distribution("fetch sources (Figure 7)",
                               result.fetch_source_fractions())
            print_distribution("prefetch sources (Figure 8)",
                               result.prefetch_source_fractions())
            print(f"    one-cycle fetches: "
                  f"{result.one_cycle_fetch_fraction():.1%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
