#!/usr/bin/env python3
"""Quickstart: simulate CLGP and its competitors on one benchmark.

Opens a :class:`repro.api.Session` (the toolkit's one front door), builds
the paper's main configurations at a single design point (4 KB L1
I-cache, 0.045 um technology) as :class:`~repro.api.ExperimentSpec`
requests, runs each on the synthetic 'gcc' workload and prints IPC, the
stream-misprediction rate and the fraction of fetches served by
one-cycle storage -- the quantities the paper's argument rests on.

Run:
    python examples/quickstart.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro.api import ExperimentSpec, Session

SCHEMES = (
    "base",            # blocking multi-cycle L1, no prefetching
    "base-pipelined",  # pipelined L1, no prefetching
    "base+L0",         # one-cycle filter cache in front of the L1
    "ideal",           # 1-cycle L1 regardless of size (upper bound)
    "FDP+L0",          # fetch directed prefetching
    "CLGP+L0",         # cache line guided prestaging (the paper's proposal)
    "CLGP+L0+PB16",    # ... with a 16-entry pipelined prestage buffer
)


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000

    print(f"benchmark={benchmark}  instructions={instructions}  "
          f"L1=4KB  technology=0.045um\n")
    print(f"{'configuration':>16s} | {'IPC':>6s} | {'mispredict':>10s} | "
          f"{'1-cycle fetches':>15s}")
    print("-" * 60)

    baseline_ipc = None
    with Session() as session:
        for scheme in SCHEMES:
            spec = ExperimentSpec(
                scheme=scheme,
                benchmarks=benchmark,
                max_instructions=instructions,
                technology="0.045um",
                l1_size_bytes=4096,
            )
            result = session.run(spec).results[0]
            if scheme == "base-pipelined":
                baseline_ipc = result.ipc
            speedup = (
                f"  ({result.ipc / baseline_ipc - 1.0:+.1%} vs pipelined)"
                if baseline_ipc and scheme.startswith("CLGP") else "")
            print(f"{scheme:>16s} | {result.ipc:6.3f} | "
                  f"{result.misprediction_rate:10.1%} | "
                  f"{result.one_cycle_fetch_fraction():15.1%}{speedup}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
