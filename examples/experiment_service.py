#!/usr/bin/env python3
"""Experiment service: many clients, one simulation.

Starts the experiment server in-process (the same
:class:`~repro.service.server.ExperimentServer` behind
``repro-clgp serve``), then plays a small crowd against it: several
clients concurrently submit the *same* :class:`~repro.api.ExperimentSpec`
while one submits a different one.  The duplicates collapse onto a
single simulation -- every subscriber streams the same live progress
over SSE and receives byte-identical result JSON -- while the disjoint
spec runs separately.  The closing stats show the dedup economics the
service exists for.

Run:
    python examples/experiment_service.py [clients] [instructions]
"""

from __future__ import annotations

import sys
import tempfile
import threading

from repro.api import ExperimentSpec, Session
from repro.service import ServerThread, ServiceClient


def main() -> int:
    crowd = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 5_000

    shared = ExperimentSpec("CLGP+L0", "gcc", max_instructions=instructions,
                            name="crowd-favourite")
    solo = ExperimentSpec("FDP+L0", "mcf", max_instructions=instructions,
                          name="loner")
    bodies: dict = {}
    progress: dict = {}

    def run_client(name: str, spec: ExperimentSpec, port: int) -> None:
        client = ServiceClient(port=port, client_id=name)
        job = client.submit(spec, wait_on_quota=True)
        kinds = []
        for event in client.events(job["job"],
                                   subscriber=job["subscriber"]):
            kinds.append(event["kind"])
        progress[name] = (job["dedup"], kinds)
        bodies[name] = client.result_bytes(job["job"])

    with tempfile.TemporaryDirectory() as cache_dir:
        with Session(jobs=1, cache_dir=cache_dir) as session:
            with ServerThread(session, parallel=2) as server:
                print(f"service on 127.0.0.1:{server.port}: "
                      f"{crowd} clients want the same experiment, "
                      "1 wants another\n")
                names = [f"dupe-{index}" for index in range(crowd)]
                threads = [threading.Thread(target=run_client,
                                            args=(name, shared, server.port))
                           for name in names]
                threads.append(threading.Thread(
                    target=run_client, args=("loner", solo, server.port)))
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                stats = ServiceClient(port=server.port).stats()["service"]

    for name in sorted(progress):
        dedup, kinds = progress[name]
        tasks = sum(1 for kind in kinds if kind == "task")
        print(f"  {name:>8s}: dedup={dedup:<6s} "
              f"streamed {len(kinds)} events ({tasks} tasks) "
              f"-> {len(bodies[name])} result bytes")

    dupe_bodies = {bodies[name] for name in names}
    print(f"\n  duplicate bodies identical : {len(dupe_bodies) == 1}")
    print(f"  submissions                : {stats['submitted']}")
    print(f"  deduplicated (joined)      : {stats['deduplicated']}")
    print(f"  simulations actually run   : {stats['runs_started']}")
    assert len(dupe_bodies) == 1, "duplicate submissions must match"
    assert stats["runs_started"] == 2, "expected exactly two simulations"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
