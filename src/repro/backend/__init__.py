"""Simplified out-of-order back-end model (RUU, commit, data-side traffic)."""

from .dcache import DataCacheModel, DataCacheStats
from .pipeline import BackendPipeline, BackendStats

__all__ = [
    "BackendPipeline",
    "BackendStats",
    "DataCacheModel",
    "DataCacheStats",
]
