"""Data-cache behaviour model for the back-end.

The paper fixes the data side (32 KB 2-way L1 D-cache, 1-cycle latency) and
focuses entirely on the instruction side; data accesses matter to the study
only because (a) L1-D misses occupy the shared L2 bus with the highest
priority and (b) long-latency loads lower the attainable IPC, changing how
much fetch latency can hide.

Loads are therefore modelled probabilistically per benchmark: every dynamic
correct-path load draws a deterministic pseudo-random value (a hash of its
dynamic index, identical across simulator configurations) and misses the L1
D-cache with the block's ``load_miss_probability``; misses go over the L2
bus and are served by L2 or main memory.  A memory-level-parallelism factor
models the overlap an out-of-order core achieves between outstanding
misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..memory.hierarchy import MemoryHierarchy


def _hash01(index: int, salt: int) -> float:
    """Deterministic hash of a dynamic-instruction index into [0, 1)."""
    x = (index * 0x9E3779B97F4A7C15 + salt * 0xD1B54A32D192ED03) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 32
    return (x & 0xFFFFFFFF) / 2**32


@dataclass
class DataCacheStats:
    loads: int = 0
    dl1_misses: int = 0
    l2_data_misses: int = 0

    @property
    def dl1_miss_rate(self) -> float:
        return self.dl1_misses / self.loads if self.loads else 0.0


class DataCacheModel:
    """Per-load latency model with deterministic miss decisions."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        dl1_latency: int = 1,
        mlp_factor: float = 4.0,
        seed: int = 0,
    ) -> None:
        if mlp_factor < 1.0:
            raise ValueError("mlp_factor must be >= 1.0")
        self.hierarchy = hierarchy
        self.dl1_latency = dl1_latency
        self.mlp_factor = mlp_factor
        self.seed = seed
        self.stats = DataCacheStats()
        self._load_index = 0

    def skip_loads(self, count: int) -> None:
        """Advance the dynamic load index without issuing accesses.

        Sampled simulation functionally fast-forwards past a correct-path
        prefix; the miss decisions are a pure hash of the load index, so
        advancing the index keeps every subsequent decision identical to
        the full run's decision at the same dynamic position.
        """
        if count < 0:
            raise ValueError("cannot skip a negative number of loads")
        self._load_index += count

    def access(
        self,
        cycle: int,
        miss_probability: float,
        l2_miss_probability: float,
        on_complete: Callable[[int], None],
    ) -> None:
        """Issue one correct-path load at ``cycle``.

        ``on_complete(completion_cycle)`` is invoked immediately for hits
        and when the L2 bus grants the request for misses.
        """
        index = self._load_index
        self._load_index += 1
        self.stats.loads += 1

        if _hash01(index, self.seed) >= miss_probability:
            on_complete(cycle + self.dl1_latency)
            return

        self.stats.dl1_misses += 1
        misses_l2 = _hash01(index, self.seed ^ 0x5A5A5A5A) < l2_miss_probability
        if misses_l2:
            self.stats.l2_data_misses += 1

        def _served(arrival_cycle: int, _source: str) -> None:
            # Out-of-order cores overlap independent misses; divide the
            # exposed latency by the MLP factor.
            exposed = max(1, round((arrival_cycle - cycle) / self.mlp_factor))
            on_complete(cycle + exposed)

        self.hierarchy.demand_data_access(cycle, misses_l2, _served)
