"""Simplified out-of-order back-end (dispatch / RUU / commit) model.

The paper's processor is a 4-wide, 15-stage out-of-order core with a
64-entry register update unit (RUU).  A full data-flow OoO model is not
needed for an instruction-fetch study; what must be captured is

* instructions can only commit after they have been fetched (so the
  back-end starves when the front-end is slow -- the effect under study),
* commit is in-order and bounded by the commit width,
* a finite RUU back-pressures the front-end,
* long-latency loads delay commit (moderated by a memory-level-parallelism
  factor) and compete for the L2 bus with top priority,
* a mispredicted branch redirects the front-end only when it *resolves*,
  a configurable number of cycles after dispatch (deep pipelines make this
  worse -- the pipelined-cache trade-off in the paper),
* wrong-path instructions occupy RUU entries until the flush.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from .dcache import DataCacheModel
from ..frontend.fetch_block import FetchedInstruction
from ..workloads.bbdict import BasicBlockDictionary
from ..workloads.isa import InstrClass


@dataclass
class BackendStats:
    committed_instructions: int = 0
    dispatched_instructions: int = 0
    wrong_path_dispatched: int = 0
    squashed_instructions: int = 0
    redirects: int = 0
    commit_stall_cycles: int = 0   #: cycles with nothing eligible to commit
    ruu_full_stalls: int = 0       #: dispatch attempts rejected for space


@dataclass(slots=True)
class _RuuEntry:
    seq: int
    cls: InstrClass
    wrong_path: bool
    completion_cycle: Optional[int]   #: None until the latency is known
    triggers_redirect: bool = False


class BackendPipeline:
    """In-order-commit window model fed by the fetch stage."""

    def __init__(
        self,
        dcache: DataCacheModel,
        bbdict: BasicBlockDictionary,
        commit_width: int = 4,
        ruu_size: int = 64,
        branch_resolution_latency: int = 8,
        on_redirect: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.dcache = dcache
        self.bbdict = bbdict
        self.commit_width = commit_width
        self.ruu_size = ruu_size
        self.branch_resolution_latency = branch_resolution_latency
        self.on_redirect = on_redirect
        self.stats = BackendStats()

        self._ruu: Deque[_RuuEntry] = deque()
        self._seq = 0
        self._pending_redirect_cycle: Optional[int] = None
        #: Memoized per-address load miss probability (the CFG is static, so
        #: the bisect in ``block_containing`` only has to run once per PC).
        self._load_miss_prob: dict = {}

    # ------------------------------------------------------------------
    # dispatch (called by the fetch stage when instructions are delivered)
    # ------------------------------------------------------------------
    def free_slots(self) -> int:
        return self.ruu_size - len(self._ruu)

    def has_space(self, n: int = 1) -> bool:
        return self.free_slots() >= n

    def dispatch(self, instr: FetchedInstruction, cycle: int) -> bool:
        """Insert one fetched instruction into the RUU.

        Returns False (and dispatches nothing) when the RUU is full.
        """
        return self.dispatch_scalars(
            instr.addr, instr.cls, instr.wrong_path,
            instr.triggers_redirect, cycle,
        )

    def dispatch_scalars(
        self,
        addr: int,
        cls: InstrClass,
        wrong_path: bool,
        triggers_redirect: bool,
        cycle: int,
    ) -> bool:
        """Fast-path :meth:`dispatch` taking the instruction fields directly
        (the fetch stage calls this once per delivered instruction; skipping
        the :class:`FetchedInstruction` wrapper is a measurable win)."""
        if len(self._ruu) >= self.ruu_size:
            self.stats.ruu_full_stalls += 1
            return False
        self._seq += 1
        entry = _RuuEntry(
            seq=self._seq,
            cls=cls,
            wrong_path=wrong_path,
            completion_cycle=None,
            triggers_redirect=triggers_redirect,
        )
        self.stats.dispatched_instructions += 1
        if wrong_path:
            self.stats.wrong_path_dispatched += 1

        if cls is InstrClass.LOAD and not wrong_path:
            miss_prob = self._load_miss_prob.get(addr)
            if miss_prob is None:
                block = self.bbdict.cfg.block_containing(addr)
                miss_prob = (
                    block.load_miss_probability if block is not None else 0.0
                )
                self._load_miss_prob[addr] = miss_prob
            l2_miss_prob = self._l2_data_miss_rate

            def _complete(done_cycle: int, entry=entry) -> None:
                entry.completion_cycle = done_cycle

            self.dcache.access(cycle, miss_prob, l2_miss_prob, _complete)
        else:
            entry.completion_cycle = cycle + 1

        if triggers_redirect:
            # The redirect fires when the branch resolves in the back-end.
            self._pending_redirect_cycle = cycle + self.branch_resolution_latency

        self._ruu.append(entry)
        return True

    #: Probability that an L1-D miss also misses in L2 (workload-specific;
    #: the simulator overwrites it from the workload profile).
    _l2_data_miss_rate = 0.10

    def set_l2_data_miss_rate(self, rate: float) -> None:
        """Set the probability that an L1-D miss also misses in L2."""
        self._l2_data_miss_rate = rate

    # ------------------------------------------------------------------
    # per-cycle operation
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> int:
        """Resolve redirects and commit instructions.  Returns the number of
        instructions committed this cycle."""
        pending = self._pending_redirect_cycle
        if pending is not None and cycle >= pending:
            self._maybe_redirect(cycle)
        ruu = self._ruu
        committed = 0
        width = self.commit_width
        while committed < width and ruu:
            head = ruu[0]
            if head.wrong_path:
                break  # wait for the flush triggered by the resolving branch
            completion = head.completion_cycle
            if completion is None or completion > cycle:
                break
            ruu.popleft()
            committed += 1
        stats = self.stats
        if committed == 0:
            stats.commit_stall_cycles += 1
        stats.committed_instructions += committed
        return committed

    def _maybe_redirect(self, cycle: int) -> None:
        if (
            self._pending_redirect_cycle is None
            or cycle < self._pending_redirect_cycle
        ):
            return
        self._pending_redirect_cycle = None
        # Squash everything younger than the mispredicted branch.  By
        # construction every younger instruction is wrong-path.
        before = len(self._ruu)
        self._ruu = deque(e for e in self._ruu if not e.wrong_path)
        self.stats.squashed_instructions += before - len(self._ruu)
        self.stats.redirects += 1
        if self.on_redirect is not None:
            self.on_redirect(cycle)

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._ruu)

    @property
    def redirect_pending(self) -> bool:
        return self._pending_redirect_cycle is not None

    # -- introspection for the event-driven simulator loop -----------------
    @property
    def pending_redirect_cycle(self) -> Optional[int]:
        """Cycle at which the pending misprediction resolves (None: none)."""
        return self._pending_redirect_cycle

    def ruu_head(self) -> Optional[_RuuEntry]:
        """Oldest RUU entry (the only one commit can act on), or None."""
        return self._ruu[0] if self._ruu else None
