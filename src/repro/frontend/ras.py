"""Return address stack (RAS).

The paper's front-end uses an 8-entry RAS (Table 2).  The prediction unit
pushes the return address when a predicted stream ends in a call and pops
it to predict the target of a stream ending in a return.  Because the
decoupled front-end speculates past unresolved branches, the RAS contents
can be corrupted by wrong-path calls/returns; the prediction unit snapshots
and restores the RAS around mispredictions (a common checkpoint-repair
implementation).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class ReturnAddressStack:
    """Fixed-capacity circular return address stack."""

    def __init__(self, entries: int = 8):
        if entries < 1:
            raise ValueError("RAS must have at least one entry")
        self.capacity = entries
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0
        self.overflows = 0
        self.underflows = 0

    def push(self, return_addr: int) -> None:
        """Push a return address; the oldest entry is lost on overflow."""
        self.pushes += 1
        if len(self._stack) >= self.capacity:
            self.overflows += 1
            del self._stack[0]
        self._stack.append(return_addr)

    def pop(self) -> Optional[int]:
        """Pop the predicted return target; ``None`` when empty."""
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def snapshot(self) -> Tuple[int, ...]:
        """Checkpoint the stack contents (used for misprediction repair)."""
        return tuple(self._stack)

    def restore(self, snap: Tuple[int, ...]) -> None:
        """Restore a previously-taken checkpoint."""
        self._stack = list(snap[-self.capacity:])

    def clear(self) -> None:
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._stack)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RAS({[hex(a) for a in self._stack]})"
