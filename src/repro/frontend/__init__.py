"""Decoupled front-end: fetch blocks, RAS, stream predictor, prediction unit."""

from .fetch_block import FetchBlock, FetchLineRequest, FetchedInstruction
from .prediction import PredictionStats, PredictionUnit
from .ras import ReturnAddressStack
from .stream_predictor import StreamPredictor, StreamPrediction

__all__ = [
    "FetchBlock",
    "FetchLineRequest",
    "FetchedInstruction",
    "PredictionStats",
    "PredictionUnit",
    "ReturnAddressStack",
    "StreamPredictor",
    "StreamPrediction",
]
