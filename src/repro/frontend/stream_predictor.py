"""Stream predictor (Ramirez et al., "Fetching Instruction Streams").

The paper's front-end uses a *stream predictor* with a 1K-entry first-level
table plus a 6K-entry path-correlated second-level table (Table 2:
"1K+6K-entry stream pred., 1 cycle lat.").  A stream is a run of sequential
instructions that ends at a taken control transfer; the predictor maps the
current fetch address (optionally combined with path history) to the
stream's length and its successor address.

This implementation keeps the same structure:

* a direct-mapped, tagged first-level table indexed by the stream start
  address (1024 entries by default),
* a direct-mapped, tagged second-level table indexed by a hash of the start
  address and a folded path history (6144 entries by default); when it
  hits, it overrides the first level (it captures context-dependent
  streams),
* 2-bit hysteresis on replacement,
* streams ending in RETURN record that fact so the prediction unit can take
  the target from the return address stack instead of the table.

The predictor is trained with the *actual* stream (available to the
trace-driven front-end when the prediction is made) which models an ideal,
immediate update -- the standard simplification in trace-driven fetch
studies.  Mispredictions still occur whenever the tables lack the entry,
the stream's behaviour changed, or the branch is not strongly biased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..workloads.isa import BranchKind
from ..workloads.trace import ActualStream


@dataclass(slots=True)
class StreamPrediction:
    """Outcome of a predictor lookup."""

    length: int                 #: predicted stream length (instructions)
    next_addr: int              #: predicted successor fetch address
    terminator_kind: BranchKind #: predicted kind of the ending transfer
    hit: bool                   #: True if any table supplied the prediction
    source: str = "none"        #: 'l2' (history table), 'l1' (base) or 'none'
    uses_ras: bool = False      #: True when next_addr should come from RAS


@dataclass(slots=True)
class _Entry:
    tag: int
    length: int
    next_addr: int
    terminator_kind: BranchKind
    confidence: int = 1         #: 2-bit hysteresis counter (0..3)


class _StreamTable:
    """A set-associative, tagged table of stream entries (LRU within set).

    The original next-stream predictor is a set-associative structure; the
    associativity mainly avoids conflict misses between unrelated streams
    that happen to share an index.
    """

    def __init__(self, entries: int, associativity: int = 4):
        if entries < associativity:
            associativity = max(1, entries)
        self.entries = entries
        self.associativity = associativity
        self.num_sets = max(1, entries // associativity)
        self._sets: List[List[_Entry]] = [[] for _ in range(self.num_sets)]

    def _set_for(self, key: int) -> List[_Entry]:
        return self._sets[key % self.num_sets]

    def lookup(self, key: int) -> Optional[_Entry]:
        bucket = self._set_for(key)
        for i, entry in enumerate(bucket):
            if entry.tag == key:
                if i:  # move to MRU position
                    bucket.insert(0, bucket.pop(i))
                return entry
        return None

    def update(self, key: int, length: int, next_addr: int,
               kind: BranchKind) -> None:
        bucket = self._set_for(key)
        for i, entry in enumerate(bucket):
            if entry.tag == key:
                if (entry.length == length and entry.next_addr == next_addr
                        and entry.terminator_kind == kind):
                    entry.confidence = min(3, entry.confidence + 1)
                else:
                    if entry.confidence > 0:
                        entry.confidence -= 1
                    else:
                        entry.length = length
                        entry.next_addr = next_addr
                        entry.terminator_kind = kind
                        entry.confidence = 1
                if i:
                    bucket.insert(0, bucket.pop(i))
                return
        new_entry = _Entry(key, length, next_addr, kind)
        if len(bucket) >= self.associativity:
            # Replace the LRU entry, honouring hysteresis: a confident LRU
            # victim loses one confidence level instead of being evicted.
            victim = bucket[-1]
            if victim.confidence > 0:
                victim.confidence -= 1
                return
            bucket.pop()
        bucket.insert(0, new_entry)

    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def clone(self) -> "_StreamTable":
        """Independent copy of contents and recency order.

        Orders of magnitude cheaper than ``copy.deepcopy``; used to hand
        each simulation a private copy of the warmed predictor prototype.
        """
        new = _StreamTable.__new__(_StreamTable)
        new.entries = self.entries
        new.associativity = self.associativity
        new.num_sets = self.num_sets
        new._sets = [
            [
                _Entry(e.tag, e.length, e.next_addr, e.terminator_kind,
                       e.confidence)
                for e in bucket
            ]
            for bucket in self._sets
        ]
        return new


#: Backwards-compatible alias (earlier revisions used a direct-mapped table).
_DirectMappedTable = _StreamTable


class StreamPredictor:
    """Two-level stream predictor with path-history correlation."""

    def __init__(
        self,
        base_entries: int = 1024,
        history_entries: int = 6144,
        default_length: int = 64,
        history_bits: int = 16,
        associativity: int = 4,
    ):
        self.base_table = _StreamTable(base_entries, associativity)
        self.history_table = _StreamTable(history_entries, associativity)
        self.default_length = default_length
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        # statistics
        self.lookups = 0
        self.base_hits = 0
        self.history_hits = 0
        self.table_misses = 0

    # ------------------------------------------------------------------
    def _history_key(self, addr: int, history: int) -> int:
        return (addr >> 2) ^ ((history & self._history_mask) << 7)

    def predict(self, addr: int, history: int) -> StreamPrediction:
        """Predict the stream starting at ``addr`` given ``history``."""
        self.lookups += 1
        hist_entry = self.history_table.lookup(self._history_key(addr, history))
        if hist_entry is not None and hist_entry.confidence >= 2:
            self.history_hits += 1
            return StreamPrediction(
                length=hist_entry.length,
                next_addr=hist_entry.next_addr,
                terminator_kind=hist_entry.terminator_kind,
                hit=True,
                source="l2",
                uses_ras=hist_entry.terminator_kind is BranchKind.RETURN,
            )
        base_entry = self.base_table.lookup(addr >> 2)
        if base_entry is not None:
            self.base_hits += 1
            return StreamPrediction(
                length=base_entry.length,
                next_addr=base_entry.next_addr,
                terminator_kind=base_entry.terminator_kind,
                hit=True,
                source="l1",
                uses_ras=base_entry.terminator_kind is BranchKind.RETURN,
            )
        if hist_entry is not None:
            self.history_hits += 1
            return StreamPrediction(
                length=hist_entry.length,
                next_addr=hist_entry.next_addr,
                terminator_kind=hist_entry.terminator_kind,
                hit=True,
                source="l2",
                uses_ras=hist_entry.terminator_kind is BranchKind.RETURN,
            )
        self.table_misses += 1
        # No information: predict a maximal sequential stream.
        return StreamPrediction(
            length=self.default_length,
            next_addr=addr + 4 * self.default_length,
            terminator_kind=BranchKind.NONE,
            hit=False,
            source="none",
        )

    def predict_pair(self, addr: int, history: int) -> tuple:
        """Lean :meth:`predict` for batched replay: same table lookups --
        including their recency (MRU) side effects, which later victim
        choices depend on -- and the same priority order, returning only
        ``(length, next_addr)``.  Statistics counters are *not* updated;
        the batched proxy base pass runs on a throwaway predictor clone
        whose counters are never read.
        """
        hist_entry = self.history_table.lookup(self._history_key(addr, history))
        if hist_entry is not None and hist_entry.confidence >= 2:
            return hist_entry.length, hist_entry.next_addr
        base_entry = self.base_table.lookup(addr >> 2)
        if base_entry is not None:
            return base_entry.length, base_entry.next_addr
        if hist_entry is not None:
            return hist_entry.length, hist_entry.next_addr
        return self.default_length, addr + 4 * self.default_length

    def train(self, addr: int, history: int, actual: ActualStream) -> None:
        """Train both tables with the actual stream outcome."""
        kind = actual.terminator_kind if actual.ends_taken else BranchKind.NONE
        self.train_parts(addr, history, actual.length, actual.next_addr, kind)

    def train_parts(self, addr: int, history: int, length: int,
                    next_addr: int, kind: BranchKind) -> None:
        """:meth:`train` with the stream already destructured into its
        fields and the *effective* terminator kind (``BranchKind.NONE``
        for streams that do not end taken) pre-resolved -- the form the
        batched passes read straight out of the segment columns."""
        self.base_table.update(addr >> 2, length, next_addr, kind)
        self.history_table.update(
            self._history_key(addr, history), length, next_addr, kind
        )

    # ------------------------------------------------------------------
    def clone(self) -> "StreamPredictor":
        """Independent copy (tables and statistics included)."""
        new = StreamPredictor.__new__(StreamPredictor)
        new.base_table = self.base_table.clone()
        new.history_table = self.history_table.clone()
        new.default_length = self.default_length
        new.history_bits = self.history_bits
        new._history_mask = self._history_mask
        new.lookups = self.lookups
        new.base_hits = self.base_hits
        new.history_hits = self.history_hits
        new.table_misses = self.table_misses
        return new

    def __deepcopy__(self, memo: dict) -> "StreamPredictor":
        """Simulator checkpoints deep-copy the machine; route the predictor
        (thousands of table entries) through :meth:`clone` instead of the
        generic -- much slower -- ``copy.deepcopy`` walk."""
        new = self.clone()
        memo[id(self)] = new
        return new

    # ------------------------------------------------------------------
    @staticmethod
    def fold_history(history: int, next_addr: int, taken: bool,
                     bits: int = 16) -> int:
        """Update a folded path-history register with one stream outcome."""
        mask = (1 << bits) - 1
        return (((history << 3) & mask) ^ ((next_addr >> 4) & mask)
                ^ (1 if taken else 0))

    @property
    def table_hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return (self.base_hits + self.history_hits) / self.lookups
