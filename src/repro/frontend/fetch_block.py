"""Fetch entities exchanged between prediction, fetch queues and fetch.

* :class:`FetchBlock` -- what the stream predictor produces: a run of
  sequential instructions plus bookkeeping about whether (and where) the
  run diverges from the correct path.  FTQ entries (FDP) are fetch blocks;
  CLTQ entries (CLGP) are the cache lines of fetch blocks.
* :class:`FetchLineRequest` -- one cache line's worth of a fetch block, the
  granularity at which the fetch stage and the prefetchers operate.
* :class:`FetchedInstruction` -- what the fetch stage delivers to the
  back-end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..workloads.bbdict import BasicBlockDictionary
from ..workloads.isa import INSTRUCTION_BYTES, InstrClass, span_lines

_block_ids = itertools.count()


@dataclass
class FetchBlock:
    """A predicted fetch stream (sequential run of instructions).

    Attributes
    ----------
    start:
        Address of the first instruction.
    length:
        Number of sequential instructions predicted.
    wrong_path:
        True if the whole block was generated while the front-end was
        already known to be on a mispredicted path.
    correct_prefix:
        Number of leading instructions that lie on the correct path.  For a
        correctly-predicted block this equals ``length``; for the block
        containing a misprediction it is the distance to (and including)
        the mispredicted branch; for wholly wrong-path blocks it is 0.
    mispredicted:
        True if this block contains the branch whose resolution will
        trigger a front-end redirect.
    redirect_target:
        Correct-path continuation address after that branch (None when not
        mispredicted).  Used for assertions and statistics only -- the
        oracle already sits at this address.
    """

    start: int
    length: int
    wrong_path: bool = False
    correct_prefix: int = 0
    mispredicted: bool = False
    redirect_target: Optional[int] = None
    block_id: int = field(default_factory=lambda: next(_block_ids))
    _instr_classes: Optional[Tuple[InstrClass, ...]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("fetch block must contain at least one instruction")
        if self.wrong_path:
            self.correct_prefix = 0
        elif not self.mispredicted and self.correct_prefix == 0:
            self.correct_prefix = self.length
        if self.correct_prefix > self.length:
            raise ValueError("correct_prefix cannot exceed length")

    @property
    def end_addr(self) -> int:
        return self.start + self.length * INSTRUCTION_BYTES

    def instruction_addr(self, index: int) -> int:
        return self.start + index * INSTRUCTION_BYTES

    def lines(self, line_size: int) -> List[int]:
        """Cache-line addresses covered by this block, in fetch order."""
        return span_lines(self.start, self.length, line_size)

    def line_requests(self, line_size: int) -> List["FetchLineRequest"]:
        """Split the block into per-line fetch requests (CLTQ granularity)."""
        requests: List[FetchLineRequest] = []
        for line in self.lines(line_size):
            seg_start = max(self.start, line)
            seg_end = min(self.end_addr, line + line_size)
            n = (seg_end - seg_start) // INSTRUCTION_BYTES
            first_index = (seg_start - self.start) // INSTRUCTION_BYTES
            requests.append(
                FetchLineRequest(
                    line_addr=line,
                    block=self,
                    first_instr_index=first_index,
                    num_instructions=n,
                )
            )
        return requests

    def instr_classes(self, bbdict: BasicBlockDictionary) -> Tuple[InstrClass, ...]:
        """Instruction classes for the whole block (resolved lazily via the
        basic-block dictionary and cached on the block)."""
        if self._instr_classes is None:
            classes: List[InstrClass] = []
            addr = self.start
            while len(classes) < self.length:
                view = bbdict.view_at(addr)
                take = min(view.size, self.length - len(classes))
                classes.extend(view.instr_classes[:take])
                addr = view.start + take * INSTRUCTION_BYTES
            self._instr_classes = tuple(classes[: self.length])
        return self._instr_classes


@dataclass
class FetchLineRequest:
    """One cache line of a fetch block, as queued in the CLTQ or processed
    by the fetch stage."""

    line_addr: int
    block: FetchBlock
    first_instr_index: int      #: index within the parent block
    num_instructions: int
    prefetched: bool = False    #: CLTQ 'prefetched bit'
    occupied: bool = True       #: CLTQ 'occupied bit'

    @property
    def start_addr(self) -> int:
        return self.block.instruction_addr(self.first_instr_index)

    @property
    def wrong_path(self) -> bool:
        return self.block.wrong_path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FetchLineRequest(line={self.line_addr:#x}, n={self.num_instructions}, "
            f"block={self.block.block_id})"
        )


@dataclass(frozen=True)
class FetchedInstruction:
    """A single instruction delivered by the fetch stage to the back-end."""

    addr: int
    cls: InstrClass
    wrong_path: bool
    triggers_redirect: bool = False
    redirect_target: Optional[int] = None
    fetch_source: str = "il1"   #: which storage supplied the line
