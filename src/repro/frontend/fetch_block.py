"""Fetch entities exchanged between prediction, fetch queues and fetch.

* :class:`FetchBlock` -- what the stream predictor produces: a run of
  sequential instructions plus bookkeeping about whether (and where) the
  run diverges from the correct path.  FTQ entries (FDP) are fetch blocks;
  CLTQ entries (CLGP) are the cache lines of fetch blocks.
* :class:`FetchLineRequest` -- one cache line's worth of a fetch block, the
  granularity at which the fetch stage and the prefetchers operate.
* :class:`FetchedInstruction` -- what the fetch stage delivers to the
  back-end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..workloads.bbdict import BasicBlockDictionary
from ..workloads.isa import INSTRUCTION_BYTES, InstrClass, span_lines

_block_ids = itertools.count()

#: Memoized block-to-cache-line split geometry: (start, length, line_size)
#: -> tuple of (line_addr, first_instr_index, num_instructions).  Fetch
#: blocks for the same streams recur millions of times across a sweep and
#: the split only depends on addresses, so this is shared globally.
_SPLIT_CACHE: dict = {}


@dataclass(slots=True)
class FetchBlock:
    """A predicted fetch stream (sequential run of instructions).

    Attributes
    ----------
    start:
        Address of the first instruction.
    length:
        Number of sequential instructions predicted.
    wrong_path:
        True if the whole block was generated while the front-end was
        already known to be on a mispredicted path.
    correct_prefix:
        Number of leading instructions that lie on the correct path.  For a
        correctly-predicted block this equals ``length``; for the block
        containing a misprediction it is the distance to (and including)
        the mispredicted branch; for wholly wrong-path blocks it is 0.
    mispredicted:
        True if this block contains the branch whose resolution will
        trigger a front-end redirect.
    redirect_target:
        Correct-path continuation address after that branch (None when not
        mispredicted).  Used for assertions and statistics only -- the
        oracle already sits at this address.
    """

    start: int
    length: int
    wrong_path: bool = False
    correct_prefix: int = 0
    mispredicted: bool = False
    redirect_target: Optional[int] = None
    block_id: int = field(default_factory=lambda: next(_block_ids))
    _instr_classes: Optional[Tuple[InstrClass, ...]] = field(
        default=None, repr=False, compare=False
    )
    #: CLTQ bookkeeping: line entries of this block still resident in the
    #: queue (maintained by :class:`~repro.core.cltq.CacheLineTargetQueue`).
    cltq_lines_remaining: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("fetch block must contain at least one instruction")
        if self.wrong_path:
            self.correct_prefix = 0
        elif not self.mispredicted and self.correct_prefix == 0:
            self.correct_prefix = self.length
        if self.correct_prefix > self.length:
            raise ValueError("correct_prefix cannot exceed length")

    @property
    def end_addr(self) -> int:
        return self.start + self.length * INSTRUCTION_BYTES

    def instruction_addr(self, index: int) -> int:
        return self.start + index * INSTRUCTION_BYTES

    def _split_geometry(self, line_size: int) -> tuple:
        key = (self.start, self.length, line_size)
        geometry = _SPLIT_CACHE.get(key)
        if geometry is None:
            start, end_addr = self.start, self.end_addr
            segments = []
            for line in span_lines(start, self.length, line_size):
                seg_start = max(start, line)
                seg_end = min(end_addr, line + line_size)
                segments.append((
                    line,
                    (seg_start - start) // INSTRUCTION_BYTES,
                    (seg_end - seg_start) // INSTRUCTION_BYTES,
                ))
            geometry = _SPLIT_CACHE[key] = tuple(segments)
        return geometry

    def lines(self, line_size: int) -> List[int]:
        """Cache-line addresses covered by this block, in fetch order."""
        return [line for line, _, _ in self._split_geometry(line_size)]

    def line_requests(self, line_size: int) -> List["FetchLineRequest"]:
        """Split the block into per-line fetch requests (CLTQ granularity)."""
        return [
            FetchLineRequest(
                line_addr=line,
                block=self,
                first_instr_index=first_index,
                num_instructions=n,
            )
            for line, first_index, n in self._split_geometry(line_size)
        ]

    def instr_classes(self, bbdict: BasicBlockDictionary) -> Tuple[InstrClass, ...]:
        """Instruction classes for the whole block (resolved lazily via the
        basic-block dictionary, which memoizes per (start, length))."""
        if self._instr_classes is None:
            self._instr_classes = bbdict.classes_for(self.start, self.length)
        return self._instr_classes


@dataclass(slots=True)
class FetchLineRequest:
    """One cache line of a fetch block, as queued in the CLTQ or processed
    by the fetch stage."""

    line_addr: int
    block: FetchBlock
    first_instr_index: int      #: index within the parent block
    num_instructions: int
    prefetched: bool = False    #: CLTQ 'prefetched bit'
    occupied: bool = True       #: CLTQ 'occupied bit'

    @property
    def start_addr(self) -> int:
        return self.block.instruction_addr(self.first_instr_index)

    @property
    def wrong_path(self) -> bool:
        return self.block.wrong_path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FetchLineRequest(line={self.line_addr:#x}, n={self.num_instructions}, "
            f"block={self.block.block_id})"
        )


@dataclass(frozen=True, slots=True)
class FetchedInstruction:
    """A single instruction delivered by the fetch stage to the back-end."""

    addr: int
    cls: InstrClass
    wrong_path: bool
    triggers_redirect: bool = False
    redirect_target: Optional[int] = None
    fetch_source: str = "il1"   #: which storage supplied the line
