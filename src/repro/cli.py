"""Command-line interface (``repro-clgp``).

A thin shell over the :mod:`repro.api` façade -- every subcommand builds
an :class:`~repro.api.ExperimentSpec` (or calls a ``Session`` experiment
method) and runs it through one :class:`~repro.api.Session`, which owns
the worker pool and artifact-cache policy for the whole invocation.

Subcommands:

* ``run``      -- simulate one configuration on one or more benchmarks,
* ``figure``   -- regenerate the data of a paper figure (1, 2, 4, 5, 6,
  7, 8, or ``all`` for every figure in sequence),
* ``tables``   -- print Tables 1, 2 and 3,
* ``speedups`` -- print the headline CLGP-vs-FDP / CLGP-vs-baseline speedups,
* ``sample``   -- profile a benchmark, select representative intervals, and
  (optionally) compare a sampled run against the full run,
* ``cache``    -- inspect (``ls``), locate (``path``), empty (``clear``),
  size-cap (``gc --max-size``) or audit/repair (``fsck [--repair]``)
  the persistent artifact cache, or print this process's
  cache/supervision counters (``stats``, ``--json`` for machines).

``run``, ``figure`` and ``speedups`` accept ``--jobs N`` (0 = all cores)
-- the session plans each sweep as a flat task list, so the whole grid
fans out over one workload-affine process pool that is reused across the
figures of a ``figure all`` invocation.  ``figure`` and ``speedups``
also accept ``--sampled`` to run every simulation in SimPoint-style
sampled mode.  Simulation commands accept ``--cache-dir`` (default
``.repro-cache/``, env ``REPRO_CACHE_DIR``) and ``--no-cache``
(env ``REPRO_CACHE_DISABLE=1``) to steer the artifact cache, plus
``--no-result-cache`` (env ``REPRO_RESULT_CACHE_DISABLE=1``) to force
full runs to resimulate instead of replaying persisted
``SimulationResult`` artifacts -- with it off (the default), a repeated
``figure``/``speedups`` invocation without ``--sampled`` returns
byte-identical results straight from the store.

Fault tolerance: simulation commands accept ``--task-timeout SECONDS``
(per-task deadline; an overrunning task is killed and reported as a
failure), ``--max-retries N`` (re-dispatch budget after worker loss or
in-task errors; env ``REPRO_MAX_RETRIES``) and ``--faults SPEC`` (the
deterministic chaos injector, e.g.
``worker_kill:0.1,artifact_corrupt:0.05,io_delay:20ms,seed:7``; env
``REPRO_FAULTS``).  Failed tasks and retry counts are reported on
stderr -- stdout stays byte-comparable with a fault-free run -- and a
run with failures exits with status 1.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .api import (
    DEFAULT_MIX,
    RunResult,
    SCHEMES,
    SPECINT2000_NAMES,
    ExecutionOptions,
    ExperimentSpec,
    SamplingSpec,
    Session,
    TaskFailureError,
    cache_enabled,
    format_ipc_sweep,
    format_key_value_table,
    format_latency_table,
    format_per_benchmark,
    format_source_distribution,
    format_speedups,
    get_selection,
    get_store,
    harmonic_mean_ipc,
    paper_config,
    profile_for,
    table1,
    table2,
    table3,
)


class _CliError(Exception):
    """Bad command-line input; reported as ``error: ...`` with exit 2."""


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="persistent artifact cache directory "
                             "(default: .repro-cache/, or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent artifact cache "
                             "(recompute everything in-process)")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="always resimulate full runs instead of "
                             "replaying persisted SimulationResults "
                             "(other artifact kinds still replay; env: "
                             "REPRO_RESULT_CACHE_DISABLE=1)")


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--technology", default="0.045um",
                        help="technology node (0.09um or 0.045um)")
    parser.add_argument("--l1-size", type=int, default=4096,
                        help="L1 I-cache size in bytes")
    parser.add_argument("--instructions", type=int, default=20000,
                        help="correct-path instructions to simulate per run")


def _add_common(parser: argparse.ArgumentParser) -> None:
    _add_config_args(parser)
    _add_cache_args(parser)
    parser.add_argument("--benchmarks", default=",".join(DEFAULT_MIX),
                        help="comma-separated benchmark names, or 'all'")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation grid "
                             "(0 = all cores)")
    _add_interval_jobs(parser)
    _add_fault_args(parser)


def _add_interval_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--interval-jobs", type=int, default=None,
                        metavar="N",
                        help="worker processes *inside* each sampled run: "
                             "contiguous interval segments fan out across "
                             "the shared pool, bit-identical to the serial "
                             "walk (0 = all cores; default: inherit --jobs "
                             "for single-run plans, serial otherwise)")


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task deadline; a task that overruns it "
                             "is killed and reported as a failure")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="re-dispatch budget per task after worker "
                             "loss or in-task errors "
                             "(default: $REPRO_MAX_RETRIES or 2)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault injection, e.g. "
                             "'worker_kill:0.1,artifact_corrupt:0.05,"
                             "io_delay:20ms,seed:7' (env: REPRO_FAULTS)")


def _add_sampling(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sampled", action="store_true",
                        help="estimate every run from representative "
                             "intervals instead of simulating in full")


def _validate_benchmark(name: str) -> str:
    try:
        profile_for(name)
    except KeyError as exc:
        raise _CliError(exc.args[0]) from exc
    return name


def _benchmarks(arg: str) -> List[str]:
    if arg.strip().lower() == "all":
        return list(SPECINT2000_NAMES)
    return [_validate_benchmark(b.strip())
            for b in arg.split(",") if b.strip()]


def _options(args: argparse.Namespace) -> ExecutionOptions:
    """Per-call execution options from the parsed flags (``--jobs`` is
    session-level policy, validated where the Session is built)."""
    try:
        return ExecutionOptions(
            sampled=getattr(args, "sampled", False),
            interval_jobs=getattr(args, "interval_jobs", None),
            result_cache=(False if getattr(args, "no_result_cache", False)
                          else None),
            task_timeout=getattr(args, "task_timeout", None),
            max_retries=getattr(args, "max_retries", None),
            faults=getattr(args, "faults", None),
        )
    except ValueError as exc:
        raise _CliError(str(exc)) from exc


def _retry_note(retries: int) -> None:
    if retries:
        print(f"note: {retries} task retr"
              f"{'y' if retries == 1 else 'ies'} "
              "(worker loss / transient errors)", file=sys.stderr)


def _report_failures(failures, total: Optional[int] = None) -> int:
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    if failures:
        of_total = f" of {total}" if total is not None else ""
        print(f"error: {len(failures)}{of_total} task(s) failed; "
              "results above are partial", file=sys.stderr)
        return 1
    return 0


def _report_faults(result: RunResult) -> int:
    """Failures and retry totals -> stderr (stdout stays byte-comparable
    with a fault-free run); returns the process exit code."""
    _retry_note(result.task_retries)
    return _report_failures(result.failed_tasks, len(result.results))


def _cmd_run(session: Session, args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        scheme=args.scheme,
        benchmarks=tuple(_benchmarks(args.benchmarks)),
        max_instructions=args.instructions,
        technology=args.technology,
        l1_size_bytes=args.l1_size,
        name="cli-run",
    )
    run = session.run(spec, options=_options(args))
    succeeded = run.successes
    for result in succeeded:
        print(result.summary())
    if succeeded:
        print(f"{'HMEAN IPC':>18s} : {harmonic_mean_ipc(succeeded):.3f}")
    return _report_faults(run)


#: Figures renderable by ``repro-clgp figure`` (``all`` runs them all).
FIGURE_NUMBERS = ("1", "2", "4", "5", "6", "7", "8")


def _aggregate_faults(fn) -> int:
    """Run an aggregate command (figure/speedups) under fault reporting.

    Aggregate builders refuse to render from partial results -- they
    raise :class:`TaskFailureError` -- so the command reports the typed
    failures on stderr and exits 1; either way retries observed by the
    supervisor are noted (stdout stays byte-comparable with a fault-free
    run)."""
    from .simulator.runner import supervisor_stats

    try:
        code = fn()
    except TaskFailureError as exc:
        _retry_note(supervisor_stats().retries)
        return _report_failures(exc.failures) or 1
    _retry_note(supervisor_stats().retries)
    return code


def _cmd_figure(session: Session, args: argparse.Namespace) -> int:
    def render() -> int:
        if args.number == "all":
            # One invocation, one session, one worker pool, one artifact
            # cache: later figures reuse every workload/trace/profile
            # artifact the earlier ones computed (in memory with jobs=1,
            # in the pool workers' caches with jobs>1).
            for number in FIGURE_NUMBERS:
                code = _render_figure(session, number, args)
                if code:
                    return code
                print()
            return 0
        return _render_figure(session, args.number, args)

    return _aggregate_faults(render)


def _render_figure(session: Session, fig: str,
                   args: argparse.Namespace) -> int:
    names = _benchmarks(args.benchmarks)
    options = _options(args)
    kwargs = dict(
        technology=args.technology,
        benchmarks=names,
        max_instructions=args.instructions,
        options=options,
    )
    suffix = " [sampled]" if args.sampled else ""
    if fig == "1":
        print(format_ipc_sweep(session.figure1_series(**kwargs),
                               f"Figure 1: IPC vs L1 size{suffix}"))
    elif fig == "2":
        print(format_ipc_sweep(session.figure2_series(**kwargs),
                               f"Figure 2(b): FDP vs FDP+L0{suffix}"))
    elif fig == "4":
        print(format_ipc_sweep(session.figure4_series(**kwargs),
                               f"Figure 4(b): CLGP vs CLGP+L0{suffix}"))
    elif fig == "5":
        print(format_ipc_sweep(session.figure5_series(**kwargs),
                               f"Figure 5: main comparison{suffix}"))
    elif fig == "6":
        series = session.figure6_series(
            technology=args.technology, l1_size_bytes=args.l1_size,
            benchmarks=names if names != list(DEFAULT_MIX) else None,
            max_instructions=args.instructions,
            options=options,
        )
        print(format_per_benchmark(series,
                                   f"Figure 6: per-benchmark IPC{suffix}"))
    elif fig == "7":
        for with_l0 in (False, True):
            series = session.figure7_series(with_l0=with_l0, **kwargs)
            label = "with L0" if with_l0 else "without L0"
            print(format_source_distribution(
                series,
                f"Figure 7: fetch source distribution ({label}){suffix}"
            ))
    elif fig == "8":
        print(format_source_distribution(
            session.figure8_series(**kwargs),
            f"Figure 8: prefetch source distribution{suffix}"
        ))
    else:
        print(f"unknown figure {fig!r}", file=sys.stderr)
        return 2
    return 0


def _parse_size(token: str) -> int:
    """``--max-size`` values: plain bytes or K/M/G (binary) suffixes."""
    text = token.strip().upper()
    multiplier = 1
    for suffix, factor in (("KB", 1024), ("K", 1024),
                           ("MB", 1024 ** 2), ("M", 1024 ** 2),
                           ("GB", 1024 ** 3), ("G", 1024 ** 3),
                           ("B", 1)):
        if text.endswith(suffix):
            text = text[:-len(suffix)]
            multiplier = factor
            break
    try:
        value = int(float(text) * multiplier)
    except ValueError as exc:
        raise _CliError(f"invalid size {token!r} "
                        "(expected bytes, optionally with K/M/G)") from exc
    if value < 0:
        raise _CliError("size must be >= 0")
    return value


def _cmd_cache(session: Session, args: argparse.Namespace) -> int:
    store = get_store()
    if args.action == "path":
        print(store.root)
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifact file(s) from {store.root}")
        return 0
    if args.action == "stats":
        if args.json:
            print(json.dumps(session.cache_counters(), indent=2,
                             sort_keys=True))
            return 0
        from .cache.results import RESULT_CACHE_STATS
        from .simulator.runner import supervisor_stats

        stats = store.stats
        print("artifact store (this process)")
        print(f"  hits {stats.hits}  misses {stats.misses}  "
              f"stores {stats.stores}  corrupt {stats.corrupt}")
        print(f"  io_retries {stats.io_retries}  "
              f"read_errors {stats.read_errors}  "
              f"write_errors {stats.write_errors}")
        print(f"  crashed_writes {stats.crashed_writes}  "
              f"skipped_writes {stats.skipped_writes}  "
              f"reprobes {stats.reprobes}  "
              f"recoveries {stats.recoveries}")
        print("result replay (this process)")
        print(f"  hits {RESULT_CACHE_STATS.hits}  "
              f"misses {RESULT_CACHE_STATS.misses}  "
              f"stores {RESULT_CACHE_STATS.stores}  "
              f"invalid {RESULT_CACHE_STATS.invalid}")
        sup = supervisor_stats()
        print("supervision (this process)")
        print(f"  retries {sup.retries}  worker_losses {sup.worker_losses}  "
              f"timeouts {sup.timeouts}  task_errors {sup.task_errors}  "
              f"pool_respawns {sup.pool_respawns}")
        return 0
    if args.action == "gc":
        if args.max_size is None:
            raise _CliError("cache gc requires --max-size")
        limit = _parse_size(args.max_size)
        report = store.gc(limit)
        print(f"evicted {report.files_removed} artifact file(s) "
              f"({report.bytes_removed / 1024:.1f} KiB) from {store.root}")
        print(f"reaped {report.tmp_files_removed} orphaned temp file(s) "
              f"({report.tmp_bytes_removed / 1024:.1f} KiB)")
        print(f"store now holds {store.total_size() / 1024:.1f} KiB "
              f"(limit {limit / 1024:.1f} KiB)")
        return 0
    if args.action == "fsck":
        report = store.fsck(repair=args.repair)
        if args.json:
            print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        else:
            action = "repaired" if args.repair else "found"
            print(f"fsck of {store.root} (schema v{store.version})")
            for kind in sorted(report.per_kind):
                ok, corrupt = report.per_kind[kind]
                note = f"  {corrupt} corrupt ({action})" if corrupt else ""
                print(f"  {kind:>12s} : {ok:>5d} ok{note}")
            if report.tmp_files:
                print(f"  {report.tmp_files} orphaned temp file(s) "
                      f"({report.tmp_bytes / 1024:.1f} KiB) {action}")
            if report.other_version_files:
                print(f"  plus {report.other_version_files} file(s) from "
                      f"other schema versions (reclaim with `repro-clgp "
                      f"cache clear`)")
            verdict = "clean" if report.clean() else (
                "repaired" if args.repair else "damaged")
            print(f"  store is {verdict}: {report.ok} ok, "
                  f"{report.corrupt} corrupt, {report.tmp_files} orphaned "
                  f"temp file(s)")
        # Damage that was only *reported* is an error exit; a repair pass
        # (or an already-clean store) exits 0 so scripted
        # `fsck --repair && fsck` pipelines read naturally.
        return 0 if (report.clean() or args.repair) else 1
    # ls
    status = "enabled" if cache_enabled() else "disabled"
    print(f"artifact cache at {store.root} "
          f"(schema v{store.version}, {status})")
    summary = store.describe()
    orphaned_files, orphaned_bytes = store.orphaned()
    if not summary and not orphaned_files:
        print("  (empty)")
        return 0
    total_files = total_bytes = 0
    for kind in sorted(summary):
        count, size = summary[kind]
        total_files += count
        total_bytes += size
        print(f"  {kind:>12s} : {count:>5d} file(s) {size / 1024:>10.1f} KiB")
    print(f"  {'total':>12s} : {total_files:>5d} file(s) "
          f"{total_bytes / 1024:>10.1f} KiB")
    if orphaned_files:
        print(f"  plus {orphaned_files} file(s) "
              f"({orphaned_bytes / 1024:.1f} KiB) from other schema "
              f"versions (reclaim with `repro-clgp cache clear`)")
    return 0


def _cmd_tables(session: Session, args: argparse.Namespace) -> int:
    rows1 = {f"{r['year']}": f"{r['technology_um']}um, {r['clock_ghz']}GHz, "
             f"{r['cycle_time_ns']}ns" for r in table1()}
    print(format_key_value_table(rows1, "Table 1: SIA technology roadmap"))
    print()
    print(format_key_value_table(table2(), "Table 2: simulation parameters"))
    print()
    print(format_latency_table(table3(), "Table 3: cache access latencies (cycles)"))
    return 0


def _cmd_speedups(session: Session, args: argparse.Namespace) -> int:
    names = _benchmarks(args.benchmarks)

    def render() -> int:
        data = session.headline_speedups(
            l1_size_bytes=args.l1_size, benchmarks=names,
            max_instructions=args.instructions,
            options=_options(args),
        )
        print(format_speedups(data))
        return 0

    return _aggregate_faults(render)


def _cmd_sample(session: Session, args: argparse.Namespace) -> int:
    try:
        spec = SamplingSpec(
            interval_length=args.interval_length,
            max_intervals=args.intervals,
            method=args.method,
        )
    except ValueError as exc:
        raise _CliError(str(exc)) from exc
    config = paper_config(
        args.scheme, l1_size_bytes=args.l1_size, technology=args.technology,
        max_instructions=args.instructions,
    )
    workload = session.workload(_validate_benchmark(args.benchmark))
    selection = get_selection(workload, args.instructions, spec,
                              config=config)
    print(f"Interval selection for {args.benchmark} "
          f"({args.instructions} instructions, "
          f"interval {selection.interval_length}, method {args.method})")
    header = (f"{'idx':>5s} {'start':>8s} {'length':>7s} {'weight':>7s} "
              f"{'cluster':>7s} {'proxy':>9s}")
    print(header)
    print("-" * len(header))
    for interval in selection.intervals:
        proxy = f"{interval.proxy:9.0f}" if interval.proxy else f"{'-':>9s}"
        print(f"{interval.index:>5d} {interval.start_instruction:>8d} "
              f"{interval.length:>7d} {interval.weight:>6.1%} "
              f"{interval.cluster_size:>7d} {proxy}")
    print(f"coverage: {selection.coverage():.1%} "
          f"({selection.sampled_instructions} of "
          f"{selection.total_instructions} instructions)")

    run_spec = ExperimentSpec(
        scheme=args.scheme,
        benchmarks=args.benchmark,
        max_instructions=args.instructions,
        technology=args.technology,
        l1_size_bytes=args.l1_size,
        name="cli-sample",
    )
    start = time.perf_counter()
    sampled_run = session.run(
        run_spec, options=ExecutionOptions(
            sampled=True, sampling=spec,
            interval_jobs=getattr(args, "interval_jobs", None)))
    if sampled_run.failed_tasks:
        return _report_faults(sampled_run)
    sampled = sampled_run.results[0]
    sampled_seconds = time.perf_counter() - start
    print(f"\nSampled run ({args.scheme}): IPC {sampled.ipc:.3f} "
          f"[{sampled_seconds:.2f}s]")
    if args.compare:
        start = time.perf_counter()
        # result_cache=False: the point of --compare is timing the full
        # simulation against the sampled estimate; replaying a persisted
        # result would report a meaningless ~0s baseline.
        full_run = session.run(
            run_spec, options=ExecutionOptions(result_cache=False))
        if full_run.failed_tasks:
            return _report_faults(full_run)
        full = full_run.results[0]
        full_seconds = time.perf_counter() - start
        error = sampled.ipc / full.ipc - 1.0 if full.ipc else 0.0
        ratio = full_seconds / sampled_seconds if sampled_seconds else 0.0
        print(f"Full run    ({args.scheme}): IPC {full.ipc:.3f} "
              f"[{full_seconds:.2f}s]")
        print(f"relative IPC error {error:+.2%}, speedup {ratio:.1f}x")
    return 0


def _cmd_serve(session: Session, args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from .cache.results import configure_result_cache
    from .faults import configure_faults
    from .service.server import ExperimentServer

    if args.faults:
        try:
            # Process-wide for the server's lifetime: serve is the one
            # command where chaos must also cover the HTTP boundary
            # (the request_drop site fires before any Session exists).
            configure_faults(args.faults)
        except ValueError as exc:
            raise _CliError(str(exc)) from exc
    if args.no_result_cache:
        configure_result_cache(False)

    async def run() -> int:
        server = ExperimentServer(
            session, host=args.host, port=args.port,
            parallel=args.parallel, quota=args.quota,
            max_queue_depth=args.max_queue, max_jobs=args.max_jobs)
        await server.start()
        # Parseable by wrappers (CI smoke, tests): port 0 binds an
        # ephemeral port and this line is where it is announced.
        print(f"listening on http://{args.host}:{server.port}", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
        serving = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        serving.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serving
        await server.stop()
        print("service stopped", flush=True)
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:   # signal handlers unavailable (rare)
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-clgp",
        description="Cache Line Guided Prestaging reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one configuration")
    p_run.add_argument("scheme", choices=SCHEMES)
    _add_common(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure's data")
    p_fig.add_argument("number", choices=list(FIGURE_NUMBERS) + ["all"])
    _add_common(p_fig)
    _add_sampling(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_tab = sub.add_parser("tables", help="print Tables 1-3")
    p_tab.set_defaults(func=_cmd_tables)

    p_speed = sub.add_parser("speedups", help="print the headline speedups")
    _add_common(p_speed)
    _add_sampling(p_speed)
    p_speed.set_defaults(func=_cmd_speedups)

    p_sample = sub.add_parser(
        "sample",
        help="profile a benchmark and select representative intervals",
    )
    p_sample.add_argument("benchmark")
    p_sample.add_argument("--scheme", default="CLGP+L0", choices=SCHEMES)
    p_sample.add_argument("--intervals", type=int, default=4,
                          help="representative intervals to select (K)")
    p_sample.add_argument("--interval-length", type=int, default=None,
                          help="instructions per interval "
                               "(default: derived from the budget)")
    p_sample.add_argument("--method", default="stratified",
                          choices=["stratified", "kmeans"],
                          help="interval selection method")
    p_sample.add_argument("--compare", action="store_true",
                          help="also run the full simulation and report "
                               "the sampled run's error and speedup")
    _add_config_args(p_sample)
    _add_cache_args(p_sample)
    _add_interval_jobs(p_sample)
    p_sample.set_defaults(func=_cmd_sample)

    p_cache = sub.add_parser(
        "cache", help="inspect, clear, size-cap or fsck the artifact cache")
    p_cache.add_argument("action",
                         choices=["ls", "clear", "path", "gc", "stats",
                                  "fsck"],
                         nargs="?", default="ls")
    p_cache.add_argument("--repair", action="store_true",
                         help="fsck: unlink corrupt artifacts and reap "
                              "orphaned temp files (default: report only)")
    p_cache.add_argument("--json", action="store_true",
                         help="stats/fsck: machine-readable JSON output")
    p_cache.add_argument("--max-size", default=None, metavar="BYTES",
                         help="gc: evict least-recently-used artifacts "
                              "until the store fits this size "
                              "(suffixes K/M/G allowed)")
    _add_cache_args(p_cache)
    p_cache.set_defaults(func=_cmd_cache)

    p_serve = sub.add_parser(
        "serve",
        help="run the experiment service (HTTP + SSE front end: "
             "concurrent clients, request dedup, fair scheduling)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8177,
                         help="listen port (0 = ephemeral; the bound "
                              "port is announced on stdout)")
    p_serve.add_argument("--parallel", type=int, default=2,
                         help="experiment runs in flight at once")
    p_serve.add_argument("--quota", type=int, default=8,
                         help="max jobs queued or running per client")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="global queue depth before 429 backpressure")
    p_serve.add_argument("--max-jobs", type=int, default=512,
                         help="retained jobs before the oldest terminal "
                              "unwatched ones are evicted (re-submits "
                              "replay from the result cache)")
    p_serve.add_argument("--jobs", type=int, default=1,
                         help="worker processes per experiment run "
                              "(0 = all cores)")
    p_serve.add_argument("--faults", default=None, metavar="SPEC",
                         help="deterministic chaos for the whole service, "
                              "e.g. 'worker_kill:0.2,request_drop:0.2,"
                              "seed:7' (env: REPRO_FAULTS)")
    _add_cache_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        try:
            session = Session(
                jobs=getattr(args, "jobs", 1),
                cache_dir=getattr(args, "cache_dir", None),
                cache=False if getattr(args, "no_cache", False) else None,
            )
        except ValueError as exc:
            raise _CliError(str(exc)) from exc
        with session:
            return args.func(session, args)
    except _CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
