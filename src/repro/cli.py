"""Command-line interface (``repro-clgp``).

Subcommands:

* ``run``      -- simulate one configuration on one or more benchmarks,
* ``figure``   -- regenerate the data of a paper figure (1, 2, 4, 5, 6, 7, 8),
* ``tables``   -- print Tables 1, 2 and 3,
* ``speedups`` -- print the headline CLGP-vs-FDP / CLGP-vs-baseline speedups.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    figure1_series,
    figure2_series,
    figure4_series,
    figure5_series,
    figure6_series,
    figure7_series,
    figure8_series,
    format_ipc_sweep,
    format_key_value_table,
    format_latency_table,
    format_per_benchmark,
    format_source_distribution,
    format_speedups,
    headline_speedups,
    table1,
    table2,
    table3,
)
from .simulator import paper_config, run_benchmarks, harmonic_mean_ipc
from .simulator.presets import SCHEMES
from .workloads import DEFAULT_MIX, SPECINT2000_NAMES


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--technology", default="0.045um",
                        help="technology node (0.09um or 0.045um)")
    parser.add_argument("--l1-size", type=int, default=4096,
                        help="L1 I-cache size in bytes")
    parser.add_argument("--instructions", type=int, default=20000,
                        help="correct-path instructions to simulate per run")
    parser.add_argument("--benchmarks", default=",".join(DEFAULT_MIX),
                        help="comma-separated benchmark names, or 'all'")


def _benchmarks(arg: str) -> List[str]:
    if arg.strip().lower() == "all":
        return list(SPECINT2000_NAMES)
    return [b.strip() for b in arg.split(",") if b.strip()]


def _cmd_run(args: argparse.Namespace) -> int:
    config = paper_config(
        args.scheme, l1_size_bytes=args.l1_size, technology=args.technology,
        max_instructions=args.instructions,
    )
    names = _benchmarks(args.benchmarks)
    if args.jobs < 0:
        print("error: --jobs must be >= 1 (or 0 for all cores)", file=sys.stderr)
        return 2
    results = run_benchmarks(config, names, args.instructions, jobs=args.jobs)
    for result in results:
        print(result.summary())
    print(f"{'HMEAN IPC':>18s} : {harmonic_mean_ipc(results):.3f}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    names = _benchmarks(args.benchmarks)
    kwargs = dict(
        technology=args.technology,
        benchmarks=names,
        max_instructions=args.instructions,
    )
    fig = args.number
    if fig == "1":
        print(format_ipc_sweep(figure1_series(**kwargs), "Figure 1: IPC vs L1 size"))
    elif fig == "2":
        print(format_ipc_sweep(figure2_series(**kwargs), "Figure 2(b): FDP vs FDP+L0"))
    elif fig == "4":
        print(format_ipc_sweep(figure4_series(**kwargs), "Figure 4(b): CLGP vs CLGP+L0"))
    elif fig == "5":
        print(format_ipc_sweep(figure5_series(**kwargs), "Figure 5: main comparison"))
    elif fig == "6":
        series = figure6_series(
            technology=args.technology, l1_size_bytes=args.l1_size,
            benchmarks=names if args.benchmarks != ",".join(DEFAULT_MIX) else None,
            max_instructions=args.instructions,
        )
        print(format_per_benchmark(series, "Figure 6: per-benchmark IPC"))
    elif fig == "7":
        for with_l0 in (False, True):
            series = figure7_series(with_l0=with_l0, **kwargs)
            label = "with L0" if with_l0 else "without L0"
            print(format_source_distribution(
                series, f"Figure 7: fetch source distribution ({label})"
            ))
    elif fig == "8":
        print(format_source_distribution(
            figure8_series(**kwargs), "Figure 8: prefetch source distribution"
        ))
    else:
        print(f"unknown figure {fig!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    rows1 = {f"{r['year']}": f"{r['technology_um']}um, {r['clock_ghz']}GHz, "
             f"{r['cycle_time_ns']}ns" for r in table1()}
    print(format_key_value_table(rows1, "Table 1: SIA technology roadmap"))
    print()
    print(format_key_value_table(table2(), "Table 2: simulation parameters"))
    print()
    print(format_latency_table(table3(), "Table 3: cache access latencies (cycles)"))
    return 0


def _cmd_speedups(args: argparse.Namespace) -> int:
    names = _benchmarks(args.benchmarks)
    data = headline_speedups(
        l1_size_bytes=args.l1_size, benchmarks=names,
        max_instructions=args.instructions,
    )
    print(format_speedups(data))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-clgp",
        description="Cache Line Guided Prestaging reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one configuration")
    p_run.add_argument("scheme", choices=SCHEMES)
    _add_common(p_run)
    # Only `run` drives run_benchmarks directly; the figure/speedups series
    # builders do not take a jobs parameter (yet), so the flag is scoped
    # here rather than silently ignored elsewhere.
    p_run.add_argument("--jobs", type=int, default=1,
                       help="worker processes for multi-benchmark runs "
                            "(0 = all cores)")
    p_run.set_defaults(func=_cmd_run)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure's data")
    p_fig.add_argument("number", choices=["1", "2", "4", "5", "6", "7", "8"])
    _add_common(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_tab = sub.add_parser("tables", help="print Tables 1-3")
    p_tab.set_defaults(func=_cmd_tables)

    p_speed = sub.add_parser("speedups", help="print the headline speedups")
    _add_common(p_speed)
    p_speed.set_defaults(func=_cmd_speedups)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
