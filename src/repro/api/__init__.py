"""``repro.api`` -- the one front door for running anything in this toolkit.

Every experiment -- full, sampled, swept, cached, parallel -- is
submitted, observed and collected through this package:

>>> from repro.api import ExperimentSpec, Session
>>> with Session() as session:                       # doctest: +SKIP
...     result = session.run(ExperimentSpec("CLGP+L0", "gcc",
...                                         max_instructions=5000))
...     print(result.results[0].ipc)

* :class:`Session` owns execution policy (worker processes, the shared
  pool lifecycle, artifact-cache configuration, the workload registry),
* :class:`ExperimentSpec` / :class:`ExecutionOptions` are the typed,
  frozen request models,
* :meth:`Session.submit` returns a :class:`RunHandle` exposing
  ``status()``, streamed :class:`ProgressEvent`\\ s (tasks completed /
  total, per-task timing, artifact-cache hits), blocking ``result()``
  and ``cancel()``,
* ``session.figure1_series(...)`` ... ``figure8_series``,
  ``headline_speedups`` and ``ablation_series`` rebuild every paper
  figure through the same machinery (:mod:`repro.api.experiments`),
* :class:`ExecutionOptions` carries the fault-tolerance policy
  (``task_timeout``, ``max_retries``, deterministic ``faults``
  injection); failed tasks surface as typed :class:`TaskFailure`
  entries in a partial :class:`RunResult` instead of exceptions.

**v1 stability contract**: everything exported below is the supported,
versioned surface of the toolkit.  Names are only added, never removed
or repurposed, within v1; behavioural guarantees (result bit-identity
between ``jobs=1``/``jobs=N`` and sampled replay, eager spec validation,
event ordering) are part of the contract.  The pre-façade free functions
(``run_single`` and friends, ``figureN_series``, ``run_sampled``) have
completed their deprecation cycle and are gone; this façade is the only
entry point.

Re-exported building blocks (``paper_config``, ``Simulator``,
``SamplingSpec``, the report formatters, Tables 1-3, the cache
inspection helpers) are stable supporting API: the façade is also the
single import site the CLI and all ``examples/`` use.
"""

from ..analysis.metrics import (
    budget_equivalent_size,
    crossover_size,
    sampling_error_report,
    speedup_table,
)
from ..analysis.report import (
    format_ipc_sweep,
    format_key_value_table,
    format_latency_table,
    format_per_benchmark,
    format_sampling_errors,
    format_source_distribution,
    format_speedups,
)
from ..analysis.tables import table1, table2, table3
from ..cache.store import (
    cache_enabled,
    configure as configure_cache,
    get_store,
)
from ..faults import FaultPlan
from ..memory.hierarchy import FETCH_SOURCES
from ..sampling.sampled import SamplingSpec, get_selection
from ..simulator.config import SimulationConfig
from ..simulator.plan import (
    ExperimentPlan,
    PlanResults,
    SimTask,
    TaskFailure,
    TaskFailureError,
)
from ..simulator.presets import SCHEMES, paper_config, scheme_descriptions
from ..simulator.runner import get_workload, resolve_jobs
from ..simulator.simulator import Simulator
from ..simulator.stats import SimulationResult, harmonic_mean_ipc, speedup
from ..workloads.spec2000 import DEFAULT_MIX, SPECINT2000_NAMES, profile_for
from .experiments import DEFAULT_SWEEP_SIZES
from .session import (
    RUN_STATUSES,
    Progress,
    ProgressEvent,
    RunCancelled,
    RunHandle,
    RunResult,
    Session,
    default_session,
)
from .spec import DEFAULT_OPTIONS, ExecutionOptions, ExperimentSpec

__all__ = [
    # the façade itself
    "Session",
    "ExperimentSpec",
    "ExecutionOptions",
    "DEFAULT_OPTIONS",
    "RunHandle",
    "RunResult",
    "RunCancelled",
    "Progress",
    "ProgressEvent",
    "RUN_STATUSES",
    "default_session",
    # fault tolerance
    "TaskFailure",
    "TaskFailureError",
    "FaultPlan",
    # request/plan building blocks
    "ExperimentPlan",
    "PlanResults",
    "SimTask",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SamplingSpec",
    "get_selection",
    "paper_config",
    "scheme_descriptions",
    "get_workload",
    "resolve_jobs",
    "SCHEMES",
    "DEFAULT_MIX",
    "DEFAULT_SWEEP_SIZES",
    "SPECINT2000_NAMES",
    "FETCH_SOURCES",
    "profile_for",
    # aggregation / reporting
    "harmonic_mean_ipc",
    "speedup",
    "speedup_table",
    "budget_equivalent_size",
    "crossover_size",
    "sampling_error_report",
    "format_ipc_sweep",
    "format_key_value_table",
    "format_latency_table",
    "format_per_benchmark",
    "format_sampling_errors",
    "format_source_distribution",
    "format_speedups",
    "table1",
    "table2",
    "table3",
    # artifact cache inspection
    "cache_enabled",
    "configure_cache",
    "get_store",
]
