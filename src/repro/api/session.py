"""The :class:`Session` façade: submit experiments, observe run handles.

**v1 stability contract**: ``Session`` construction arguments, the
``submit``/``run`` entry points, the :class:`RunHandle` surface
(``status``/``progress``/``events``/``result``/``cancel``) and the
:class:`ProgressEvent` fields are stable.  New methods and event fields
may be added; none of the above is repurposed or removed within v1.

A session owns execution policy -- worker-process count, the shared pool
lifecycle, artifact-cache directory/enable, and the workload registry --
so callers describe experiments (:class:`~repro.api.spec.ExperimentSpec`)
instead of re-wiring jobs/cache/pool plumbing per call:

>>> from repro.api import ExperimentSpec, Session
>>> with Session(jobs=0) as session:            # doctest: +SKIP
...     handle = session.submit(ExperimentSpec("CLGP+L0", "gcc",
...                                            max_instructions=5000))
...     for event in handle.events():
...         print(event.completed, "/", event.total)
...     result = handle.result()

Submissions execute on a background thread over the one task executor
(:func:`repro.simulator.runner.iter_task_results`); handles stream
per-task progress events (count, benchmark, wall-clock seconds, artifact
cache hits), block on :meth:`RunHandle.result`, and can be cancelled.
Submissions whose effective cache/fault policy is identical run
concurrently (the shared pool and the workers' in-memory caches are
reused across them); conflicting policy scopes take turns.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..cache.results import (
    configure_result_cache,
    restore_result_configuration,
    snapshot_result_configuration,
)
from ..cache.store import configure, restore_configuration, snapshot_configuration
from ..faults import configure_faults, restore_faults, snapshot_faults
from ..simulator.plan import ExperimentPlan, PlanResults, SimTask, TaskFailure
from ..simulator.runner import (
    get_workload,
    iter_task_results,
    resolve_jobs,
    shutdown_pool,
)
from ..workloads.spec2000 import SPECINT2000_NAMES
from ..workloads.trace import Workload
from .spec import DEFAULT_OPTIONS, ExecutionOptions, ExperimentSpec

#: Handle states; ``done``/``failed``/``cancelled`` are terminal.
RUN_STATUSES = ("queued", "running", "done", "failed", "cancelled")


class _ExecutionGate:
    """Admission control for executions sharing process-global policy.

    The artifact-store / result-cache / fault configuration behind every
    execution is process-level state, so executions whose *effective*
    policy differs must not overlap -- but executions with an identical
    policy scope (the same cache dir/enable, result-cache and fault
    overrides) can run concurrently: the configuration they would apply
    is the same.  This gate therefore admits any number of executions of
    one policy scope at a time and serializes across scopes, which is
    what lets many :class:`Session` submissions (and the experiment
    service built on them) keep >=2 runs in flight.

    The scope's configuration is applied exactly once -- when the first
    execution of a scope enters -- and the pre-scope state is restored
    when the last one leaves, so a finishing execution can never revert
    the store out from under a still-running sibling.

    The gate also speaks the lock protocol (``with gate:`` /
    ``acquire``/``release``): an exclusive hold keeps *all* executions
    out, which :meth:`Session.close` uses to wait for in-flight runs and
    tests use to hold submissions queued.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active = 0
        self._scope: Optional[tuple] = None
        self._restore: Optional[Callable[[], None]] = None
        self._exclusive = 0
        #: Exclusive acquirers currently blocked in :meth:`acquire`.
        #: ``enter_scope`` waits on this too (writer preference): a
        #: steady stream of same-scope submissions -- exactly the
        #: experiment-service workload -- must not starve ``close()``
        #: or a cross-scope execution waiting its turn.
        self._exclusive_waiting = 0

    # -- lock protocol (exclusive: no execution may be inside) ---------
    def acquire(self) -> bool:
        with self._cond:
            self._exclusive_waiting += 1
            try:
                while self._active or self._exclusive:
                    self._cond.wait()
                self._exclusive += 1
            finally:
                self._exclusive_waiting -= 1
                self._cond.notify_all()
        return True

    def release(self) -> None:
        with self._cond:
            self._exclusive -= 1
            self._cond.notify_all()

    def __enter__(self) -> "_ExecutionGate":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    # -- shared, policy-scoped entry -----------------------------------
    def enter_scope(self, scope: tuple,
                    apply: Callable[[], Optional[Callable[[], None]]]) -> None:
        """Join ``scope``, waiting out exclusive holders and executions
        of any *other* scope.  ``apply`` runs (under the gate) only for
        the first execution of the scope and returns the restore
        callback invoked when the last execution leaves."""
        with self._cond:
            while self._exclusive or self._exclusive_waiting \
                    or (self._active and self._scope != scope):
                self._cond.wait()
            if self._active == 0:
                self._scope = scope
                try:
                    self._restore = apply()
                except BaseException:
                    self._scope = None
                    self._cond.notify_all()
                    raise
            self._active += 1

    def leave_scope(self) -> None:
        with self._cond:
            self._active -= 1
            if self._active == 0:
                restore, self._restore = self._restore, None
                self._scope = None
                if restore is not None:
                    restore()
                self._cond.notify_all()

    def idle(self) -> bool:
        """Whether no execution is currently inside the gate."""
        with self._cond:
            return self._active == 0


#: The process-wide gate every execution passes through: identical
#: cache-policy scopes overlap, conflicting scopes serialize.
_EXECUTION_GATE = _ExecutionGate()


class RunCancelled(RuntimeError):
    """Raised by :meth:`RunHandle.result` after a successful cancel."""


@dataclass(frozen=True)
class ProgressEvent:
    """One observation of a run's progress.

    ``kind`` is ``"submitted"``, ``"started"``, ``"task"`` (one finished
    simulation; carries ``benchmark``/``key``/``seconds``/``cache_hits``/
    ``result_cache_hits``), ``"task-failed"`` (a task the supervised
    executor gave up on; carries ``error`` and counts toward
    ``completed``), or the terminal ``"done"``/``"failed"``/
    ``"cancelled"``.  ``completed`` counts finished tasks and is
    monotonically non-decreasing across a handle's event stream.
    ``cache_hits`` counts ordinary artifact-store reads (traces,
    warm-ups, checkpoints, ...); ``result_cache_hits`` counts full-run
    **result replays** -- tasks whose complete ``SimulationResult`` came
    off disk with no simulation at all -- and is reported distinctly so
    consumers can tell "warm artifacts" from "did not simulate".
    ``retries`` is how many times the task had to be re-dispatched
    (worker loss, in-task error) before this completion.
    ``tasks_per_second``/``eta_seconds`` are the run-rate estimate and
    remaining-time projection derived from completed-task timings
    (``None`` until the first task finishes); the experiment service
    streams them over SSE so clients can render progress bars without
    their own bookkeeping.
    """

    kind: str
    completed: int
    total: int
    benchmark: Optional[str] = None
    key: Optional[tuple] = None
    seconds: Optional[float] = None
    cache_hits: Optional[int] = None
    result_cache_hits: Optional[int] = None
    retries: Optional[int] = None
    error: Optional[str] = None
    tasks_per_second: Optional[float] = None
    eta_seconds: Optional[float] = None


class Progress(tuple):
    """``(completed, total)`` plus run-rate estimates.

    Unpacks and compares exactly like the plain 2-tuple
    :meth:`RunHandle.progress` has always returned;
    :attr:`tasks_per_second` and :attr:`eta_seconds` ride along as
    attributes (``None`` until the first task completes).
    """

    def __new__(cls, completed: int, total: int,
                tasks_per_second: Optional[float] = None,
                eta_seconds: Optional[float] = None) -> "Progress":
        self = tuple.__new__(cls, (completed, total))
        self.tasks_per_second = tasks_per_second
        self.eta_seconds = eta_seconds
        return self

    @property
    def completed(self) -> int:
        return self[0]

    @property
    def total(self) -> int:
        return self[1]


@dataclass
class RunResult(PlanResults):
    """An executed submission: aligned tasks/results plus run metadata.

    Inherits the regrouping helpers (``by_key``, ``hmean_by_key``,
    iteration in task order) from :class:`PlanResults`.  A run whose
    tasks exhausted their retry budget is **partial**, not an error:
    failed slots hold typed :class:`TaskFailure` values (also listed by
    :attr:`failed_tasks`), and the aggregation helpers skip them.
    """

    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    #: Tasks answered by a full-run result replay (no simulation ran).
    result_cache_hits: int = 0
    #: Total task re-dispatches the supervisor performed (worker loss,
    #: in-task errors) across the whole run.
    task_retries: int = 0

    @property
    def failed_tasks(self) -> List[TaskFailure]:
        """Tasks that exhausted the retry budget (alias of ``failures``)."""
        return self.failures


class RunHandle:
    """Observable handle for one submitted experiment plan.

    Returned by :meth:`Session.submit`; thread-safe.  ``events()`` is a
    single-consumer stream (each event is delivered once); the complete
    log remains available as :attr:`event_log` afterwards.
    """

    def __init__(self, session: "Session", plan: ExperimentPlan,
                 options: ExecutionOptions, jobs: int) -> None:
        self._session = session
        self._plan = plan
        self._options = options
        self._jobs = jobs
        self._status = "queued"
        self._completed = 0
        self._total = len(plan)
        self._tasks_per_second: Optional[float] = None
        self._eta_seconds: Optional[float] = None
        self._result: Optional[RunResult] = None
        self._error: Optional[BaseException] = None
        # Reentrant: listeners run under the lock (so late attachers can
        # replay the log without missing or duplicating events) and may
        # themselves call cancel(), which takes the lock again.
        self._lock = threading.RLock()
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._queue: "queue.Queue[Optional[ProgressEvent]]" = queue.Queue()
        self._listeners: List[Callable[[ProgressEvent], None]] = []
        #: Every event emitted so far, in emission order.
        self.event_log: List[ProgressEvent] = []

    # -- observation ------------------------------------------------------
    @property
    def plan(self) -> ExperimentPlan:
        return self._plan

    def status(self) -> str:
        """One of :data:`RUN_STATUSES`."""
        return self._status

    def progress(self) -> "Progress":
        """``(tasks completed, tasks total)``, as a :class:`Progress`
        carrying ``tasks_per_second``/``eta_seconds`` estimates."""
        return Progress(self._completed, self._total,
                        self._tasks_per_second, self._eta_seconds)

    def add_listener(self, listener: Callable[[ProgressEvent], None]) -> None:
        """Invoke ``listener(event)`` for every event of the run.

        Events emitted before the listener attached are replayed to it
        immediately (in order), so late attachers see the complete
        stream exactly once; subsequent events are delivered from the
        executor thread, synchronously between tasks.
        """
        with self._lock:
            for event in self.event_log:
                listener(event)
            self._listeners.append(listener)

    def events(self) -> Iterator[ProgressEvent]:
        """Yield progress events as they arrive, ending after the
        terminal event.  Single consumer; see :attr:`event_log` for the
        full history."""
        while True:
            event = self._queue.get()
            if event is None:
                return
            yield event

    # -- completion -------------------------------------------------------
    def result(self, timeout: Optional[float] = None) -> RunResult:
        """Block until the run finishes and return its :class:`RunResult`.

        Raises :class:`TimeoutError` if ``timeout`` elapses first,
        :class:`RunCancelled` if the run was cancelled, or the original
        exception if the run failed.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"run {self._plan.name!r} still {self._status} "
                f"after {timeout}s")
        if self._status == "cancelled":
            raise RunCancelled(f"run {self._plan.name!r} was cancelled")
        if self._error is not None:
            raise self._error
        return self._result

    def cancel(self) -> bool:
        """Request cancellation; returns ``False`` if already finished.

        Queued runs never start; running ones stop at the next task
        boundary (pool runs additionally tear down outstanding chunks).
        """
        with self._lock:
            if self._done.is_set():
                return False
            self._cancel.set()
            return True

    # -- executor side ----------------------------------------------------
    def _emit(self, kind: str, **fields) -> None:
        event = ProgressEvent(kind=kind, completed=self._completed,
                              total=self._total, **fields)
        with self._lock:
            self.event_log.append(event)
            self._queue.put(event)
            listeners = list(self._listeners)
        for listener in listeners:
            listener(event)
        if kind in ("done", "failed", "cancelled"):
            self._queue.put(None)   # wake events() consumers

    def _finish(self, status: str) -> None:
        with self._lock:
            self._status = status
            self._done.set()
        self._emit(status)


class Session:
    """One front door for running experiments; usable as a context manager.

    Owns the execution policy every submission inherits:

    * ``jobs`` -- worker processes for the simulation grid (``0``/``None``
      = all cores, ``1`` = inline).  The shared multiprocessing pool is
      reused across submissions and torn down by :meth:`close` /
      ``__exit__``.
    * ``cache_dir`` / ``cache`` -- artifact-cache root and enable flag;
      applied for the session's lifetime and restored on close
      (``None`` inherits environment/defaults).
    * the workload registry -- :meth:`workload` builds (once per process)
      and returns any registered synthetic benchmark.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 cache: Optional[bool] = None) -> None:
        resolve_jobs(jobs)   # validate eagerly (0/None = all cores)
        self._jobs = jobs
        self._closed = False
        self._used_pool = False
        # Executions pass through the process-wide gate: submissions
        # whose effective cache/result-cache/fault policy is identical
        # run concurrently (the server's scheduler needs >=2 in-flight
        # runs); only *conflicting* policy scopes serialize, so one
        # session can never redirect another's store mid-run.  An
        # exclusive hold of the gate (``with session._exec_lock:``)
        # still keeps every execution out.
        self._exec_lock = _EXECUTION_GATE
        self._cache_dir = cache_dir
        self._cache = cache
        self._cache_snapshot = None
        if cache_dir is not None or cache is not None:
            # Apply eagerly so ambient reads inside `with Session(...)`
            # (e.g. `repro-clgp cache ls --cache-dir X`) see the
            # session's store; every execution re-applies these settings
            # itself, so a concurrently-constructed session cannot
            # redirect this session's runs.
            self._cache_snapshot = snapshot_configuration()
            configure(cache_dir=cache_dir, enabled=cache)

    # -- lifecycle --------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def jobs(self) -> int:
        return self._jobs

    def close(self) -> None:
        """Finish outstanding submissions, shut the shared pool down (if
        this session fanned out and no other session is mid-run), and
        restore the cache configuration."""
        if self._closed:
            return
        with self._exec_lock:   # exclusive: wait for running executions
            self._closed = True
        if self._used_pool and self._exec_lock.idle():
            # Another session's concurrent run may still be fanned out
            # over the shared pool; leave it alive for them (atexit
            # reaps it) instead of tearing their sweep down.
            shutdown_pool()
        if self._cache_snapshot is not None:
            restore_configuration(self._cache_snapshot)
            self._cache_snapshot = None

    # -- observability ------------------------------------------------------
    def cache_counters(self) -> Dict[str, object]:
        """This process's cache/supervision counters as a JSON-able dict.

        One machine-readable surface (the CLI's ``cache stats --json``)
        over the artifact store (:class:`~repro.cache.store.StoreStats`,
        plus the store's location, per-kind contents and last ``fsck``
        report when one ran), result replay and the supervised
        executor -- so CI jobs and service probes can assert on counters
        instead of scraping human-formatted output.
        """
        import dataclasses

        from ..cache.results import RESULT_CACHE_STATS
        from ..cache.store import cache_enabled, get_store
        from ..simulator.runner import supervisor_stats

        store = get_store()
        return {
            "store": {
                "root": str(store.root),
                "schema_version": store.version,
                "enabled": cache_enabled(),
                "read_only": store.read_only(),
                "total_bytes": store.total_size(),
                "kinds": {kind: {"files": count, "bytes": size}
                          for kind, (count, size)
                          in sorted(store.describe().items())},
                **dataclasses.asdict(store.stats),
            },
            "result_cache": dataclasses.asdict(RESULT_CACHE_STATS),
            "supervision": dataclasses.asdict(supervisor_stats()),
            "fsck": (store.last_fsck.as_dict()
                     if store.last_fsck is not None else None),
        }

    # -- workload registry --------------------------------------------------
    def workloads(self) -> Tuple[str, ...]:
        """Names of every registered synthetic benchmark."""
        return tuple(SPECINT2000_NAMES)

    def workload(self, name: str) -> Workload:
        """Build (or fetch from the per-process cache) one benchmark."""
        return get_workload(name)

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        spec: Union[ExperimentSpec, ExperimentPlan],
        options: Optional[ExecutionOptions] = None,
    ) -> RunHandle:
        """Submit a spec (or a hand-built plan) for execution.

        Returns immediately with a :class:`RunHandle`; execution happens
        on a background thread, concurrently with other submissions that
        share the same cache/fault policy (conflicting policies take
        turns through the process-wide execution gate).
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if options is None:
            options = DEFAULT_OPTIONS
        if isinstance(spec, ExperimentSpec):
            plan = spec.to_plan(sampled=options.sampled,
                                sampling=options.sampling)
        elif isinstance(spec, ExperimentPlan):
            plan = spec
        else:
            raise TypeError(
                "submit() takes an ExperimentSpec or an ExperimentPlan, "
                f"not {type(spec).__name__}")
        jobs = resolve_jobs(self._jobs if options.jobs is None
                            else options.jobs)
        plan = self._with_interval_jobs(plan, options, jobs)
        if jobs > 1 and len(plan) > 1:
            self._used_pool = True
        handle = RunHandle(self, plan, options, jobs)
        handle._emit("submitted")
        thread = threading.Thread(
            target=self._execute, args=(handle,),
            name=f"repro-api-{plan.name or 'run'}", daemon=True,
        )
        thread.start()
        return handle

    def _with_interval_jobs(self, plan: ExperimentPlan,
                            options: ExecutionOptions,
                            jobs: int) -> ExperimentPlan:
        """Stamp the effective intra-run worker count onto sampled tasks.

        ``options.interval_jobs`` wins when set (``0`` = all cores);
        ``None`` inherits the submission's effective ``jobs`` for
        single-task plans -- the one shape where outer task parallelism
        cannot use the workers, so a sampled run's segments fan out
        instead (this is how one service request scales with the
        server's ``--parallel``).  Multi-task plans stay serial inside
        each task by default: their parallelism is across tasks.
        """
        import dataclasses

        interval_jobs = options.interval_jobs
        if interval_jobs is None:
            if len(plan.tasks) != 1:
                return plan
            interval_jobs = jobs
        else:
            interval_jobs = resolve_jobs(interval_jobs)
        if interval_jobs <= 1 or not any(
                isinstance(task, SimTask) and task.sampled
                and task.interval_jobs is None for task in plan.tasks):
            return plan
        self._used_pool = True
        return ExperimentPlan(plan.name, [
            dataclasses.replace(task, interval_jobs=interval_jobs)
            if isinstance(task, SimTask) and task.sampled
            and task.interval_jobs is None else task
            for task in plan.tasks
        ])

    def run(
        self,
        spec: Union[ExperimentSpec, ExperimentPlan],
        options: Optional[ExecutionOptions] = None,
    ) -> RunResult:
        """Submit and block: ``submit(spec, options).result()``."""
        return self.submit(spec, options=options).result()

    # -- paper experiments (see repro.api.experiments for shapes) ---------
    def figure1_series(self, **kwargs) -> Dict[str, Dict[int, float]]:
        from . import experiments
        return experiments.figure1_series(self, **kwargs)

    def figure2_series(self, **kwargs) -> Dict[str, Dict[int, float]]:
        from . import experiments
        return experiments.figure2_series(self, **kwargs)

    def figure4_series(self, **kwargs) -> Dict[str, Dict[int, float]]:
        from . import experiments
        return experiments.figure4_series(self, **kwargs)

    def figure5_series(self, **kwargs) -> Dict[str, Dict[int, float]]:
        from . import experiments
        return experiments.figure5_series(self, **kwargs)

    def figure6_series(self, **kwargs) -> Dict[str, Dict[str, float]]:
        from . import experiments
        return experiments.figure6_series(self, **kwargs)

    def figure7_series(self, with_l0: bool, **kwargs):
        from . import experiments
        return experiments.figure7_series(self, with_l0, **kwargs)

    def figure8_series(self, **kwargs):
        from . import experiments
        return experiments.figure8_series(self, **kwargs)

    def headline_speedups(self, **kwargs) -> Dict[str, Dict[str, float]]:
        from . import experiments
        return experiments.headline_speedups(self, **kwargs)

    def ablation_series(self, **kwargs) -> Dict[str, float]:
        from . import experiments
        return experiments.ablation_series(self, **kwargs)

    # -- executor -----------------------------------------------------------
    def _execute(self, handle: RunHandle) -> None:
        import time

        options = handle._options
        # The policy scope is everything this execution would apply to
        # the process-global configuration: session cache settings,
        # per-call overrides, result-replay policy and chaos plan.
        # Identical scopes share the gate (and hence run concurrently);
        # conflicting scopes take turns.
        scope = (self._cache_dir, self._cache, options.cache_dir,
                 options.cache, options.result_cache, options.faults)

        def apply() -> Optional[Callable[[], None]]:
            # Runs once, for the first execution of the scope; the
            # returned restore hook runs when the last one leaves, so a
            # finishing sibling can never revert the store mid-run.
            if all(value is None for value in scope):
                return None
            cache_snapshot = snapshot_configuration()
            result_snapshot = snapshot_result_configuration()
            faults_snapshot = snapshot_faults()
            if self._cache_dir is not None or self._cache is not None:
                configure(cache_dir=self._cache_dir, enabled=self._cache)
            if options.cache_dir is not None or options.cache is not None:
                configure(cache_dir=options.cache_dir,
                          enabled=options.cache)
            if options.result_cache is not None:
                configure_result_cache(options.result_cache)
            if options.faults is not None:
                configure_faults(options.faults)

            def restore() -> None:
                restore_faults(faults_snapshot)
                restore_result_configuration(result_snapshot)
                restore_configuration(cache_snapshot)

            return restore

        self._exec_lock.enter_scope(scope, apply)
        try:
            if handle._cancel.is_set():
                handle._finish("cancelled")
                return
            if self._closed:
                handle._error = RuntimeError(
                    "session closed before the run started")
                handle._finish("failed")
                return
            handle._status = "running"
            handle._emit("started")
            tasks = handle._plan.tasks
            results = [None] * len(tasks)
            start = time.perf_counter()
            hits = 0
            result_hits = 0
            retries = 0
            try:
                for completion in iter_task_results(
                        tasks, jobs=handle._jobs, cancel=handle._cancel,
                        task_timeout=options.task_timeout,
                        max_retries=options.max_retries):
                    results[completion.index] = completion.result
                    hits += completion.cache_hits
                    result_hits += completion.result_cache_hits
                    retries += completion.retries
                    handle._completed += 1
                    elapsed = time.perf_counter() - start
                    if elapsed > 0:
                        rate = handle._completed / elapsed
                        handle._tasks_per_second = rate
                        handle._eta_seconds = \
                            (handle._total - handle._completed) / rate
                    task = tasks[completion.index]
                    if completion.failed:
                        failure = completion.result
                        handle._emit(
                            "task-failed",
                            benchmark=failure.benchmark,
                            key=failure.key,
                            retries=completion.retries,
                            error=f"{failure.kind}: {failure.message}",
                            tasks_per_second=handle._tasks_per_second,
                            eta_seconds=handle._eta_seconds,
                        )
                        continue
                    handle._emit(
                        "task",
                        benchmark=task.benchmark if hasattr(
                            task, "benchmark") else task[1],
                        key=getattr(task, "key", None),
                        seconds=completion.seconds,
                        cache_hits=completion.cache_hits,
                        result_cache_hits=completion.result_cache_hits,
                        retries=completion.retries,
                        tasks_per_second=handle._tasks_per_second,
                        eta_seconds=handle._eta_seconds,
                    )
                if handle._cancel.is_set():
                    handle._finish("cancelled")
                    return
                handle._eta_seconds = 0.0
                handle._result = RunResult(
                    tasks=list(tasks),
                    results=results,
                    elapsed_seconds=time.perf_counter() - start,
                    cache_hits=hits,
                    result_cache_hits=result_hits,
                    task_retries=retries,
                )
                handle._finish("done")
            except BaseException as exc:   # surfaced via handle.result()
                handle._error = exc
                handle._finish("failed")
        finally:
            self._exec_lock.leave_scope()


# ----------------------------------------------------------------------
# the default session
# ----------------------------------------------------------------------
_DEFAULT: Optional[Session] = None
_DEFAULT_LOCK = threading.Lock()


def default_session() -> Session:
    """The process-wide default :class:`Session` (inline execution, no
    cache overrides) for callers that do not manage a session of their
    own."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None or _DEFAULT.closed:
            _DEFAULT = Session()
        return _DEFAULT
