"""Paper-experiment builders over the :class:`~repro.api.session.Session`
façade.

**v1 stability contract**: the function names, keyword arguments and
returned shapes below are stable; they are also exposed as ``Session``
methods (``session.figure5_series(...)``), which is the supported call
form.

Each builder declares its simulations as a flat
:class:`~repro.simulator.plan.ExperimentPlan`, runs it through
``session.run`` (inheriting the session's jobs/pool/cache policy, with
per-call :class:`~repro.api.spec.ExecutionOptions` overrides), and
regroups the results into plain dictionaries shaped like the figure:

* Figures 1, 2(b), 4(b), 5(a), 5(b): ``{scheme: {l1_size: hmean_ipc}}``
* Figure 6: ``{benchmark: {scheme: ipc}}``
* Figures 7(a), 7(b), 8: ``{scheme: {l1_size: {source: fraction}}}``
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..simulator.plan import ExperimentPlan, TaskFailureError
from ..simulator.presets import (
    FIGURE1_SCHEMES,
    FIGURE5_SCHEMES,
    FIGURE6_SCHEMES,
    paper_config,
)
from ..simulator.stats import (
    aggregate_fetch_sources,
    aggregate_prefetch_sources,
    harmonic_mean_ipc,
)
from ..workloads.spec2000 import DEFAULT_MIX, SPECINT2000_NAMES
from .spec import ExecutionOptions, ExperimentSpec

#: Default (reduced) L1 size sweep used when the caller does not override
#: it; the paper sweeps nine sizes from 256 B to 64 KB.
DEFAULT_SWEEP_SIZES: Sequence[int] = (256, 1024, 4096, 16384, 65536)


def _run_complete(session, work, options):
    """Run a spec/plan and insist on a complete result set.

    Figure series and speedup tables are aggregates (harmonic means,
    source-fraction averages): a silently missing task would not make
    them partial, it would make them *wrong*.  Unlike ``session.run``'s
    partial-result contract, builders therefore raise
    :class:`TaskFailureError` when any task exhausted its retry budget.
    """
    result = session.run(work, options=options)
    if result.failures:
        raise TaskFailureError(result.failures)
    return result


def _sweep_spec(
    name: str,
    schemes: Sequence[str],
    technology: object,
    l1_sizes: Optional[Sequence[int]],
    benchmarks: Optional[Sequence[str]],
    max_instructions: int,
) -> ExperimentSpec:
    return ExperimentSpec(
        scheme=tuple(schemes),
        benchmarks=tuple(benchmarks or DEFAULT_MIX),
        max_instructions=max_instructions,
        technology=technology,
        l1_sizes=tuple(l1_sizes or DEFAULT_SWEEP_SIZES),
        name=name,
    )


def _scheme_sweep(
    session,
    name: str,
    schemes: Sequence[str],
    technology: object,
    l1_sizes: Optional[Sequence[int]],
    benchmarks: Optional[Sequence[str]],
    max_instructions: int,
    options: Optional[ExecutionOptions],
) -> Dict[str, Dict[int, float]]:
    """Harmonic-mean IPC for each scheme at each L1 size."""
    spec = _sweep_spec(name, schemes, technology, l1_sizes, benchmarks,
                       max_instructions)
    series: Dict[str, Dict[int, float]] = {s: {} for s in spec.schemes}
    for (scheme, size), hmean in _run_complete(
            session, spec, options).hmean_by_key().items():
        series[scheme][size] = hmean
    return series


# ----------------------------------------------------------------------
# Figure 1: effect of the L1 I-cache latency (no prefetching)
# ----------------------------------------------------------------------
def figure1_series(
    session,
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, Dict[int, float]]:
    return _scheme_sweep(session, "figure1", FIGURE1_SCHEMES, technology,
                         l1_sizes, benchmarks, max_instructions, options)


# ----------------------------------------------------------------------
# Figure 2(b): FDP with and without an L0 cache
# ----------------------------------------------------------------------
def figure2_series(
    session,
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, Dict[int, float]]:
    return _scheme_sweep(session, "figure2", ("FDP", "FDP+L0"), technology,
                         l1_sizes, benchmarks, max_instructions, options)


# ----------------------------------------------------------------------
# Figure 4(b): CLGP with and without an L0 cache
# ----------------------------------------------------------------------
def figure4_series(
    session,
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, Dict[int, float]]:
    return _scheme_sweep(session, "figure4", ("CLGP", "CLGP+L0"), technology,
                         l1_sizes, benchmarks, max_instructions, options)


# ----------------------------------------------------------------------
# Figure 5: the six main configurations at both technology nodes
# ----------------------------------------------------------------------
def figure5_series(
    session,
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, Dict[int, float]]:
    return _scheme_sweep(session, "figure5", FIGURE5_SCHEMES, technology,
                         l1_sizes, benchmarks, max_instructions, options)


# ----------------------------------------------------------------------
# Figure 6: per-benchmark IPC for the best configurations (8KB, 0.045um)
# ----------------------------------------------------------------------
def figure6_series(
    session,
    technology: object = "0.045um",
    l1_size_bytes: int = 8192,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, Dict[str, float]]:
    names = list(benchmarks or SPECINT2000_NAMES)
    spec = ExperimentSpec(
        scheme=FIGURE6_SCHEMES,
        benchmarks=tuple(names),
        max_instructions=max_instructions,
        technology=technology,
        l1_size_bytes=l1_size_bytes,
        name="figure6",
    )
    out: Dict[str, Dict[str, float]] = {name: {} for name in names}
    hmean: Dict[str, float] = {}
    for (scheme,), results in _run_complete(
            session, spec, options).by_key().items():
        for result in results:
            out[result.workload][scheme] = result.ipc
        hmean[scheme] = harmonic_mean_ipc(results)
    out["HMEAN"] = hmean
    return out


# ----------------------------------------------------------------------
# Figure 7: fetch-source distribution (FDP vs CLGP, with/without L0)
# ----------------------------------------------------------------------
def figure7_series(
    session,
    with_l0: bool,
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    schemes = ("FDP+L0", "CLGP+L0") if with_l0 else ("FDP", "CLGP")
    spec = _sweep_spec("figure7", schemes, technology, l1_sizes, benchmarks,
                       max_instructions)
    out: Dict[str, Dict[int, Dict[str, float]]] = {s: {} for s in schemes}
    for (scheme, size), results in _run_complete(
            session, spec, options).by_key().items():
        out[scheme][size] = aggregate_fetch_sources(results)
    return out


# ----------------------------------------------------------------------
# Figure 8: prefetch-source distribution (FDP vs CLGP)
# ----------------------------------------------------------------------
def figure8_series(
    session,
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    schemes = ("FDP", "CLGP")
    spec = _sweep_spec("figure8", schemes, technology, l1_sizes, benchmarks,
                       max_instructions)
    out: Dict[str, Dict[int, Dict[str, float]]] = {s: {} for s in schemes}
    for (scheme, size), results in _run_complete(
            session, spec, options).by_key().items():
        out[scheme][size] = aggregate_prefetch_sources(results)
    return out


# ----------------------------------------------------------------------
# Headline speedups (Section 5.1)
# ----------------------------------------------------------------------
def headline_speedups(
    session,
    l1_size_bytes: int = 4096,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, Dict[str, float]]:
    """CLGP-vs-FDP and CLGP-vs-pipelined-baseline speedups at both nodes.

    Returns ``{tech_name: {"clgp_over_fdp": x, "clgp_over_base_pipelined": y,
    "ipc": {scheme: ipc}}}``.
    """
    names = list(benchmarks or DEFAULT_MIX)
    schemes = ("CLGP+L0+PB16", "FDP+L0+PB16", "base-pipelined")
    plan = ExperimentPlan("headline-speedups")
    sampled = options.sampled if options is not None else False
    sampling = options.sampling if options is not None else None
    for technology in ("0.09um", "0.045um"):
        for scheme in schemes:
            config = paper_config(
                scheme, l1_size_bytes=l1_size_bytes, technology=technology,
                max_instructions=max_instructions,
            )
            for benchmark in names:
                plan.add(config, benchmark, max_instructions,
                         key=(technology, scheme),
                         sampled=sampled, sampling=sampling)
    ipc_by_key = _run_complete(session, plan, options).hmean_by_key()
    out: Dict[str, Dict[str, float]] = {}
    for technology in ("0.09um", "0.045um"):
        ipc = {scheme: ipc_by_key[(technology, scheme)] for scheme in schemes}
        out[technology] = {
            "clgp_over_fdp": ipc["CLGP+L0+PB16"] / ipc["FDP+L0+PB16"] - 1.0
            if ipc["FDP+L0+PB16"] else 0.0,
            "clgp_over_base_pipelined":
                ipc["CLGP+L0+PB16"] / ipc["base-pipelined"] - 1.0
                if ipc["base-pipelined"] else 0.0,
            "ipc": ipc,
        }
    return out


# ----------------------------------------------------------------------
# CLGP design-choice ablations (DESIGN.md section 5)
# ----------------------------------------------------------------------
def ablation_series(
    session,
    technology: object = "0.045um",
    l1_size_bytes: int = 4096,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, float]:
    """Harmonic-mean IPC of CLGP+L0 with individual design choices reverted."""
    names = list(benchmarks or DEFAULT_MIX)
    variants = {
        "CLGP+L0 (full)": {},
        "CLGP+L0 free-on-use": {"clgp_free_on_use": True},
        "CLGP+L0 copy-to-cache": {"clgp_copy_to_cache": True},
        "CLGP+L0 with filtering": {"clgp_use_filtering": True},
        "FDP+L0 (reference)": None,
    }
    plan = ExperimentPlan("ablations")
    for label, overrides in variants.items():
        if overrides is None:
            config = paper_config(
                "FDP+L0", l1_size_bytes=l1_size_bytes, technology=technology,
                max_instructions=max_instructions,
            )
        else:
            config = paper_config(
                "CLGP+L0", l1_size_bytes=l1_size_bytes, technology=technology,
                max_instructions=max_instructions, **overrides,
            )
        for benchmark in names:
            plan.add(config, benchmark, max_instructions, key=(label,))
    return {
        key[0]: hmean
        for key, hmean in _run_complete(
            session, plan, options).hmean_by_key().items()
    }
