"""One helper for the toolkit's deprecation story.

Every pre-façade entry point (free-function runners, figure builders,
``run_sampled``) still works but funnels through :func:`warn_legacy`, so
each emits one ``DeprecationWarning`` naming its :mod:`repro.api`
replacement.  ``stacklevel=3`` points the warning at the *caller* of the
shim, not the shim body.
"""

from __future__ import annotations

import warnings


def warn_legacy(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for a legacy entry point."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead "
        "(the repro.api Session facade is the supported entry point)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
