"""Typed, frozen request models for the :mod:`repro.api` façade.

**v1 stability contract**: the fields and validation behaviour of
:class:`ExperimentSpec` and :class:`ExecutionOptions` are stable -- new
fields may be added with backwards-compatible defaults, existing fields
are never repurposed or removed within v1.

An :class:`ExperimentSpec` says *what* to run: one or more preset schemes
(see :data:`repro.simulator.presets.SCHEMES`), the benchmarks, the
instruction budget, the technology node, and optionally an L1-size sweep
axis.  An :class:`ExecutionOptions` says *how*: worker processes, sampled
vs full simulation, and per-call artifact-cache overrides.  Both are
frozen (hashable, picklable) and validate eagerly -- a bad spec raises
``ValueError`` at construction, not from inside a worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple, Union

from ..faults import FaultPlan, resolve_plan
from ..simulator.plan import ExperimentPlan
from ..simulator.presets import SCHEMES, paper_config
from ..workloads.spec2000 import DEFAULT_MIX, SPECINT2000_NAMES, profile_for


#: Default benchmark mix (frozen copy of the workloads layer's default).
DEFAULT_BENCHMARKS: Tuple[str, ...] = tuple(DEFAULT_MIX)


def _normalize_names(value: Union[str, Sequence[str]]) -> Tuple[str, ...]:
    """One name, ``"all"``, or a sequence of names -> validated tuple."""
    if isinstance(value, str):
        if value.strip().lower() == "all":
            return tuple(SPECINT2000_NAMES)
        value = (value,)
    names = tuple(value)
    if not names:
        raise ValueError("at least one benchmark is required")
    for name in names:
        try:
            profile_for(name)
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from exc
    return names


@dataclass(frozen=True)
class ExperimentSpec:
    """What to run: a (scheme x L1 size x benchmark) grid.

    ``scheme`` accepts one preset name or a sequence of them;
    ``benchmarks`` accepts one name, a sequence, or ``"all"`` for the
    full SPECint2000 list.  ``l1_sizes`` is the optional sweep axis --
    when ``None`` the single ``l1_size_bytes`` design point is used.
    ``config_overrides`` forwards extra :class:`SimulationConfig` fields
    (e.g. ``warmup_instructions``) to every generated configuration.

    Tasks are keyed ``(scheme, l1_size)`` for sweeps and ``(scheme,)``
    otherwise, so ``RunResult.by_key()``/``hmean_by_key()`` regroup the
    grid without bookkeeping on the caller's side.
    """

    scheme: Union[str, Tuple[str, ...]]
    benchmarks: Union[str, Tuple[str, ...]] = DEFAULT_BENCHMARKS
    max_instructions: int = 20_000
    technology: object = "0.045um"
    l1_sizes: Optional[Tuple[int, ...]] = None
    l1_size_bytes: int = 4096
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        schemes = ((self.scheme,) if isinstance(self.scheme, str)
                   else tuple(self.scheme))
        if not schemes:
            raise ValueError("at least one scheme is required")
        for scheme in schemes:
            if scheme not in SCHEMES:
                raise ValueError(
                    f"unknown scheme {scheme!r}; choose from {SCHEMES}")
        object.__setattr__(self, "scheme", schemes)
        object.__setattr__(self, "benchmarks",
                           _normalize_names(self.benchmarks))
        if not isinstance(self.max_instructions, int) \
                or self.max_instructions < 1:
            raise ValueError("max_instructions must be a positive integer")
        if self.l1_sizes is not None:
            sizes = tuple(self.l1_sizes)
            if not sizes or any(
                    not isinstance(s, int) or s < 1 for s in sizes):
                raise ValueError("l1_sizes must be positive integers")
            object.__setattr__(self, "l1_sizes", sizes)
        if not isinstance(self.l1_size_bytes, int) or self.l1_size_bytes < 1:
            raise ValueError("l1_size_bytes must be a positive integer")
        if isinstance(self.config_overrides, Mapping):
            object.__setattr__(
                self, "config_overrides",
                tuple(sorted(self.config_overrides.items())))
        else:
            object.__setattr__(
                self, "config_overrides", tuple(self.config_overrides))

    @property
    def schemes(self) -> Tuple[str, ...]:
        """The normalized scheme tuple (``scheme`` accepts one or many)."""
        return self.scheme  # normalized to a tuple in __post_init__

    def to_plan(self, sampled: bool = False,
                sampling: Optional[object] = None) -> ExperimentPlan:
        """Expand the grid into a flat, typed :class:`ExperimentPlan`."""
        plan = ExperimentPlan(self.name or "experiment-spec")
        overrides = dict(self.config_overrides)
        sweep = self.l1_sizes is not None
        for scheme in self.schemes:
            for size in (self.l1_sizes if sweep else (self.l1_size_bytes,)):
                config = paper_config(
                    scheme,
                    l1_size_bytes=size,
                    technology=self.technology,
                    max_instructions=self.max_instructions,
                    **overrides,
                )
                key = (scheme, size) if sweep else (scheme,)
                for benchmark in self.benchmarks:
                    plan.add(config, benchmark, self.max_instructions,
                             key=key, sampled=sampled, sampling=sampling)
        return plan


@dataclass(frozen=True)
class ExecutionOptions:
    """How to run a submitted spec/plan.

    ``jobs=None`` inherits the session's worker count (``0`` = all
    cores); ``sampled=True`` estimates every run from representative
    intervals (:mod:`repro.sampling`), with ``sampling`` optionally
    overriding the default :class:`~repro.sampling.sampled.SamplingSpec`.
    ``interval_jobs`` parallelizes *inside* each sampled run: the
    interval selection is partitioned into contiguous segments fanned
    across the shared pool, bit-identical to the serial walk (``0`` =
    all cores; ``None`` inherits the effective ``jobs`` for single-task
    plans -- where outer parallelism has nothing to fan out -- and stays
    serial otherwise; ``1`` forces the serial walk).
    ``cache_dir``/``cache`` override the artifact-cache configuration
    for this submission only (``None`` inherits the ambient setting).
    ``result_cache=False`` (the CLI's ``--no-result-cache``) forces full
    runs to resimulate instead of replaying persisted
    ``SimulationResult`` artifacts -- and sampled runs to re-measure
    their intervals instead of replaying the persisted measurement
    payload; ``True`` forces replay on even under
    ``REPRO_RESULT_CACHE_DISABLE``; ``None`` inherits.

    Fault-tolerance knobs: ``task_timeout`` (seconds) is a per-task
    deadline -- a task that overruns it is killed and completes as a
    typed :class:`~repro.simulator.plan.TaskFailure` in the (partial)
    ``RunResult``; ``max_retries`` bounds per-task re-dispatches after
    worker loss or in-task errors (``None`` inherits
    ``REPRO_MAX_RETRIES``/2); ``faults`` injects deterministic chaos for
    this submission only -- a :class:`~repro.faults.FaultPlan` or a spec
    string such as ``"worker_kill:0.1,artifact_corrupt:0.05,seed:7"``
    (``None`` inherits the ambient ``REPRO_FAULTS``).
    """

    jobs: Optional[int] = None
    sampled: bool = False
    sampling: Optional[object] = None
    interval_jobs: Optional[int] = None
    cache_dir: Optional[str] = None
    cache: Optional[bool] = None
    result_cache: Optional[bool] = None
    task_timeout: Optional[float] = None
    max_retries: Optional[int] = None
    faults: Optional[Union[str, FaultPlan]] = None

    def __post_init__(self) -> None:
        if self.jobs is not None:
            if not isinstance(self.jobs, int):
                raise ValueError("jobs must be an integer, None, or 0")
            if self.jobs < 0:
                raise ValueError(
                    "jobs must be >= 1 (or None/0 for all cores)")
        if self.interval_jobs is not None:
            if not isinstance(self.interval_jobs, int):
                raise ValueError(
                    "interval_jobs must be an integer, None, or 0")
            if self.interval_jobs < 0:
                raise ValueError(
                    "interval_jobs must be >= 1 (or None to inherit, "
                    "0 for all cores)")
        if self.task_timeout is not None:
            if not isinstance(self.task_timeout, (int, float)) \
                    or self.task_timeout <= 0:
                raise ValueError("task_timeout must be a positive number "
                                 "of seconds (or None)")
        if self.max_retries is not None:
            if not isinstance(self.max_retries, int) or self.max_retries < 0:
                raise ValueError("max_retries must be >= 0 (or None)")
        if self.faults is not None:
            # Validate eagerly (and normalise to a FaultPlan): a typo in
            # a chaos spec should fail here, not inside a worker.
            object.__setattr__(self, "faults", resolve_plan(self.faults))


#: Options used when a submission does not carry its own.
DEFAULT_OPTIONS = ExecutionOptions()
