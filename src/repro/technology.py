"""Technology roadmap parameters (paper Table 1).

The paper takes clock-frequency / cycle-time projections from the 2001 SIA
International Technology Roadmap for Semiconductors and evaluates two
design points: a "current" 0.09 micron process and a "far future" 0.045
micron process.  This module holds those constants and the helpers that the
latency model and the configuration layer use to select a design point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class TechnologyNode:
    """One row of the paper's Table 1."""

    year: int
    feature_size_um: float      #: technology feature size in microns
    clock_ghz: float            #: projected clock frequency in GHz
    cycle_time_ns: float        #: projected cycle time in nanoseconds

    @property
    def name(self) -> str:
        """Canonical name, e.g. ``'0.09um'``."""
        return f"{self.feature_size_um:g}um"


#: Paper Table 1: technological parameters predicted by the SIA.
TECHNOLOGY_ROADMAP: List[TechnologyNode] = [
    TechnologyNode(year=1999, feature_size_um=0.18, clock_ghz=0.5, cycle_time_ns=2.0),
    TechnologyNode(year=2001, feature_size_um=0.13, clock_ghz=1.7, cycle_time_ns=0.59),
    TechnologyNode(year=2004, feature_size_um=0.09, clock_ghz=4.0, cycle_time_ns=0.25),
    TechnologyNode(year=2007, feature_size_um=0.065, clock_ghz=6.7, cycle_time_ns=0.15),
    TechnologyNode(year=2010, feature_size_um=0.045, clock_ghz=11.5, cycle_time_ns=0.087),
]

_BY_NAME: Dict[str, TechnologyNode] = {node.name: node for node in TECHNOLOGY_ROADMAP}
_BY_FEATURE: Dict[float, TechnologyNode] = {
    node.feature_size_um: node for node in TECHNOLOGY_ROADMAP
}

#: The two design points evaluated throughout the paper.
TECH_090 = _BY_FEATURE[0.09]
TECH_045 = _BY_FEATURE[0.045]

#: Names accepted by :func:`resolve_technology`.
EVALUATED_NODES = (TECH_090, TECH_045)


def resolve_technology(node) -> TechnologyNode:
    """Coerce a node spec into a :class:`TechnologyNode`.

    Accepts a :class:`TechnologyNode`, a feature size in microns (float,
    e.g. ``0.09``), or a name string (``"0.09um"`` / ``"0.045um"``, also
    tolerant of ``"0.09"`` and ``"90nm"`` style spellings).
    """
    if isinstance(node, TechnologyNode):
        return node
    if isinstance(node, (int, float)):
        key = float(node)
        if key in _BY_FEATURE:
            return _BY_FEATURE[key]
        raise KeyError(f"no technology node with feature size {node} um")
    if isinstance(node, str):
        text = node.strip().lower()
        if text.endswith("nm"):
            try:
                nm = float(text[:-2])
            except ValueError:
                raise KeyError(f"unrecognised technology spec {node!r}") from None
            return resolve_technology(nm / 1000.0)
        text = text.removesuffix("um")
        text = text.removesuffix("µm")
        try:
            return resolve_technology(float(text))
        except (ValueError, KeyError):
            raise KeyError(f"unrecognised technology spec {node!r}") from None
    raise TypeError(f"cannot interpret technology spec {node!r}")


def table1_rows() -> List[Dict[str, float]]:
    """Table 1 in row-dict form (used by the Table 1 bench and docs)."""
    return [
        {
            "year": n.year,
            "technology_um": n.feature_size_um,
            "clock_ghz": n.clock_ghz,
            "cycle_time_ns": n.cycle_time_ns,
        }
        for n in TECHNOLOGY_ROADMAP
    ]
