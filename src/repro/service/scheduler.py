"""Fair round-robin admission control for the experiment service.

Single-threaded on purpose: the server drives it from the event loop,
tests drive it directly.  It owns three policies and nothing else:

* **fairness** -- ready jobs are admitted round-robin across client
  identities, so one chatty client queueing 50 specs cannot starve a
  client who queued 1 (arrival order only breaks ties *within* one
  client's queue);
* **quotas** -- each client may have at most ``quota`` jobs queued or
  running; the excess submission is rejected, not silently queued;
* **backpressure** -- a global queue-depth cap bounds server memory and
  turns overload into an explicit 429 with a data-driven ``Retry-After``
  (an exponential moving average of recent job durations, so clients
  back off in units of actual service time, not a magic constant).

Deduplicated joins bypass the scheduler entirely -- subscribing to an
in-flight job consumes no quota and no queue slot, which is exactly the
economics the dedup layer exists to provide.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

#: Seed for the Retry-After duration estimate before any job finished.
INITIAL_JOB_SECONDS = 2.0
#: Bounds for the advertised Retry-After, seconds.
RETRY_AFTER_MIN = 1
RETRY_AFTER_MAX = 120
#: EMA smoothing for observed job durations.
_EMA_ALPHA = 0.3


class RejectedRequest(Exception):
    """A submission the scheduler refused; maps to HTTP 429."""

    def __init__(self, message: str, retry_after: int) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QuotaExceeded(RejectedRequest):
    """The client already has ``quota`` jobs queued or running."""


class QueueFull(RejectedRequest):
    """The global queue depth cap was hit (server-wide backpressure)."""


class FairScheduler:
    """Round-robin job admission across client identities."""

    def __init__(self, quota: int = 8, max_queue_depth: int = 64) -> None:
        if quota < 1:
            raise ValueError("quota must be >= 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.quota = quota
        self.max_queue_depth = max_queue_depth
        self._queues: Dict[str, Deque[object]] = {}
        #: Round-robin rotation: clients in first-seen order; the head
        #: of the list is the next client eligible for admission.
        self._rotation: List[str] = []
        #: Jobs queued + running per client (quota accounting).
        self._charged: Dict[str, int] = {}
        self._queued = 0
        self._avg_seconds = INITIAL_JOB_SECONDS

    # -- admission --------------------------------------------------------
    def submit(self, client: str, job: object) -> None:
        """Queue ``job`` for ``client`` or raise :class:`RejectedRequest`."""
        if self._charged.get(client, 0) >= self.quota:
            raise QuotaExceeded(
                f"client {client!r} already has {self.quota} job(s) "
                "queued or running", self.retry_after())
        if self._queued >= self.max_queue_depth:
            raise QueueFull(
                f"job queue is full ({self.max_queue_depth} deep)",
                self.retry_after())
        if client not in self._queues:
            self._queues[client] = deque()
            self._rotation.append(client)
        self._queues[client].append(job)
        self._charged[client] = self._charged.get(client, 0) + 1
        self._queued += 1

    def next_ready(self) -> Optional[object]:
        """Pop the next job to start, round-robin across clients.

        Returns ``None`` when nothing is queued.  The serving client
        rotates to the back so every client with queued work gets one
        start per sweep.
        """
        for _ in range(len(self._rotation)):
            client = self._rotation.pop(0)
            queue = self._queues[client]
            if not queue:
                # Nothing queued: keep the client rotating only while it
                # still holds quota (running jobs whose finish() must
                # find it); an idle client is forgotten entirely, so the
                # sweep stays O(clients with work), not O(clients ever
                # seen), and memory is bounded under churning identities.
                if self._charged.get(client, 0):
                    self._rotation.append(client)
                else:
                    del self._queues[client]
                continue
            job = queue.popleft()
            self._queued -= 1
            self._rotation.append(client)
            return job
        return None

    def finish(self, client: str, seconds: Optional[float] = None) -> None:
        """Release ``client``'s quota charge for one finished job."""
        charged = self._charged.get(client, 0)
        if charged <= 1:
            self._charged.pop(client, None)
        else:
            self._charged[client] = charged - 1
        self._forget_if_idle(client)
        if seconds is not None and seconds > 0:
            self.observe_duration(seconds)

    def _forget_if_idle(self, client: str) -> None:
        """Drop a client from rotation/queues once it has no queued jobs
        and no quota charge -- the fix for the unbounded first-seen
        rotation: every distinct identity ever submitting would stay in
        ``next_ready``'s sweep (and in memory) forever."""
        queue = self._queues.get(client)
        if queue is not None and not queue \
                and not self._charged.get(client, 0):
            del self._queues[client]
            try:
                self._rotation.remove(client)
            except ValueError:
                pass

    def discard(self, client: str, job: object) -> bool:
        """Remove a still-queued job (client cancelled before start)."""
        queue = self._queues.get(client)
        if queue is None or job not in queue:
            return False
        queue.remove(job)
        self._queued -= 1
        self.finish(client)
        return True

    # -- observability ----------------------------------------------------
    def observe_duration(self, seconds: float) -> None:
        """Feed one completed-job duration into the Retry-After EMA."""
        self._avg_seconds = (_EMA_ALPHA * seconds
                             + (1.0 - _EMA_ALPHA) * self._avg_seconds)

    def retry_after(self) -> int:
        """Suggested client back-off: roughly one queue drain, clamped."""
        pending = max(1, self._queued)
        estimate = self._avg_seconds * pending
        return int(min(RETRY_AFTER_MAX, max(RETRY_AFTER_MIN, estimate)))

    @property
    def queued(self) -> int:
        return self._queued

    def charged(self, client: str) -> int:
        return self._charged.get(client, 0)
