"""The experiment service: asyncio HTTP/1.1 + SSE front end for
:class:`repro.api.Session`.

Dependency-free by construction (stdlib ``asyncio`` and a hand-rolled
HTTP/1.1 parser), matching the repo's no-deps ethos.  The server is a
thin multi-tenant shell around the library: requests decode through
:mod:`repro.service.codec`, admission goes through the
:class:`~repro.service.scheduler.FairScheduler`, execution is plain
``Session.submit``, and progress streams out by bridging the
``RunHandle.add_listener`` thread callback onto the event loop with
``call_soon_threadsafe``.

**Dedup** is the centerpiece: every submission is keyed by
:func:`~repro.service.codec.request_key`, identical in-flight requests
collapse to one run with N subscribers (joiners consume no quota and no
queue slot), and identical *finished* requests replay the canonical
result bytes straight out of memory -- backed one level down by the
content-addressed result cache, so even a fresh run of a previously-seen
spec simulates nothing.  Response bodies for the same key are
byte-identical by codec construction.

**Cancel-on-disconnect** is refcounted across SSE subscribers: a job is
cancelled only when every subscriber that ever attached has disconnected
before the terminal event and no submitter still holds an unattached
claim.  ``DELETE`` cancels unconditionally.

Endpoints (all respond ``Connection: close``; one request per
connection)::

    GET    /v1/healthz                     liveness probe
    GET    /v1/stats                       service + cache counters
    POST   /v1/experiments                 submit {"spec": ..., "options": ...}
    GET    /v1/experiments/{id}            job status snapshot
    GET    /v1/experiments/{id}/result     long-poll result (202 on timeout)
    GET    /v1/experiments/{id}/events     SSE progress stream
    DELETE /v1/experiments/{id}            cancel

Client identity is the ``x-repro-client`` header (falling back to the
peer address); it drives fair scheduling, quotas, and the deterministic
``request_drop`` chaos site.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import faults
from ..api.session import ProgressEvent, RunHandle, Session
from ..api.spec import ExecutionOptions, ExperimentSpec
from . import codec
from .codec import CodecError, canonical_json
from .scheduler import FairScheduler, QueueFull, QuotaExceeded, RejectedRequest

#: Request-size guards (one experiment spec is a few hundred bytes).
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 100
MAX_BODY_BYTES = 1 << 20

#: Distinct ``request_drop`` chaos sites tracked before the attempt
#: counters reset (bounds per-client/path bookkeeping in long-running
#: multi-tenant deployments).
MAX_DROP_SITES = 4096

#: Event kinds that terminate a job's stream.
TERMINAL_KINDS = ("done", "failed", "cancelled")

_REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error",
}


class Job:
    """One deduplicated experiment: a spec key, its run, its audience."""

    _ids = itertools.count(1)

    def __init__(self, key: str, client: str, spec: ExperimentSpec,
                 options: ExecutionOptions) -> None:
        self.id = f"job-{next(Job._ids):06d}"
        self.key = key
        self.client = client            #: the submitter charged quota
        self.spec = spec
        self.options = options
        self.status = "queued"          #: queued|running|done|failed|cancelled
        self.handle: Optional[RunHandle] = None
        #: ``(seq, kind, frame-bytes)`` of every progress event so far.
        self.events: List[Tuple[int, str, bytes]] = []
        self.watchers: Set[asyncio.Queue] = set()
        self.done = asyncio.Event()
        self.result_bytes: Optional[bytes] = None
        self.error: Optional[str] = None
        self.completed = 0
        self.total = 0
        self.tasks_per_second: Optional[float] = None
        self.eta_seconds: Optional[float] = None
        self.started_at: Optional[float] = None
        #: Subscriber claims: token -> "pending" (issued at submit,
        #: never attached) | "attached" (an SSE stream is live) |
        #: "released" (its stream disconnected before the terminal
        #: event).  See :meth:`ExperimentServer._maybe_cancel_abandoned`.
        self.claims: Dict[str, str] = {}

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_KINDS

    def snapshot(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "job": self.id,
            "key": self.key,
            "status": self.status,
            "completed": self.completed,
            "total": self.total,
            "tasks_per_second": self.tasks_per_second,
            "eta_seconds": self.eta_seconds,
            "subscribers": sum(1 for state in self.claims.values()
                               if state != "released"),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


class ExperimentServer:
    """The asyncio service; construct, ``await start()``, serve."""

    def __init__(self, session: Session, host: str = "127.0.0.1",
                 port: int = 0, parallel: int = 2, quota: int = 8,
                 max_queue_depth: int = 64, max_jobs: int = 512) -> None:
        if parallel < 1:
            raise ValueError("parallel must be >= 1")
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        self.session = session
        self.host = host
        self.port = port
        self.parallel = parallel
        self.max_jobs = max_jobs
        self.scheduler = FairScheduler(quota=quota,
                                       max_queue_depth=max_queue_depth)
        self.stats: Dict[str, int] = {
            "submitted": 0, "deduplicated": 0, "runs_started": 0,
            "completed": 0, "failed": 0, "cancelled": 0,
            "rejected_quota": 0, "rejected_backpressure": 0,
            "dropped_requests": 0,
        }
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, Job] = {}
        #: Terminal job ids, oldest first -- the eviction order.
        self._terminal_order: Deque[str] = deque()
        self._running = 0
        self._seq = itertools.count(1)
        self._tokens = itertools.count(1)
        self._drop_attempts: Dict[Tuple, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._drive_task: Optional[asyncio.Task] = None
        self._wake = asyncio.Event()
        self._stopping = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._drive_task = asyncio.create_task(self._drive())

    async def stop(self) -> None:
        """Stop accepting, cancel in-flight runs, wind the loop down."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for job in self._jobs.values():
            if not job.terminal and job.handle is not None:
                job.handle.cancel()
        if self._drive_task is not None:
            self._wake.set()
            try:
                await asyncio.wait_for(self._drive_task, timeout=5)
            except asyncio.TimeoutError:
                self._drive_task.cancel()
        # Give cancelled runs a moment to emit their terminal events.
        deadline = 50
        while self._running and deadline:
            await asyncio.sleep(0.1)
            deadline -= 1

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- scheduling -------------------------------------------------------
    async def _drive(self) -> None:
        while not self._stopping:
            while self._running < self.parallel:
                job = self.scheduler.next_ready()
                if job is None:
                    break
                self._start_job(job)
            await self._wake.wait()
            self._wake.clear()

    def _start_job(self, job: Job) -> None:
        job.status = "running"
        job.started_at = self._loop.time()
        self.stats["runs_started"] += 1
        self._running += 1
        loop = self._loop
        options = job.options
        if options is not None and options.sampled \
                and options.interval_jobs is None and self.parallel > 1:
            # Server policy: a sampled run's intervals may fan out over
            # as many workers as the server would run whole jobs -- so a
            # single queued request's latency scales with ``--parallel``
            # instead of pinning one core (the results are bit-identical
            # to the serial walk, so dedup is unaffected).
            options = dataclasses.replace(options,
                                          interval_jobs=self.parallel)
        try:
            job.handle = self.session.submit(job.spec, options)
        except Exception as exc:
            self._finalize(job, "failed", f"{type(exc).__name__}: {exc}")
            return
        job.handle.add_listener(
            lambda event, job=job: loop.call_soon_threadsafe(
                self._on_event, job, event))

    def _on_event(self, job: Job, event: ProgressEvent) -> None:
        if job.terminal:
            return
        seq = next(self._seq)
        frame = canonical_json(codec.encode_event(event))
        job.events.append((seq, event.kind, frame))
        job.completed = event.completed
        job.total = event.total
        if event.tasks_per_second is not None:
            job.tasks_per_second = event.tasks_per_second
            job.eta_seconds = event.eta_seconds
        for queue in list(job.watchers):
            queue.put_nowait((seq, event.kind, frame))
        if event.kind in TERMINAL_KINDS:
            error = None
            if event.kind == "failed":
                exc = job.handle._error if job.handle is not None else None
                error = (f"{type(exc).__name__}: {exc}"
                         if exc is not None else "run failed")
            self._finalize(job, event.kind, error)

    def _finalize(self, job: Job, status: str,
                  error: Optional[str] = None) -> None:
        was_running = job.status == "running"
        job.status = status
        job.error = error
        if status == "done" and job.handle is not None:
            result = job.handle._result
            job.result_bytes = canonical_json(codec.encode_run_result(
                job.spec.name or job.id, result))
            job.eta_seconds = 0.0
        self.stats[{"done": "completed", "failed": "failed",
                    "cancelled": "cancelled"}[status]] += 1
        if was_running:
            # Queued jobs were already released by ``scheduler.discard``.
            self._running -= 1
            elapsed = (self._loop.time() - job.started_at
                       if job.started_at is not None else None)
            self.scheduler.finish(job.client, seconds=elapsed)
        job.done.set()
        for queue in list(job.watchers):
            queue.put_nowait(None)
        self._terminal_order.append(job.id)
        self._evict_terminal()
        self._wake.set()

    def _evict_terminal(self) -> None:
        """Bound the in-memory job registry to ``max_jobs``.

        Oldest-terminal-first, skipping jobs with a live SSE replay in
        progress.  Eviction loses nothing durable: a re-submitted key
        becomes a fresh job whose tasks replay from the content-
        addressed result cache, so the response is still byte-identical
        and simulation-free.
        """
        skipped = []
        while len(self._jobs) > self.max_jobs and self._terminal_order:
            job_id = self._terminal_order.popleft()
            job = self._jobs.get(job_id)
            if job is None:
                continue
            if job.watchers:
                skipped.append(job_id)
                continue
            del self._jobs[job_id]
            if self._by_key.get(job.key) is job:
                del self._by_key[job.key]
            job.events.clear()
        self._terminal_order.extendleft(reversed(skipped))

    def _maybe_cancel_abandoned(self, job: Job) -> None:
        """The refcounted cancel-on-disconnect rule: every subscriber
        that ever attached has gone away mid-stream, and nobody who
        submitted is still due to attach."""
        if job.terminal or not job.claims:
            return
        if set(job.claims.values()) == {"released"}:
            self._cancel_job(job)

    def _cancel_job(self, job: Job) -> None:
        if job.terminal:
            return
        if job.status == "queued" and self.scheduler.discard(job.client,
                                                             job):
            self._finalize(job, "cancelled")
        elif job.handle is not None:
            job.handle.cancel()   # terminal event arrives via listener

    # -- connection handling ----------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await self._read_request(reader, writer)
            except _HttpError as exc:
                await self._respond(writer, exc.status,
                                    {"error": str(exc)})
                return
            if request is None:
                return
            method, path, query, headers, body = request
            client = headers.get("x-repro-client") or self._peer(writer)
            if self._should_drop(client, method, path):
                self.stats["dropped_requests"] += 1
                return   # vanish: no response, connection just closes
            await self._route(method, path, query, headers, body, client,
                              reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _peer(self, writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        return f"{peer[0]}" if peer else "unknown"

    def _should_drop(self, client: str, method: str, path: str) -> bool:
        if len(self._drop_attempts) >= MAX_DROP_SITES:
            # Resetting the attempt counters only perturbs chaos
            # determinism past 4096 distinct sites; unbounded growth
            # would leak per-client/path state forever.
            self._drop_attempts.clear()
        site = (client, method, path)
        attempt = self._drop_attempts.get(site, 0) + 1
        self._drop_attempts[site] = attempt
        return faults.maybe_drop_request(client, method, path, attempt)

    async def _read_request(self, reader, writer):
        try:
            line = await reader.readline()
        except (ValueError, ConnectionResetError):
            raise _HttpError(400, "request line too long")
        if not line:
            return None
        if len(line) > MAX_REQUEST_LINE:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADERS + 1):
            try:
                line = await reader.readline()
            except ValueError:
                # A header line overflowing the StreamReader's limit
                # raises ValueError, same as the request line above.
                raise _HttpError(400, "header line too long")
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= MAX_HEADERS:
                raise _HttpError(400, "too many headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            length = int(length)
        except ValueError:
            raise _HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _HttpError(400, "request body truncated")
        split = urlsplit(target)
        query = {name: values[-1]
                 for name, values in parse_qs(split.query).items()}
        return method, split.path, query, headers, body

    async def _respond(self, writer, status: int, payload,
                       headers: Optional[Dict[str, str]] = None,
                       body: Optional[bytes] = None) -> None:
        if body is None:
            body = canonical_json(payload) + b"\n"
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    # -- routing ----------------------------------------------------------
    async def _route(self, method, path, query, headers, body, client,
                     reader, writer) -> None:
        if path == "/v1/healthz":
            await self._respond(writer, 200, {"status": "ok"})
            return
        if path == "/v1/stats":
            await self._respond(writer, 200, self._stats_payload())
            return
        if path == "/v1/experiments":
            if method != "POST":
                await self._respond(writer, 405,
                                    {"error": "POST required"})
                return
            await self._handle_submit(body, client, writer)
            return
        if path.startswith("/v1/experiments/"):
            rest = path[len("/v1/experiments/"):]
            job_id, _, action = rest.partition("/")
            job = self._jobs.get(job_id)
            if job is None:
                await self._respond(writer, 404,
                                    {"error": f"no such job {job_id!r}"})
                return
            if method == "DELETE" and not action:
                self._cancel_job(job)
                await self._respond(writer, 200, job.snapshot())
                return
            if method != "GET":
                await self._respond(writer, 405, {"error": "GET required"})
                return
            if not action:
                await self._respond(writer, 200, job.snapshot())
            elif action == "result":
                await self._handle_result(job, query, writer)
            elif action == "events":
                await self._handle_events(job, query, reader, writer)
            else:
                await self._respond(writer, 404,
                                    {"error": f"no such action {action!r}"})
            return
        await self._respond(writer, 404, {"error": f"no route for {path}"})

    def _stats_payload(self) -> Dict[str, object]:
        return {
            "service": {
                **self.stats,
                "active": self._running,
                "queued": self.scheduler.queued,
                "jobs": len(self._jobs),
                "parallel": self.parallel,
            },
            "cache": self.session.cache_counters(),
        }

    # -- submit (with dedup) ----------------------------------------------
    async def _handle_submit(self, body: bytes, client: str,
                             writer) -> None:
        import json

        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond(writer, 400,
                                {"error": f"invalid JSON body: {exc}"})
            return
        try:
            if not isinstance(payload, dict) or "spec" not in payload:
                raise CodecError('body must be {"spec": ..., "options": ...}')
            spec = codec.decode_spec(payload["spec"])
            options = codec.decode_options(payload.get("options"))
        except CodecError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        key = codec.request_key(spec, options)
        self.stats["submitted"] += 1
        job = self._by_key.get(key)
        if job is not None and job.status not in ("failed", "cancelled"):
            # Dedup: join the in-flight (or finished) job.  Joins bypass
            # the scheduler -- no quota charge, no queue slot.
            self.stats["deduplicated"] += 1
            token = self._issue_claim(job)
            await self._respond(writer, 200, {
                **job.snapshot(), "dedup": "joined", "subscriber": token})
            return
        job = Job(key, client, spec, options)
        try:
            self.scheduler.submit(client, job)
        except QuotaExceeded as exc:
            self.stats["rejected_quota"] += 1
            await self._reject(writer, exc)
            return
        except QueueFull as exc:
            self.stats["rejected_backpressure"] += 1
            await self._reject(writer, exc)
            return
        self._jobs[job.id] = job
        self._by_key[key] = job
        token = self._issue_claim(job)
        self._wake.set()
        await self._respond(writer, 200, {
            **job.snapshot(), "dedup": "new", "subscriber": token})

    async def _reject(self, writer, exc: RejectedRequest) -> None:
        await self._respond(writer, 429, {
            "error": str(exc), "retry_after": exc.retry_after,
        }, headers={"Retry-After": str(exc.retry_after)})

    def _issue_claim(self, job: Job) -> str:
        token = f"sub-{next(self._tokens):06d}"
        if not job.terminal:
            job.claims[token] = "pending"
        return token

    # -- result long-poll --------------------------------------------------
    async def _handle_result(self, job: Job, query, writer) -> None:
        try:
            timeout = min(300.0, max(0.0, float(query.get("timeout", 30))))
        except ValueError:
            await self._respond(writer, 400, {"error": "bad timeout"})
            return
        try:
            await asyncio.wait_for(job.done.wait(), timeout)
        except asyncio.TimeoutError:
            await self._respond(writer, 202, job.snapshot())
            return
        if job.status == "done":
            await self._respond(writer, 200, None, body=job.result_bytes)
        elif job.status == "cancelled":
            await self._respond(writer, 409, job.snapshot())
        else:
            await self._respond(writer, 500, job.snapshot())

    # -- SSE --------------------------------------------------------------
    async def _handle_events(self, job: Job, query, reader,
                             writer) -> None:
        token = query.get("subscriber")
        if token is not None and token not in job.claims \
                and not job.terminal:
            # Unknown token on a live job: treat as a fresh subscriber
            # rather than erroring -- claims only drive cancel
            # accounting, never authorization.
            token = None
        if token is None and not job.terminal:
            token = self._issue_claim(job)
        if token is not None and token in job.claims:
            job.claims[token] = "attached"
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        queue: asyncio.Queue = asyncio.Queue()
        job.watchers.add(queue)
        replay = list(job.events)
        already_terminal = job.terminal
        clean = False
        disconnect = asyncio.ensure_future(reader.read(1))
        try:
            for seq, kind, frame in replay:
                writer.write(self._sse_frame(seq, kind, frame))
            await writer.drain()
            if already_terminal:
                clean = True
                return
            while True:
                getter = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {getter, disconnect},
                    return_when=asyncio.FIRST_COMPLETED)
                if getter not in done:
                    getter.cancel()
                    return   # client went away mid-stream
                item = getter.result()
                if item is None:
                    clean = True
                    return
                seq, kind, frame = item
                writer.write(self._sse_frame(seq, kind, frame))
                await writer.drain()
                if kind in TERMINAL_KINDS:
                    clean = True
                    return
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            disconnect.cancel()
            job.watchers.discard(queue)
            if token is not None and token in job.claims and not clean:
                job.claims[token] = "released"
                self._maybe_cancel_abandoned(job)

    @staticmethod
    def _sse_frame(seq: int, kind: str, data: bytes) -> bytes:
        return (f"id: {seq}\nevent: {kind}\ndata: ".encode("utf-8")
                + data + b"\n\n")


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


# ----------------------------------------------------------------------
# embedding helpers
# ----------------------------------------------------------------------
async def _serve(server: ExperimentServer,
                 ready: Optional[threading.Event] = None,
                 announce=None) -> None:
    await server.start()
    if announce is not None:
        announce(server)
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


class ServerThread:
    """Run an :class:`ExperimentServer` on a background thread.

    The embedding used by tests and :mod:`benchmarks.bench_service`:
    construct with a live :class:`Session`, ``start()`` (blocks until
    the port is bound), talk to ``http://127.0.0.1:{port}``, ``stop()``.
    """

    def __init__(self, session: Session, **kwargs) -> None:
        self.server = ExperimentServer(session, **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._task = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 10.0) -> "ServerThread":
        ready = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self._task = loop.create_task(_serve(self.server, ready=ready))
            try:
                loop.run_until_complete(self._task)
            except asyncio.CancelledError:
                pass
            finally:
                loop.close()

        self._thread = threading.Thread(target=run, name="repro-service",
                                        daemon=True)
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("service failed to start in time")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._task is not None:
            self._loop.call_soon_threadsafe(self._task.cancel)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
