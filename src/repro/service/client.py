"""Tiny stdlib client for the experiment service.

``http.client`` only -- the same no-deps rule as the server.  One
connection per request (the server speaks ``Connection: close``), with
transparent retry on transport-level failures: the service's
``request_drop`` chaos site (and any real network) can eat a request
before a response is written, and because submissions deduplicate by
content key on the server, **retrying a POST is idempotent** -- the
retry either joins the in-flight job the first attempt created or
creates the job the first attempt never delivered.  That property is
what makes blind retry safe here when it would not be against a
non-deduplicating API.

HTTP 429 is *not* retried silently: it surfaces as :class:`RetryLater`
carrying the server's ``Retry-After``, so callers decide whether to
back off (``submit(..., wait_on_quota=True)`` does it for you).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from ..api.spec import ExecutionOptions, ExperimentSpec
from . import codec

#: Transport errors worth a blind retry (no response was received).
_RETRYABLE = (ConnectionError, ConnectionResetError, BrokenPipeError,
              http.client.RemoteDisconnected, http.client.BadStatusLine,
              http.client.CannotSendRequest, OSError)


class ServiceError(Exception):
    """A non-2xx response (other than 429/202)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class RetryLater(ServiceError):
    """HTTP 429: quota or backpressure; honor :attr:`retry_after`."""

    def __init__(self, message: str, retry_after: int) -> None:
        super().__init__(429, message)
        self.retry_after = retry_after


class ServiceClient:
    """Talk to one ``repro-clgp serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8177,
                 client_id: str = "anonymous", retries: int = 8,
                 backoff: float = 0.05, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout

    # -- transport --------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 stream: bool = False) -> Tuple[int, Dict[str, str], Any]:
        """One request with transport-level retry; see module docstring
        for why blind retry is safe against this server."""
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            try:
                headers = {"x-repro-client": self.client_id,
                           "Connection": "close"}
                if body is not None:
                    headers["Content-Type"] = "application/json"
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                response_headers = {name.lower(): value for name, value
                                    in response.getheaders()}
                if stream:
                    # Caller owns the connection until the stream ends.
                    return response.status, response_headers, \
                        (response, connection)
                payload = response.read()
                connection.close()
                return response.status, response_headers, payload
            except _RETRYABLE as exc:
                connection.close()
                last = exc
                if attempt >= self.retries:
                    break
                time.sleep(self.backoff * (2 ** attempt))
        raise ServiceError(0, f"request failed after "
                              f"{self.retries + 1} attempts: {last}")

    @staticmethod
    def _json(payload: bytes) -> Any:
        return json.loads(payload.decode("utf-8"))

    def _checked(self, status: int, headers: Dict[str, str],
                 payload: bytes, accept=(200,)) -> Any:
        if status == 429:
            detail = self._json(payload)
            raise RetryLater(detail.get("error", "rejected"),
                             int(headers.get("retry-after",
                                             detail.get("retry_after", 1))))
        if status not in accept:
            try:
                message = self._json(payload).get("error", "")
            except (ValueError, AttributeError):
                message = payload.decode("utf-8", "replace")[:200]
            raise ServiceError(status, message)
        return self._json(payload)

    # -- API --------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._checked(*self._request("GET", "/v1/healthz"))

    def stats(self) -> Dict[str, Any]:
        return self._checked(*self._request("GET", "/v1/stats"))

    def submit(self, spec: ExperimentSpec,
               options: Optional[ExecutionOptions] = None,
               wait_on_quota: bool = False,
               max_backoff: Optional[float] = None) -> Dict[str, Any]:
        """Submit a spec; returns the job snapshot (``dedup`` says
        whether this created the run or joined an existing one).

        With ``wait_on_quota`` a 429 is retried after the server's
        advertised ``Retry-After`` -- honored in full, because that value
        is the server's data-driven backpressure estimate and a herd of
        clients re-polling on a shorter private schedule defeats it.
        ``max_backoff`` optionally caps the sleep for callers with their
        own deadline.
        """
        body = codec.canonical_json({
            "spec": codec.encode_spec(spec),
            "options": (codec.encode_options(options)
                        if options is not None else None),
        })
        while True:
            try:
                return self._checked(
                    *self._request("POST", "/v1/experiments", body=body))
            except RetryLater as exc:
                if not wait_on_quota:
                    raise
                delay = float(exc.retry_after)
                if max_backoff is not None:
                    delay = min(max_backoff, delay)
                time.sleep(max(0.0, delay))

    def status(self, job: str) -> Dict[str, Any]:
        return self._checked(*self._request("GET", f"/v1/experiments/{job}"))

    def result_bytes(self, job: str, timeout: float = 30.0,
                     poll: bool = True) -> bytes:
        """The job's canonical result body, exactly as served.

        Long-polls until done; with ``poll=True`` keeps re-polling after
        each 202.  Byte-level because dedup's observable guarantee is at
        the byte level -- :meth:`result` parses it when structure is all
        you need.
        """
        while True:
            status, headers, payload = self._request(
                "GET", f"/v1/experiments/{job}/result?timeout={timeout}")
            if status == 200:
                return payload
            if status == 202 and poll:
                continue
            self._checked(status, headers, payload, accept=(200,))

    def result(self, job: str, timeout: float = 30.0) -> Dict[str, Any]:
        return self._json(self.result_bytes(job, timeout=timeout))

    def cancel(self, job: str) -> Dict[str, Any]:
        return self._checked(
            *self._request("DELETE", f"/v1/experiments/{job}"))

    def events(self, job: str,
               subscriber: Optional[str] = None) -> Iterator[Dict[str, Any]]:
        """Yield the job's SSE progress events as parsed dicts, in
        stream order, ending after the terminal event."""
        path = f"/v1/experiments/{job}/events"
        if subscriber:
            path += f"?subscriber={subscriber}"
        status, headers, stream = self._request("GET", path, stream=True)
        response, connection = stream
        if status != 200:
            payload = response.read()
            connection.close()
            self._checked(status, headers, payload, accept=(200,))
        try:
            event: Dict[str, Any] = {}
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.decode("utf-8").rstrip("\n")
                if not line:
                    if "data" in event:
                        parsed = json.loads(event["data"])
                        parsed["_seq"] = int(event.get("id", 0))
                        yield parsed
                        if parsed.get("kind") in ("done", "failed",
                                                  "cancelled"):
                            return
                    event = {}
                    continue
                name, _, value = line.partition(":")
                event[name.strip()] = value.lstrip()
        finally:
            connection.close()
