"""The experiment service: a multi-tenant HTTP front end for
:mod:`repro.api`.

Many clients submit :class:`~repro.api.spec.ExperimentSpec`s
concurrently; identical requests deduplicate onto one simulation (or a
warm result-cache replay), admission is fair round-robin with per-client
quotas and queue backpressure, and progress streams back over SSE.
Start it with ``repro-clgp serve`` or embed it via
:class:`~repro.service.server.ExperimentServer` /
:class:`~repro.service.server.ServerThread`; talk to it with
:class:`~repro.service.client.ServiceClient`.
"""

from .client import RetryLater, ServiceClient, ServiceError
from .codec import CodecError, canonical_json, request_key
from .scheduler import FairScheduler, QueueFull, QuotaExceeded, RejectedRequest
from .server import ExperimentServer, ServerThread

__all__ = [
    "CodecError",
    "ExperimentServer",
    "FairScheduler",
    "QueueFull",
    "QuotaExceeded",
    "RejectedRequest",
    "RetryLater",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "canonical_json",
    "request_key",
]
