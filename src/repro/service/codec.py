"""JSON wire codec for the experiment service.

Maps the frozen :mod:`repro.api` request models
(:class:`~repro.api.spec.ExperimentSpec`,
:class:`~repro.api.spec.ExecutionOptions`) and run artifacts
(:class:`~repro.api.session.RunResult`,
:class:`~repro.api.session.ProgressEvent`) to and from plain JSON
objects.  Decoding is strict -- unknown fields and malformed values
raise :class:`CodecError` (HTTP 400 at the server boundary) instead of
being silently dropped, so a client typo never turns into a subtly
different experiment.  Validation itself is delegated to the dataclass
constructors: the codec only reshapes JSON types (lists -> tuples,
objects -> sorted pairs), the frozen-spec invariants stay in one place.

Encoding of results is **canonical**: :func:`canonical_json` emits
sorted-key, minimal-separator UTF-8, and :func:`encode_run_result`
deliberately excludes wall-clock fields (``elapsed_seconds``,
``cache_hits``, ...) so two executions of the same spec -- or a live run
and a warm result-cache replay -- produce **byte-identical** response
bodies.  That is what makes the server's dedup observable and testable:
clients cannot tell whether they triggered the simulation or joined one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from ..api.session import ProgressEvent, RunResult
from ..api.spec import ExecutionOptions, ExperimentSpec
from ..cache.keys import content_key, stable_repr
from ..sampling.sampled import SamplingSpec
from ..simulator.plan import TaskFailure

#: Wire-format version; bumped only for incompatible reshapes.
CODEC_VERSION = 1

#: ``ExecutionOptions`` fields a client may set.  The rest -- ``jobs``,
#: ``interval_jobs``, ``cache_dir``/``cache``, ``faults`` -- are *server
#: policy*: worker counts (across tasks and inside a sampled run alike)
#: and store location belong to the operator, and letting a client
#: inject chaos or redirect the cache would let one tenant corrupt the
#: results every other tenant dedups against.  ``interval_jobs`` is also
#: excluded from :func:`request_key` on purpose: intra-run parallelism
#: is bit-identical to the serial walk, so it never changes a result.
CLIENT_OPTION_FIELDS = (
    "sampled", "sampling", "result_cache", "task_timeout", "max_retries",
)

_SPEC_FIELDS = tuple(f.name for f in fields(ExperimentSpec))
_SAMPLING_FIELDS = tuple(f.name for f in fields(SamplingSpec))


class CodecError(ValueError):
    """A request payload that cannot be decoded (-> HTTP 400)."""


def _require_object(payload: Any, what: str) -> Mapping:
    if not isinstance(payload, Mapping):
        raise CodecError(f"{what} must be a JSON object, "
                         f"got {type(payload).__name__}")
    return payload


def _reject_unknown(payload: Mapping, allowed: Tuple[str, ...],
                    what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise CodecError(
            f"unknown {what} field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}")


# ----------------------------------------------------------------------
# ExperimentSpec
# ----------------------------------------------------------------------
def decode_spec(payload: Any) -> ExperimentSpec:
    """JSON object -> validated :class:`ExperimentSpec`.

    JSON has no tuples, so list-valued fields are reshaped before the
    dataclass validates; ``config_overrides`` accepts either an object
    or a list of ``[name, value]`` pairs.
    """
    payload = dict(_require_object(payload, "spec"))
    _reject_unknown(payload, _SPEC_FIELDS, "spec")
    if "scheme" not in payload:
        raise CodecError("spec requires a 'scheme' field")
    for field_name in ("scheme", "benchmarks", "l1_sizes"):
        value = payload.get(field_name)
        if isinstance(value, list):
            payload[field_name] = tuple(value)
    overrides = payload.get("config_overrides")
    if isinstance(overrides, list):
        try:
            payload["config_overrides"] = tuple(
                (str(name), value) for name, value in overrides)
        except (TypeError, ValueError) as exc:
            raise CodecError(
                "config_overrides must be an object or a list of "
                "[name, value] pairs") from exc
    try:
        return ExperimentSpec(**payload)
    except (TypeError, ValueError) as exc:
        raise CodecError(f"invalid spec: {exc}") from exc


def encode_spec(spec: ExperimentSpec) -> Dict[str, Any]:
    """:class:`ExperimentSpec` -> JSON object (inverse of decode)."""
    return {
        "scheme": list(spec.schemes),
        "benchmarks": list(spec.benchmarks),
        "max_instructions": spec.max_instructions,
        "technology": str(spec.technology),
        "l1_sizes": None if spec.l1_sizes is None else list(spec.l1_sizes),
        "l1_size_bytes": spec.l1_size_bytes,
        "config_overrides": [[name, value]
                             for name, value in spec.config_overrides],
        "name": spec.name,
    }


# ----------------------------------------------------------------------
# ExecutionOptions
# ----------------------------------------------------------------------
def decode_options(payload: Any) -> ExecutionOptions:
    """JSON object -> :class:`ExecutionOptions` (client-settable subset).

    Server-policy fields (``jobs``, ``cache_dir``, ``cache``,
    ``faults``) are rejected with an explanatory error rather than
    ignored -- see :data:`CLIENT_OPTION_FIELDS`.
    """
    if payload is None:
        return ExecutionOptions()
    payload = dict(_require_object(payload, "options"))
    refused = sorted(set(payload) & {"jobs", "interval_jobs", "cache_dir",
                                     "cache", "faults"})
    if refused:
        raise CodecError(
            f"option(s) {', '.join(map(repr, refused))} are server policy "
            "and cannot be set per-request; configure them on "
            "'repro-clgp serve' instead")
    _reject_unknown(payload, CLIENT_OPTION_FIELDS, "options")
    sampling = payload.get("sampling")
    if sampling is not None:
        sampling = dict(_require_object(sampling, "options.sampling"))
        _reject_unknown(sampling, _SAMPLING_FIELDS, "options.sampling")
        try:
            payload["sampling"] = SamplingSpec(**sampling)
        except (TypeError, ValueError) as exc:
            raise CodecError(f"invalid sampling spec: {exc}") from exc
    try:
        return ExecutionOptions(**payload)
    except (TypeError, ValueError) as exc:
        raise CodecError(f"invalid options: {exc}") from exc


def encode_options(options: ExecutionOptions) -> Dict[str, Any]:
    """Client-settable fields of ``options`` as a JSON object."""
    encoded: Dict[str, Any] = {}
    for name in CLIENT_OPTION_FIELDS:
        value = getattr(options, name)
        if isinstance(value, SamplingSpec):
            value = asdict(value)
        encoded[name] = value
    return encoded


# ----------------------------------------------------------------------
# dedup key
# ----------------------------------------------------------------------
def request_key(spec: ExperimentSpec,
                options: Optional[ExecutionOptions] = None) -> str:
    """Content key identical requests collapse under.

    Covers everything that determines the *result*: the full spec plus
    the sampled/sampling options.  Execution-only knobs
    (``result_cache``, ``task_timeout``, ``max_retries``) are excluded
    on purpose -- they change how a run executes, never what a correct
    run returns, so requests differing only there still dedup.
    """
    options = options or ExecutionOptions()
    return content_key(
        "service-request",
        stable_repr(spec),
        stable_repr(bool(options.sampled)),
        stable_repr(options.sampling),
    )


# ----------------------------------------------------------------------
# results and events
# ----------------------------------------------------------------------
def encode_run_result(name: str, result: RunResult) -> Dict[str, Any]:
    """:class:`RunResult` -> canonical JSON object.

    Timing/accounting fields (``elapsed_seconds``, ``cache_hits``,
    ``result_cache_hits``, ``task_retries``) are excluded so reruns and
    cache replays of the same spec serialize byte-identically; clients
    needing those watch the progress stream instead.
    """
    encoded_results = []
    for item in result.results:
        if isinstance(item, TaskFailure):
            encoded_results.append({
                "type": "failure",
                "index": item.index,
                "benchmark": item.benchmark,
                "key": list(item.key),
                "kind": item.kind,
                "message": item.message,
            })
        else:
            encoded_results.append({"type": "result", **asdict(item)})
    return {
        "codec": CODEC_VERSION,
        "name": name,
        "tasks": [{
            "benchmark": task.benchmark,
            "key": list(task.key),
            "max_instructions": task.max_instructions,
            "sampled": task.sampled,
        } for task in result.tasks],
        "results": encoded_results,
        "hmean_ipc": [[list(key), value]
                      for key, value in result.hmean_by_key().items()],
    }


def encode_event(event: ProgressEvent) -> Dict[str, Any]:
    """:class:`ProgressEvent` -> JSON object (tuples become lists)."""
    encoded = asdict(event)
    if encoded.get("key") is not None:
        encoded["key"] = list(encoded["key"])
    return encoded


def canonical_json(payload: Any) -> bytes:
    """Deterministic UTF-8 JSON: sorted keys, minimal separators."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
