"""Static control-flow-graph (CFG) model for synthetic programs.

A synthetic program is a collection of :class:`Function` objects, each a
list of :class:`BasicBlock` objects laid out contiguously in a synthetic
address space.  The CFG is what the trace generator walks to produce the
dynamic instruction stream, and what the front-end's basic-block dictionary
(:mod:`repro.workloads.bbdict`) exposes so that fetch can proceed along
mispredicted (wrong) paths, exactly as the paper's simulator does with its
"separate basic block dictionary".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .isa import (
    INSTRUCTION_BYTES,
    BranchKind,
    InstrClass,
    StaticInstruction,
    TERMINATOR_CLASS,
)


@dataclass
class BasicBlock:
    """A static basic block.

    Attributes
    ----------
    addr:
        Byte address of the first instruction.
    size:
        Number of instructions in the block (>= 1).
    kind:
        Terminator kind (:class:`~repro.workloads.isa.BranchKind`).
    taken_target:
        Address control transfers to when the terminator is taken
        (``None`` for fall-through-only and RETURN blocks -- returns get
        their target from the call stack at execution time).
    taken_probability:
        For CONDITIONAL terminators, the probability the branch is taken on
        any given execution; ignored otherwise.
    instr_classes:
        Per-instruction classes, ``len == size``.  The last entry always
        matches the terminator kind.
    load_miss_probability:
        Probability that a LOAD in this block misses the L1 data cache
        (per-benchmark data-side behaviour is modelled probabilistically;
        see DESIGN.md).
    """

    addr: int
    size: int
    kind: BranchKind
    taken_target: Optional[int] = None
    taken_probability: float = 0.5
    instr_classes: List[InstrClass] = field(default_factory=list)
    load_miss_probability: float = 0.05

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("basic block must contain at least one instruction")
        if not self.instr_classes:
            self.instr_classes = [InstrClass.ALU] * (self.size - 1) + [
                TERMINATOR_CLASS[self.kind]
            ]
        if len(self.instr_classes) != self.size:
            raise ValueError(
                f"instr_classes length {len(self.instr_classes)} != size {self.size}"
            )
        # The terminating instruction class must be consistent with the kind.
        expected = TERMINATOR_CLASS[self.kind]
        if self.instr_classes[-1] is not expected:
            self.instr_classes[-1] = expected

    # -- address helpers -------------------------------------------------
    @property
    def end_addr(self) -> int:
        """Byte address one past the last instruction."""
        return self.addr + self.size * INSTRUCTION_BYTES

    @property
    def fall_through(self) -> int:
        """Address of the next sequential instruction after the block."""
        return self.end_addr

    @property
    def terminator_addr(self) -> int:
        """Byte address of the block's final instruction."""
        return self.addr + (self.size - 1) * INSTRUCTION_BYTES

    def instruction(self, index: int) -> StaticInstruction:
        """The ``index``-th static instruction of the block."""
        if not 0 <= index < self.size:
            raise IndexError(index)
        return StaticInstruction(
            addr=self.addr + index * INSTRUCTION_BYTES,
            cls=self.instr_classes[index],
            is_block_terminator=(index == self.size - 1),
        )

    def instructions(self) -> List[StaticInstruction]:
        """All static instructions of the block, in address order."""
        return [self.instruction(i) for i in range(self.size)]

    @property
    def ends_in_branch(self) -> bool:
        return self.kind is not BranchKind.NONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BasicBlock(addr={self.addr:#x}, size={self.size}, "
            f"kind={self.kind.name}, target={self.taken_target})"
        )


@dataclass
class Function:
    """A synthetic function: an entry block plus a body of blocks.

    Blocks are laid out contiguously starting at :attr:`entry`.
    """

    name: str
    entry: int
    blocks: List[BasicBlock] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(b.size for b in self.blocks) * INSTRUCTION_BYTES

    @property
    def size_instructions(self) -> int:
        return sum(b.size for b in self.blocks)


class ControlFlowGraph:
    """Whole-program static CFG: functions, blocks, and address lookup."""

    def __init__(self, functions: Sequence[Function], entry_function: str):
        self.functions: Dict[str, Function] = {f.name: f for f in functions}
        if entry_function not in self.functions:
            raise KeyError(f"entry function {entry_function!r} not in CFG")
        self.entry_function = entry_function
        self._blocks_by_addr: Dict[int, BasicBlock] = {}
        for func in functions:
            for block in func.blocks:
                if block.addr in self._blocks_by_addr:
                    raise ValueError(f"duplicate block address {block.addr:#x}")
                self._blocks_by_addr[block.addr] = block
        self._sorted_addrs = sorted(self._blocks_by_addr)

    # -- lookup ----------------------------------------------------------
    @property
    def entry_address(self) -> int:
        return self.functions[self.entry_function].entry

    def block_at(self, addr: int) -> Optional[BasicBlock]:
        """The block starting exactly at ``addr`` or ``None``."""
        return self._blocks_by_addr.get(addr)

    def block_containing(self, addr: int) -> Optional[BasicBlock]:
        """The block whose address range contains ``addr`` (if any)."""
        block = self._blocks_by_addr.get(addr)
        if block is not None:
            return block
        # Binary search over sorted start addresses.
        import bisect

        idx = bisect.bisect_right(self._sorted_addrs, addr) - 1
        if idx < 0:
            return None
        candidate = self._blocks_by_addr[self._sorted_addrs[idx]]
        if candidate.addr <= addr < candidate.end_addr:
            return candidate
        return None

    def all_blocks(self) -> List[BasicBlock]:
        return [self._blocks_by_addr[a] for a in self._sorted_addrs]

    # -- summary statistics ----------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self._blocks_by_addr)

    @property
    def num_static_instructions(self) -> int:
        return sum(b.size for b in self._blocks_by_addr.values())

    @property
    def footprint_bytes(self) -> int:
        """Static code footprint in bytes (contiguous layout assumed)."""
        return self.num_static_instructions * INSTRUCTION_BYTES

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation.

        * every taken target of a CONDITIONAL/UNCONDITIONAL/CALL block must
          be the start of some block,
        * blocks must not overlap.
        """
        prev_end = None
        for addr in self._sorted_addrs:
            block = self._blocks_by_addr[addr]
            if prev_end is not None and addr < prev_end:
                raise ValueError(f"block at {addr:#x} overlaps previous block")
            prev_end = block.end_addr
            if block.kind in (
                BranchKind.CONDITIONAL,
                BranchKind.UNCONDITIONAL,
                BranchKind.CALL,
            ):
                if block.taken_target is None:
                    raise ValueError(f"block at {addr:#x} has no taken target")
                if self.block_at(block.taken_target) is None:
                    raise ValueError(
                        f"block at {addr:#x} targets {block.taken_target:#x}, "
                        "which is not a block start"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ControlFlowGraph(functions={len(self.functions)}, "
            f"blocks={self.num_blocks}, footprint={self.footprint_bytes}B)"
        )
