"""Abstract RISC-like ISA model.

The paper's traces come from a DEC Alpha AXP-21264.  For an instruction
fetch study the only properties of the ISA that matter are:

* fixed instruction size (4 bytes on Alpha),
* instruction classes (which instructions are branches, loads, stores),
* branch semantics (conditional / unconditional / call / return).

This module defines those abstractions.  Addresses are plain Python ints
(byte addresses); cache lines are ``line_size``-byte aligned groups of
instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Size of a single instruction in bytes (Alpha-like fixed encoding).
INSTRUCTION_BYTES = 4


class InstrClass(enum.IntEnum):
    """Classes of instructions relevant to the timing model."""

    ALU = 0
    LOAD = 1
    STORE = 2
    BRANCH_COND = 3
    BRANCH_UNCOND = 4
    CALL = 5
    RETURN = 6
    NOP = 7

    @property
    def is_control(self) -> bool:
        """True for any instruction that may redirect the PC."""
        return self in _CONTROL_CLASSES

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self in (InstrClass.LOAD, InstrClass.STORE)

    @property
    def is_conditional(self) -> bool:
        """True only for conditional branches."""
        return self is InstrClass.BRANCH_COND


_CONTROL_CLASSES = frozenset(
    {
        InstrClass.BRANCH_COND,
        InstrClass.BRANCH_UNCOND,
        InstrClass.CALL,
        InstrClass.RETURN,
    }
)


class BranchKind(enum.IntEnum):
    """Terminator kind of a basic block."""

    NONE = 0            #: block falls through unconditionally (no branch)
    CONDITIONAL = 1     #: conditional branch: taken -> target, else fall through
    UNCONDITIONAL = 2   #: always-taken jump
    CALL = 3            #: subroutine call (always taken, pushes return addr)
    RETURN = 4          #: subroutine return (target from call site)


#: Mapping from block terminator kind to the instruction class of the
#: terminating instruction.  ``NONE`` blocks end with a plain ALU op.
TERMINATOR_CLASS = {
    BranchKind.NONE: InstrClass.ALU,
    BranchKind.CONDITIONAL: InstrClass.BRANCH_COND,
    BranchKind.UNCONDITIONAL: InstrClass.BRANCH_UNCOND,
    BranchKind.CALL: InstrClass.CALL,
    BranchKind.RETURN: InstrClass.RETURN,
}


def align_down(addr: int, granule: int) -> int:
    """Round ``addr`` down to a multiple of ``granule``."""
    return addr - (addr % granule)


def line_address(addr: int, line_size: int) -> int:
    """Cache-line address (aligned) containing byte address ``addr``."""
    return align_down(addr, line_size)


def instructions_in_range(start_addr: int, n_instrs: int):
    """Yield the byte addresses of ``n_instrs`` sequential instructions."""
    for i in range(n_instrs):
        yield start_addr + i * INSTRUCTION_BYTES


def span_lines(start_addr: int, n_instrs: int, line_size: int):
    """Return the ordered list of distinct cache-line addresses touched by a
    run of ``n_instrs`` sequential instructions starting at ``start_addr``.
    """
    if n_instrs <= 0:
        return []
    first = line_address(start_addr, line_size)
    last = line_address(start_addr + (n_instrs - 1) * INSTRUCTION_BYTES, line_size)
    return list(range(first, last + 1, line_size))


@dataclass(frozen=True)
class StaticInstruction:
    """A single static instruction: address plus class.

    ``is_block_terminator`` marks the final (possibly branching) instruction
    of its basic block; the simulator uses it to know where control-flow
    decisions are attached.
    """

    addr: int
    cls: InstrClass
    is_block_terminator: bool = False
