"""Synthetic workload substrate (programs, traces, SPECint2000 profiles)."""

from .bbdict import BasicBlockDictionary, StaticBlockView
from .cfg import BasicBlock, ControlFlowGraph, Function
from .generator import ProgramGenerator, WorkloadProfile, generate_program
from .isa import INSTRUCTION_BYTES, BranchKind, InstrClass
from .spec2000 import (
    DEFAULT_MIX,
    SPECINT2000_NAMES,
    SPECINT2000_PROFILES,
    profile_for,
    profiles_for,
)
from .trace import (
    ActualStream,
    CorrectPathOracle,
    DynamicBlock,
    ProgramWalker,
    Workload,
    build_workload,
)

__all__ = [
    "BasicBlock",
    "BasicBlockDictionary",
    "BranchKind",
    "ControlFlowGraph",
    "CorrectPathOracle",
    "DEFAULT_MIX",
    "DynamicBlock",
    "Function",
    "INSTRUCTION_BYTES",
    "InstrClass",
    "ActualStream",
    "ProgramGenerator",
    "ProgramWalker",
    "SPECINT2000_NAMES",
    "SPECINT2000_PROFILES",
    "StaticBlockView",
    "Workload",
    "WorkloadProfile",
    "build_workload",
    "generate_program",
    "profile_for",
    "profiles_for",
]
