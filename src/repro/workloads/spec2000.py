"""Per-benchmark profiles mimicking the SPECint2000 suite.

The paper evaluates gzip, vpr, gcc, mcf, crafty, parser, eon, perlbmk, gap,
vortex, bzip2 and twolf.  Real traces are unavailable, so each benchmark is
represented by a :class:`~repro.workloads.generator.WorkloadProfile` whose
knobs are set according to widely reported characteristics of the suite:

* **instruction footprint** -- gcc, crafty, eon, perlbmk, vortex and gap
  have large instruction working sets and suffer I-cache misses even at
  32-64 KB; gzip, bzip2 and mcf have tiny loops that fit in a few KB.
* **branch behaviour** -- gzip and bzip2 are highly predictable; gcc,
  crafty, eon, perlbmk have more hard-to-predict branches and deeper call
  behaviour (important for the CLTQ flush / emergency-cache path).
* **data behaviour** -- mcf is dominated by D-cache misses (low IPC no
  matter what the I-side does); most others have moderate data miss rates.

Absolute IPC will not match the paper; the goal is that the *relative*
behaviour across benchmarks and across fetch engines follows the paper's
Figure 6 (CLGP best everywhere except gzip, biggest wins on eon / vortex /
gap).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .generator import WorkloadProfile

#: Benchmark order used throughout the paper's per-benchmark figure.
SPECINT2000_NAMES: List[str] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser",
    "eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
]

#: A small representative mix used by default in the sweep benches so that
#: pure-Python simulation stays affordable; chosen to span small / medium /
#: large footprints and easy / hard branch behaviour.
DEFAULT_MIX: List[str] = ["gzip", "gcc", "eon", "mcf"]


def _profile(name: str, **kw) -> WorkloadProfile:
    base = dict(
        name=name,
        footprint_kb=32.0,
        num_functions=24,
        avg_block_size=5.5,
        hard_branch_fraction=0.12,
        loop_fraction=0.18,
        avg_loop_iterations=12.0,
        call_fraction=0.10,
        load_fraction=0.24,
        store_fraction=0.10,
        dl1_miss_rate=0.04,
        l2_data_miss_rate=0.10,
        call_skew=1.6,
        seed=sum(ord(c) for c in name),
    )
    base.update(kw)
    return WorkloadProfile(**base)


#: The twelve SPECint2000 profiles.
#:
#: The dominant knobs are ``footprint_kb`` (static code size),
#: ``avg_loop_iterations`` (how long execution dwells in one place -- low
#: values make the dynamic working set sprawl across the static footprint,
#: high values keep it concentrated) and ``hard_branch_fraction`` (branch
#: predictability).  The values below give dynamic instruction working sets
#: that range from a few KB (gzip, mcf, bzip2) to several tens of KB (gcc,
#: eon, perlbmk, vortex) over a 20K-instruction measurement window, matching
#: the qualitative split the paper relies on.
SPECINT2000_PROFILES: Dict[str, WorkloadProfile] = {
    # Small-footprint, loop-dominated, very predictable.  The one benchmark
    # where the paper's Figure 6 shows CLGP is *not* best.
    "gzip": _profile(
        "gzip", footprint_kb=8.0, num_functions=6, avg_block_size=7.0,
        hard_branch_fraction=0.05, loop_fraction=0.30, avg_loop_iterations=40.0,
        call_fraction=0.04, dl1_miss_rate=0.02,
    ),
    "vpr": _profile(
        "vpr", footprint_kb=24.0, num_functions=18, avg_block_size=5.0,
        hard_branch_fraction=0.16, loop_fraction=0.20, avg_loop_iterations=8.0,
        call_fraction=0.06, dl1_miss_rate=0.035,
    ),
    # Huge instruction footprint, branchy, sprawling control flow.
    "gcc": _profile(
        "gcc", footprint_kb=160.0, num_functions=96, avg_block_size=4.6,
        hard_branch_fraction=0.09, loop_fraction=0.07, avg_loop_iterations=8.0,
        call_fraction=0.06, dl1_miss_rate=0.03,
    ),
    # Tiny code, dominated by pointer-chasing data misses.
    "mcf": _profile(
        "mcf", footprint_kb=4.0, num_functions=5, avg_block_size=5.0,
        hard_branch_fraction=0.14, loop_fraction=0.28, avg_loop_iterations=25.0,
        call_fraction=0.04, dl1_miss_rate=0.20, l2_data_miss_rate=0.45,
    ),
    "crafty": _profile(
        "crafty", footprint_kb=72.0, num_functions=48, avg_block_size=5.8,
        hard_branch_fraction=0.13, loop_fraction=0.12, avg_loop_iterations=5.0,
        call_fraction=0.08, dl1_miss_rate=0.02,
    ),
    "parser": _profile(
        "parser", footprint_kb=48.0, num_functions=36, avg_block_size=4.8,
        hard_branch_fraction=0.15, loop_fraction=0.14, avg_loop_iterations=6.0,
        call_fraction=0.08, dl1_miss_rate=0.04,
    ),
    # C++ ray tracer: many small functions, deep call chains, large
    # footprint -- the benchmark with the paper's biggest CLGP win (20%).
    "eon": _profile(
        "eon", footprint_kb=112.0, num_functions=80, avg_block_size=4.2,
        hard_branch_fraction=0.05, loop_fraction=0.06, avg_loop_iterations=6.0,
        call_fraction=0.10, dl1_miss_rate=0.015,
    ),
    "perlbmk": _profile(
        "perlbmk", footprint_kb=128.0, num_functions=72, avg_block_size=4.8,
        hard_branch_fraction=0.13, loop_fraction=0.10, avg_loop_iterations=4.0,
        call_fraction=0.08, dl1_miss_rate=0.025,
    ),
    # gap and vortex: large footprints, pronounced CLGP wins in the paper.
    "gap": _profile(
        "gap", footprint_kb=96.0, num_functions=64, avg_block_size=5.2,
        hard_branch_fraction=0.11, loop_fraction=0.12, avg_loop_iterations=5.0,
        call_fraction=0.08, dl1_miss_rate=0.02,
    ),
    "vortex": _profile(
        "vortex", footprint_kb=144.0, num_functions=88, avg_block_size=5.4,
        hard_branch_fraction=0.08, loop_fraction=0.08, avg_loop_iterations=4.0,
        call_fraction=0.08, dl1_miss_rate=0.025,
    ),
    # Small, loopy, predictable.
    "bzip2": _profile(
        "bzip2", footprint_kb=10.0, num_functions=8, avg_block_size=6.5,
        hard_branch_fraction=0.07, loop_fraction=0.28, avg_loop_iterations=30.0,
        call_fraction=0.05, dl1_miss_rate=0.03,
    ),
    "twolf": _profile(
        "twolf", footprint_kb=32.0, num_functions=26, avg_block_size=4.8,
        hard_branch_fraction=0.17, loop_fraction=0.16, avg_loop_iterations=7.0,
        call_fraction=0.06, dl1_miss_rate=0.06,
    ),
}


def profile_for(name: str) -> WorkloadProfile:
    """Return the profile for a SPECint2000 benchmark name.

    Raises ``KeyError`` for unknown names (with the valid names listed).
    """
    try:
        return SPECINT2000_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; valid names: {', '.join(SPECINT2000_NAMES)}"
        ) from None


def profiles_for(names: Iterable[str]) -> List[WorkloadProfile]:
    """Profiles for several benchmark names, in the given order."""
    return [profile_for(n) for n in names]
