"""Basic-block dictionary: static program knowledge for wrong-path fetch.

The paper's simulator keeps "a separate basic block dictionary in which we
have the information of all static instructions (type, source/target
registers). That allows for prefetching even along wrong paths, as well as
performing speculative lookups and updates of the branch predictor."

This module provides the equivalent: given *any* instruction address the
front-end may speculatively fetch from (including addresses reached only on
mispredicted paths), it answers

* which basic block contains the address,
* what the instruction classes in that block are,
* where the static successors of the block are (fall-through and taken
  target),

so the decoupled front-end can keep generating fetch requests down a wrong
path until the mispredicted branch resolves.  Addresses that fall outside
the program (e.g. a garbled predicted target) are modelled as runs of
straight-line ALU code, mirroring how a real machine would happily fetch
whatever bytes live there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .cfg import BasicBlock, ControlFlowGraph
from .isa import INSTRUCTION_BYTES, BranchKind, InstrClass


@dataclass(frozen=True)
class StaticBlockView:
    """A read-only view of the static code at some address.

    ``start`` may be in the middle of a :class:`BasicBlock` (the front-end
    can land anywhere after a mispredicted target); ``size`` counts the
    instructions from ``start`` to the end of the underlying block.
    """

    start: int
    size: int
    kind: BranchKind
    taken_target: Optional[int]
    taken_probability: float
    instr_classes: tuple
    synthetic: bool = False  #: True when the address is outside the program

    @property
    def fall_through(self) -> int:
        return self.start + self.size * INSTRUCTION_BYTES

    @property
    def terminator_addr(self) -> int:
        return self.start + (self.size - 1) * INSTRUCTION_BYTES

    @property
    def ends_in_branch(self) -> bool:
        return self.kind is not BranchKind.NONE


#: Size (instructions) of the fabricated straight-line blocks returned for
#: addresses outside the known program.
_SYNTHETIC_BLOCK_SIZE = 8


class BasicBlockDictionary:
    """Address -> static block information, tolerant of arbitrary addresses."""

    def __init__(self, cfg: ControlFlowGraph):
        self._cfg = cfg
        # The CFG is immutable and views are frozen, so both lookups are
        # memoized: the front-end resolves the same handful of addresses
        # millions of times across a sweep.
        self._view_cache: Dict[int, StaticBlockView] = {}
        self._classes_cache: Dict[Tuple[int, int], tuple] = {}
        self._load_probs_cache: Dict[Tuple[int, int], tuple] = {}
        #: Wrong-path walk results, shared by every prediction unit built on
        #: this dictionary (see PredictionUnit._wrong_path_block).
        self.wrong_path_cache: Dict[Tuple[int, int], tuple] = {}

    def view_at(self, addr: int) -> StaticBlockView:
        """Static view of the code starting at ``addr``.

        If ``addr`` is inside a known block, the view covers the remainder
        of that block.  Otherwise a synthetic straight-line block is
        fabricated (marked ``synthetic=True``).
        """
        addr = addr - (addr % INSTRUCTION_BYTES)
        cached = self._view_cache.get(addr)
        if cached is not None:
            return cached
        view = self._view_at_uncached(addr)
        self._view_cache[addr] = view
        return view

    def _view_at_uncached(self, addr: int) -> StaticBlockView:
        block = self._cfg.block_containing(addr)
        if block is None:
            return StaticBlockView(
                start=addr,
                size=_SYNTHETIC_BLOCK_SIZE,
                kind=BranchKind.NONE,
                taken_target=None,
                taken_probability=0.0,
                instr_classes=tuple([InstrClass.ALU] * _SYNTHETIC_BLOCK_SIZE),
                synthetic=True,
            )
        offset = (addr - block.addr) // INSTRUCTION_BYTES
        remaining = block.size - offset
        return StaticBlockView(
            start=addr,
            size=remaining,
            kind=block.kind,
            taken_target=block.taken_target,
            taken_probability=block.taken_probability,
            instr_classes=tuple(block.instr_classes[offset:]),
            synthetic=False,
        )

    def classes_for(self, start: int, length: int) -> tuple:
        """Instruction classes of the ``length`` instructions at ``start``
        (walking across basic blocks), memoized across fetch blocks."""
        key = (start, length)
        cached = self._classes_cache.get(key)
        if cached is not None:
            return cached
        classes = []
        addr = start
        while len(classes) < length:
            view = self.view_at(addr)
            take = min(view.size, length - len(classes))
            classes.extend(view.instr_classes[:take])
            addr = view.start + take * INSTRUCTION_BYTES
        result = tuple(classes[:length])
        self._classes_cache[key] = result
        return result

    def load_miss_probs(self, start: int, length: int) -> tuple:
        """Per-load L1-D miss probabilities within the span, in order.

        One entry per LOAD-class instruction among the ``length``
        instructions at ``start``.  Memoized: the sampling layer's
        functional passes (load counting during skips, exact miss-hash
        replay during profiling) ask about the same loop-body spans
        millions of times.
        """
        key = (start, length)
        cached = self._load_probs_cache.get(key)
        if cached is not None:
            return cached
        probs = []
        for offset, cls in enumerate(self.classes_for(start, length)):
            if cls is InstrClass.LOAD:
                block = self._cfg.block_containing(
                    start + offset * INSTRUCTION_BYTES
                )
                probs.append(
                    block.load_miss_probability if block is not None else 0.0
                )
        result = tuple(probs)
        self._load_probs_cache[key] = result
        return result

    def loads_for(self, start: int, length: int) -> int:
        """Number of LOAD-class instructions in the span (memoized)."""
        return len(self.load_miss_probs(start, length))

    def block_at(self, addr: int) -> Optional[BasicBlock]:
        """The real block starting exactly at ``addr`` (None if absent)."""
        return self._cfg.block_at(addr)

    @property
    def cfg(self) -> ControlFlowGraph:
        return self._cfg
