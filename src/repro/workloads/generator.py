"""Synthetic SPECint2000-like program generator.

The paper evaluates on 300M-instruction SimPoint slices of the twelve
SPECint2000 benchmarks compiled for Alpha.  Those traces are proprietary
and unavailable here, so this module builds *synthetic programs* whose
static and dynamic properties are controlled per benchmark:

* static code footprint (drives I-cache miss rate vs. cache size),
* basic-block size distribution (drives fetch-block/stream length),
* branch bias mix (drives branch-prediction accuracy, which the paper's
  CLGP mechanism depends on),
* loop structure and call structure (drive temporal reuse of lines and
  return-address-stack behaviour),
* data-side load miss probabilities (drive L2-bus contention).

A program is a :class:`~repro.workloads.cfg.ControlFlowGraph`; dynamic
execution of it is produced by :class:`repro.workloads.trace.ProgramWalker`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from .cfg import BasicBlock, ControlFlowGraph, Function
from .isa import INSTRUCTION_BYTES, BranchKind, InstrClass

#: Base address at which synthetic code is laid out.  Chosen non-zero so a
#: zero address can be used as a sentinel.
CODE_BASE_ADDRESS = 0x0010_0000

#: Gap (bytes) left between consecutive functions, so that functions start
#: on fresh cache lines and the footprint knob is honest.
FUNCTION_ALIGNMENT = 64


@dataclass
class WorkloadProfile:
    """Knobs describing one synthetic benchmark.

    The defaults describe a "medium" integer benchmark; the SPECint2000
    presets in :mod:`repro.workloads.spec2000` override them per name.
    """

    name: str = "generic"
    #: Target static code footprint in kilobytes.  The generator creates
    #: functions until the footprint is reached.
    footprint_kb: float = 32.0
    #: Number of callable functions (besides main).  Larger numbers spread
    #: execution over more code.
    num_functions: int = 24
    #: Mean basic-block size in instructions (SPECint averages ~5-6).
    avg_block_size: float = 5.5
    #: Minimum / maximum block size (instructions).
    min_block_size: int = 2
    max_block_size: int = 14
    #: Fraction of conditional branches that are hard to predict
    #: (taken probability near 0.5).  The rest are strongly biased.
    hard_branch_fraction: float = 0.12
    #: Taken probability used for "biased" branches (mirrored for
    #: biased-not-taken branches).
    biased_taken_probability: float = 0.95
    #: Probability that a block inside a function body starts a loop.
    loop_fraction: float = 0.18
    #: Mean loop trip count (geometric distribution via back-edge bias).
    avg_loop_iterations: float = 12.0
    #: Probability that a block is a call to another function.
    call_fraction: float = 0.10
    #: Fraction of non-terminator instructions that are loads / stores.
    load_fraction: float = 0.24
    store_fraction: float = 0.10
    #: Probability a dynamic load misses the L1 data cache, and probability
    #: that such a miss also misses in L2 (goes to main memory).
    dl1_miss_rate: float = 0.04
    l2_data_miss_rate: float = 0.10
    #: How concentrated dynamic execution is.  1.0 = all functions equally
    #: likely to be called; larger values skew calls towards the first few
    #: functions (small hot working set inside a big static footprint).
    call_skew: float = 1.6
    #: RNG seed used both for program construction and dynamic execution.
    seed: int = 1

    def scaled(self, **overrides) -> "WorkloadProfile":
        """Return a copy with selected fields overridden."""
        from dataclasses import replace

        return replace(self, **overrides)


@dataclass
class _FunctionPlan:
    """Internal plan for one function prior to address assignment."""

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)


class ProgramGenerator:
    """Builds a synthetic :class:`ControlFlowGraph` from a profile."""

    def __init__(self, profile: WorkloadProfile):
        self.profile = profile
        self._rng = random.Random(profile.seed)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self) -> ControlFlowGraph:
        """Generate the whole program CFG."""
        profile = self.profile
        target_bytes = int(profile.footprint_kb * 1024)

        # Decide how large each function should be so that the sum of
        # function sizes approximates the requested footprint.  The last
        # eighth of the functions are small "leaf" helpers: they are the
        # only call targets of the other functions, which keeps the work per
        # outer iteration proportional to the footprint (execution sprawls
        # over the whole program instead of re-descending deep call trees).
        n_funcs = max(1, profile.num_functions)
        n_leaves = max(1, n_funcs // 8) if n_funcs > 2 else 0
        n_body = n_funcs - n_leaves
        weights = [self._rng.uniform(0.5, 1.5) for _ in range(n_funcs)]
        for i in range(n_body, n_funcs):
            weights[i] *= 0.3  # leaves are small helpers
        total_w = sum(weights)
        func_bytes = [max(256, int(target_bytes * w / total_w)) for w in weights]

        functions: List[Function] = []
        cursor = CODE_BASE_ADDRESS
        leaf_names = [f"f{i}" for i in range(n_body, n_funcs)]

        # main() is the outer driver loop: it calls every body function once
        # per iteration, so each outer iteration traverses a large part of
        # the static footprint (how much of each function actually executes,
        # and how long execution dwells there, is governed by the
        # per-function loop/branch structure).
        main_func, cursor = self._build_main(
            "main", cursor, callee_names=[f"f{i}" for i in range(n_body)],
        )
        functions.append(main_func)

        for i in range(n_funcs):
            callees = leaf_names if i < n_body else []
            func, cursor = self._build_function(
                f"f{i}", cursor, size_budget_bytes=func_bytes[i],
                callee_names=callees, is_main=False,
            )
            functions.append(func)

        cfg = ControlFlowGraph(functions, entry_function="main")
        self._resolve_call_targets(cfg, functions)
        cfg.validate()
        return cfg

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _block_size(self) -> int:
        """Draw a basic-block size (instructions) around the profile mean."""
        p = self.profile
        # Geometric-ish distribution clipped to [min, max]; mean close to
        # ``avg_block_size`` for typical parameters.
        mean = max(p.min_block_size + 0.5, p.avg_block_size)
        lam = 1.0 / max(1e-6, mean - p.min_block_size + 1)
        size = p.min_block_size + int(self._rng.expovariate(lam))
        return max(p.min_block_size, min(p.max_block_size, size))

    def _instr_classes(self, size: int, terminator: InstrClass) -> List[InstrClass]:
        """Assign classes to the ``size`` instructions of a block."""
        p = self.profile
        classes: List[InstrClass] = []
        for _ in range(size - 1):
            r = self._rng.random()
            if r < p.load_fraction:
                classes.append(InstrClass.LOAD)
            elif r < p.load_fraction + p.store_fraction:
                classes.append(InstrClass.STORE)
            else:
                classes.append(InstrClass.ALU)
        classes.append(terminator)
        return classes

    def _conditional_bias(self) -> float:
        """Draw a taken probability for a conditional branch."""
        p = self.profile
        if self._rng.random() < p.hard_branch_fraction:
            # Hard branch: close to 50/50.
            return self._rng.uniform(0.35, 0.65)
        # Biased branch: mostly taken or mostly not taken.
        bias = p.biased_taken_probability
        return bias if self._rng.random() < 0.5 else 1.0 - bias

    def _build_main(self, name: str, start_addr: int, callee_names: List[str]):
        """Build the driver function: one call block per callee, interleaved
        with small conditional blocks and extra calls to a small "hot"
        subset of callees (real programs concentrate a large share of their
        dynamic instructions in a few hot functions even when the overall
        footprint is big), ending with a jump back to the entry.

        Returns ``(Function, next_free_address)``.
        """
        plan: List[dict] = []
        hot = callee_names[: max(1, len(callee_names) // 6)]
        for callee in callee_names:
            plan.append({"size": max(2, self._block_size() // 2),
                         "role": "call", "callee": callee})
            if hot and self._rng.random() < 0.5:
                plan.append({"size": max(2, self._block_size() // 2),
                             "role": "call", "callee": self._rng.choice(hot)})
            if self._rng.random() < 0.5:
                plan.append({
                    "size": max(2, self._block_size() // 2),
                    "role": "cond",
                    "taken_probability": self._conditional_bias(),
                })
        plan.append({"size": 3, "role": "loopback"})
        return self._materialise_function(name, start_addr, plan)

    def _build_function(
        self,
        name: str,
        start_addr: int,
        size_budget_bytes: int,
        callee_names: List[str],
        is_main: bool,
    ):
        """Build one function laid out from ``start_addr``.

        Returns ``(Function, next_free_address)``.
        """
        p = self.profile
        plan: List[dict] = []  # block descriptors prior to address assignment
        budget_instrs = max(8, size_budget_bytes // INSTRUCTION_BYTES)
        produced = 0

        while produced < budget_instrs:
            r = self._rng.random()
            size = self._block_size()
            if r < p.loop_fraction and produced > 0:
                # A small loop: a body block followed by a conditional
                # back-edge block.
                body_size = size
                latch_size = max(2, self._block_size() // 2)
                plan.append({"size": body_size, "role": "loop_body"})
                # The latch branches back to the body with probability
                # matching the requested trip count.
                trip = max(2.0, self._rng.gauss(p.avg_loop_iterations,
                                                p.avg_loop_iterations / 3))
                back_prob = 1.0 - 1.0 / trip
                plan.append({
                    "size": latch_size,
                    "role": "loop_latch",
                    "taken_probability": min(0.98, max(0.5, back_prob)),
                })
                produced += body_size + latch_size
            elif r < p.loop_fraction + p.call_fraction and callee_names:
                callee = self._rng.choice(self._skewed_callees(callee_names))
                plan.append({"size": size, "role": "call", "callee": callee})
                produced += size
            else:
                plan.append({
                    "size": size,
                    "role": "cond",
                    "taken_probability": self._conditional_bias(),
                })
                produced += size

        # Terminator block of the function.
        if is_main:
            plan.append({"size": 3, "role": "loopback"})
        else:
            plan.append({"size": 3, "role": "return"})
        return self._materialise_function(name, start_addr, plan)

    def _materialise_function(self, name: str, start_addr: int, plan: List[dict]):
        """Assign addresses to a block plan and build the BasicBlock objects.

        Conditional branches skip forward a few blocks (if/else style); loop
        latches jump back to their body block; the ``loopback`` role jumps to
        the function entry (used by main's outer driver loop).
        Returns ``(Function, next_free_address)``.
        """
        p = self.profile
        addrs: List[int] = []
        cursor = start_addr
        for desc in plan:
            addrs.append(cursor)
            cursor += desc["size"] * INSTRUCTION_BYTES
        end_of_function = cursor

        blocks: List[BasicBlock] = []
        for idx, desc in enumerate(plan):
            role = desc["role"]
            addr = addrs[idx]
            size = desc["size"]
            if role == "loop_body":
                # Plain fall-through into the latch.
                block = BasicBlock(
                    addr=addr, size=size, kind=BranchKind.NONE,
                    instr_classes=self._instr_classes(size, InstrClass.ALU),
                    load_miss_probability=p.dl1_miss_rate,
                )
            elif role == "loop_latch":
                block = BasicBlock(
                    addr=addr, size=size, kind=BranchKind.CONDITIONAL,
                    taken_target=addrs[idx - 1],
                    taken_probability=desc["taken_probability"],
                    instr_classes=self._instr_classes(size, InstrClass.BRANCH_COND),
                    load_miss_probability=p.dl1_miss_rate,
                )
            elif role == "call":
                block = BasicBlock(
                    addr=addr, size=size, kind=BranchKind.CALL,
                    taken_target=None,  # resolved later once callee addr known
                    instr_classes=self._instr_classes(size, InstrClass.CALL),
                    load_miss_probability=p.dl1_miss_rate,
                )
                block._callee_name = desc["callee"]  # type: ignore[attr-defined]
            elif role == "cond":
                # Forward branch over 1..4 following blocks (bounded by the
                # function end); the not-taken path falls through.
                skip = self._rng.randint(1, 4)
                target_idx = min(idx + 1 + skip, len(plan) - 1)
                block = BasicBlock(
                    addr=addr, size=size, kind=BranchKind.CONDITIONAL,
                    taken_target=addrs[target_idx],
                    taken_probability=desc["taken_probability"],
                    instr_classes=self._instr_classes(size, InstrClass.BRANCH_COND),
                    load_miss_probability=p.dl1_miss_rate,
                )
            elif role == "loopback":
                # main()'s final block: jump back to the function entry so
                # dynamic execution never runs off the end.
                block = BasicBlock(
                    addr=addr, size=size, kind=BranchKind.UNCONDITIONAL,
                    taken_target=start_addr,
                    instr_classes=self._instr_classes(size, InstrClass.BRANCH_UNCOND),
                    load_miss_probability=p.dl1_miss_rate,
                )
            elif role == "return":
                block = BasicBlock(
                    addr=addr, size=size, kind=BranchKind.RETURN,
                    instr_classes=self._instr_classes(size, InstrClass.RETURN),
                    load_miss_probability=p.dl1_miss_rate,
                )
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown role {role}")
            blocks.append(block)

        func = Function(name=name, entry=start_addr, blocks=blocks)
        # Align the next function start.
        next_addr = end_of_function
        if next_addr % FUNCTION_ALIGNMENT:
            next_addr += FUNCTION_ALIGNMENT - (next_addr % FUNCTION_ALIGNMENT)
        return func, next_addr

    def _skewed_callees(self, callees: List[str]) -> List[str]:
        """Return a callee list with earlier functions repeated so calls are
        skewed toward a hot subset (controlled by ``call_skew``)."""
        skew = max(1.0, self.profile.call_skew)
        weighted: List[str] = []
        for i, name in enumerate(callees):
            copies = max(1, int(round(len(callees) / (skew ** i + 1))))
            weighted.extend([name] * copies)
        return weighted or callees

    @staticmethod
    def _resolve_call_targets(cfg: ControlFlowGraph, functions: List[Function]) -> None:
        """Fill in CALL block targets now that all function entries are known."""
        entries = {f.name: f.entry for f in functions}
        for func in functions:
            for block in func.blocks:
                if block.kind is BranchKind.CALL:
                    callee = getattr(block, "_callee_name", None)
                    if callee is None or callee not in entries:
                        # No valid callee (e.g. last function has none):
                        # degrade to a plain fall-through block.
                        block.kind = BranchKind.NONE
                        block.instr_classes[-1] = InstrClass.ALU
                        block.taken_target = None
                    else:
                        block.taken_target = entries[callee]


def generate_program(profile: WorkloadProfile) -> ControlFlowGraph:
    """Convenience wrapper: build the CFG for ``profile``."""
    return ProgramGenerator(profile).generate()
