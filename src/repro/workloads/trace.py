"""Dynamic execution of synthetic programs (trace production).

Two layers:

* :class:`ProgramWalker` -- executes the CFG block by block along the
  *correct* path (the committed path): it resolves conditional branch
  outcomes with a seeded RNG, maintains the real call stack for returns,
  and yields :class:`DynamicBlock` records.  Given the same profile/seed
  the walk is identical across simulator configurations, so every fetch
  engine is evaluated on exactly the same dynamic instruction stream
  (mirroring trace-driven simulation in the paper).

* :class:`CorrectPathOracle` -- a buffered cursor over the walker used by
  the decoupled front-end.  It can *peek* the upcoming fetch stream
  (sequential instructions up to and including the next taken control
  transfer), *advance* by a number of instructions (possibly stopping in
  the middle of a stream after a misprediction), and report the current
  correct-path fetch address.
"""

from __future__ import annotations

import random
from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .bbdict import BasicBlockDictionary
from .cfg import ControlFlowGraph
from .generator import WorkloadProfile, generate_program
from .isa import INSTRUCTION_BYTES, BranchKind, span_lines

#: Maximum call depth tracked by the walker; deeper calls fall through (the
#: generator builds an acyclic call graph so this is only a safety net).
MAX_CALL_DEPTH = 64

#: Upper bound on fetch-stream length in instructions (the stream predictor
#: cannot encode arbitrarily long streams; 64 instructions = 256 bytes,
#: i.e. 4 cache lines, matching stream-fetch literature).
MAX_STREAM_INSTRUCTIONS = 64


@dataclass(frozen=True, slots=True)
class DynamicBlock:
    """One dynamic execution of a basic block on the correct path."""

    addr: int               #: first instruction address
    size: int               #: number of instructions executed in this block
    kind: BranchKind        #: terminator kind
    taken: bool             #: whether the terminator transferred control
    next_addr: int          #: address executed immediately after this block
    terminator_addr: int    #: address of the final (branch) instruction

    @property
    def end_addr(self) -> int:
        return self.addr + self.size * INSTRUCTION_BYTES


@dataclass(frozen=True, slots=True)
class ActualStream:
    """The true upcoming fetch stream on the correct path.

    A *stream* is a run of sequential instructions starting at ``start``
    and ending either at a taken control transfer (``ends_taken=True``) or
    at the stream-length cap.  ``next_addr`` is where the correct path
    continues after the stream.
    """

    start: int
    length: int                 #: instructions in the stream
    next_addr: int
    ends_taken: bool
    terminator_kind: BranchKind
    terminator_addr: int

    @property
    def end_addr(self) -> int:
        return self.start + self.length * INSTRUCTION_BYTES


class ProgramWalker:
    """Executes a CFG along the correct path, one basic block at a time."""

    def __init__(self, cfg: ControlFlowGraph, seed: int = 0):
        self._cfg = cfg
        self._rng = random.Random(seed ^ 0x5F3759DF)
        self._pc = cfg.entry_address
        self._call_stack: List[int] = []
        self._blocks_executed = 0
        self._instructions_executed = 0

    @property
    def instructions_executed(self) -> int:
        return self._instructions_executed

    @property
    def blocks_executed(self) -> int:
        return self._blocks_executed

    def snapshot(self) -> tuple:
        """Capture the walker state so an identical continuation can be
        forked later (used by BlockStream's bounded shared prefix)."""
        return (
            self._pc,
            tuple(self._call_stack),
            self._rng.getstate(),
            self._blocks_executed,
            self._instructions_executed,
        )

    @classmethod
    def from_snapshot(cls, cfg: ControlFlowGraph, state: tuple) -> "ProgramWalker":
        """A new walker that continues exactly where ``snapshot`` was taken."""
        walker = cls(cfg)
        walker._pc = state[0]
        walker._call_stack = list(state[1])
        walker._rng.setstate(state[2])
        walker._blocks_executed = state[3]
        walker._instructions_executed = state[4]
        return walker

    def next_block(self) -> DynamicBlock:
        """Execute one dynamic basic block and return its record."""
        block = self._cfg.block_at(self._pc)
        if block is None:
            # The PC should always land on block starts during correct-path
            # execution; treat a stray PC as a jump back to the entry.
            block = self._cfg.block_at(self._cfg.entry_address)
            self._pc = block.addr

        taken = False
        next_addr = block.fall_through
        kind = block.kind

        if kind is BranchKind.CONDITIONAL:
            taken = self._rng.random() < block.taken_probability
            if taken:
                next_addr = block.taken_target
        elif kind is BranchKind.UNCONDITIONAL:
            taken = True
            next_addr = block.taken_target
        elif kind is BranchKind.CALL:
            taken = True
            if len(self._call_stack) < MAX_CALL_DEPTH:
                self._call_stack.append(block.fall_through)
                next_addr = block.taken_target
            else:
                # Depth cap: skip the call (treated as not taken).
                taken = False
                next_addr = block.fall_through
        elif kind is BranchKind.RETURN:
            taken = True
            if self._call_stack:
                next_addr = self._call_stack.pop()
            else:
                next_addr = self._cfg.entry_address

        record = DynamicBlock(
            addr=block.addr,
            size=block.size,
            kind=kind,
            taken=taken,
            next_addr=next_addr,
            terminator_addr=block.terminator_addr,
        )
        self._pc = next_addr
        self._blocks_executed += 1
        self._instructions_executed += block.size
        return record


@dataclass(frozen=True, slots=True)
class IntervalRecord:
    """One fixed-length slice of the dynamic instruction stream.

    ``block_counts`` maps basic-block start address to the number of
    instructions that block contributed to this interval -- the raw basic
    block vector (BBV) used by SimPoint-style interval selection.  A block
    execution that straddles an interval boundary is split exactly, so
    every interval except possibly the last holds ``length`` instructions.
    """

    index: int                  #: interval number (0-based)
    start_instruction: int      #: absolute offset of the first instruction
    length: int                 #: instructions in this interval
    block_counts: Dict[int, int]


def iter_intervals(
    walker: ProgramWalker,
    interval_length: int,
    total_instructions: int,
) -> Iterator[IntervalRecord]:
    """Walk the correct path and yield per-interval basic-block vectors.

    The walk is the same deterministic correct path every simulation of
    the workload executes, so interval ``i`` of the profile corresponds
    exactly to instructions ``[i*L, (i+1)*L)`` of a timed run.  The final
    interval may be shorter when ``total_instructions`` is not a multiple
    of ``interval_length``.
    """
    if interval_length <= 0:
        raise ValueError("interval_length must be positive")
    if total_instructions <= 0:
        return
    emitted = 0
    fill = 0
    index = 0
    counts: Dict[int, int] = {}
    while emitted < total_instructions:
        block = walker.next_block()
        addr = block.addr
        size = block.size
        while size > 0 and emitted < total_instructions:
            take = min(size, interval_length - fill,
                       total_instructions - emitted)
            counts[addr] = counts.get(addr, 0) + take
            fill += take
            emitted += take
            size -= take
            if fill == interval_length or emitted == total_instructions:
                yield IntervalRecord(
                    index=index,
                    start_instruction=emitted - fill,
                    length=fill,
                    block_counts=counts,
                )
                index += 1
                counts = {}
                fill = 0


class BlockStream:
    """Lazily-materialised dynamic block sequence with a bounded prefix.

    The correct-path walk is deterministic per profile seed, so the block
    sequence can be computed once and *shared* between every oracle of a
    workload (each simulation run, the warm-up walk, ...).  Sharing turns
    the per-run walker cost (RNG draws, CFG lookups, block construction)
    into a one-time cost per workload.

    Only the first ``shared_limit`` blocks are retained (enough for the
    warm-up walk plus typical runs); memory stays bounded no matter how
    many instructions a run simulates.  Beyond the limit, :meth:`get`
    returns ``None`` and the caller continues on a private walker forked
    from :meth:`fork_tail_walker` -- the continuation is bit-identical to
    simply walking further.
    """

    #: Retained blocks (~5 instructions each, so ~330k instructions).
    DEFAULT_SHARED_LIMIT = 1 << 16

    def __init__(self, walker: ProgramWalker,
                 shared_limit: int = DEFAULT_SHARED_LIMIT):
        self._walker = walker
        self._blocks: List[DynamicBlock] = []
        self.shared_limit = shared_limit
        self._tail_state: Optional[tuple] = None

    def get(self, index: int) -> Optional[DynamicBlock]:
        """Block at ``index``, or ``None`` when past the shared prefix."""
        blocks = self._blocks
        if index < len(blocks):
            return blocks[index]
        if index >= self.shared_limit:
            self._materialise(self.shared_limit)
            return None
        self._materialise(index + 1)
        return blocks[index]

    def _materialise(self, count: int) -> None:
        blocks = self._blocks
        next_block = self._walker.next_block
        while len(blocks) < count:
            blocks.append(next_block())
        if len(blocks) >= self.shared_limit and self._tail_state is None:
            self._tail_state = self._walker.snapshot()

    def fork_tail_walker(self) -> ProgramWalker:
        """A private walker positioned right after the shared prefix."""
        self._materialise(self.shared_limit)
        return ProgramWalker.from_snapshot(self._walker._cfg, self._tail_state)

    def __len__(self) -> int:
        return len(self._blocks)


class CompiledTrace:
    """A correct-path walk frozen into compact columnar arrays.

    Compiling replaces the per-process RNG walk (seeded branch draws, CFG
    lookups, :class:`DynamicBlock` construction) with six flat ``array``
    columns -- one machine word (or byte) per dynamic block -- that can
    be pickled to disk once and replayed by every later process.  A
    compiled trace is purely derived data: compiling workload ``W`` for
    ``N`` instructions and walking ``W`` block by block produce the same
    sequence, so array-backed replay is bit-identical to the walk (see
    ``tests/test_artifact_cache.py``).

    ``tail_state`` is the walker snapshot taken right after the last
    compiled block; a consumer that runs past the compiled prefix
    continues on a private walker forked from it, extending the arrays
    in place -- deterministic, so every consumer sees the same sequence
    however far it reads.
    """

    __slots__ = (
        "name", "seed", "compiled_instructions",
        "addr", "size", "kind", "taken", "next_addr", "terminator_addr",
        "_tail_state", "_cfg", "_tail_walker", "_segments",
    )

    def __init__(
        self,
        name: str,
        seed: int,
        compiled_instructions: int,
        addr: array,
        size: array,
        kind: array,
        taken: array,
        next_addr: array,
        terminator_addr: array,
        tail_state: tuple,
    ) -> None:
        self.name = name
        self.seed = seed
        self.compiled_instructions = compiled_instructions
        self.addr = addr
        self.size = size
        self.kind = kind
        self.taken = taken
        self.next_addr = next_addr
        self.terminator_addr = terminator_addr
        self._tail_state = tail_state
        self._cfg: Optional[ControlFlowGraph] = None
        self._tail_walker: Optional[ProgramWalker] = None
        # Derived, process-local (never pickled; __getstate__ is explicit):
        # canonical stream segmentations, keyed by stream cap.
        self._segments: Dict[int, "StreamSegments"] = {}

    def __len__(self) -> int:
        return len(self.size)

    def segments(self, max_stream_instructions: int) -> "StreamSegments":
        """The canonical stream segmentation for the given stream cap.

        Memoized per cap: every batched consumer of this trace shares the
        segment columns (and their derived load counts / line spans).
        """
        segments = self._segments.get(max_stream_instructions)
        if segments is None:
            segments = StreamSegments(self, max_stream_instructions)
            self._segments[max_stream_instructions] = segments
        return segments

    def bind(self, cfg: ControlFlowGraph) -> None:
        """Attach the CFG needed to extend past the compiled prefix."""
        self._cfg = cfg

    def ensure(self, index: int) -> None:
        """Materialise blocks up to and including ``index``."""
        if index < len(self.size):
            return
        walker = self._tail_walker
        if walker is None:
            if self._cfg is None:
                raise RuntimeError(
                    "compiled trace is not bound to a CFG; call "
                    "Workload.attach_compiled_trace first"
                )
            walker = ProgramWalker.from_snapshot(self._cfg, self._tail_state)
            self._tail_walker = walker
        next_block = walker.next_block
        append_addr = self.addr.append
        append_size = self.size.append
        append_kind = self.kind.append
        append_taken = self.taken.append
        append_next = self.next_addr.append
        append_term = self.terminator_addr.append
        while index >= len(self.size):
            block = next_block()
            append_addr(block.addr)
            append_size(block.size)
            append_kind(block.kind)
            append_taken(1 if block.taken else 0)
            append_next(block.next_addr)
            append_term(block.terminator_addr)

    # -- pickling (the live CFG / tail walker never leave the process) --
    def __getstate__(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "compiled_instructions": self.compiled_instructions,
            "addr": self.addr,
            "size": self.size,
            "kind": self.kind,
            "taken": self.taken,
            "next_addr": self.next_addr,
            "terminator_addr": self.terminator_addr,
            "tail_state": self._tail_state,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["name"], state["seed"], state["compiled_instructions"],
            state["addr"], state["size"], state["kind"], state["taken"],
            state["next_addr"], state["terminator_addr"], state["tail_state"],
        )


def compile_trace(workload: "Workload", instructions: int) -> CompiledTrace:
    """Walk ``workload``'s correct path once and freeze >= ``instructions``
    of it into a :class:`CompiledTrace` (the same seeded walk every oracle
    of the workload replays)."""
    walker = ProgramWalker(workload.cfg, seed=workload.profile.seed)
    addr = array("q")
    size = array("q")
    kind = array("b")
    taken = array("b")
    next_addr = array("q")
    terminator_addr = array("q")
    while walker.instructions_executed < instructions:
        block = walker.next_block()
        addr.append(block.addr)
        size.append(block.size)
        kind.append(block.kind)
        taken.append(1 if block.taken else 0)
        next_addr.append(block.next_addr)
        terminator_addr.append(block.terminator_addr)
    trace = CompiledTrace(
        name=workload.profile.name,
        seed=workload.profile.seed,
        compiled_instructions=walker.instructions_executed,
        addr=addr, size=size, kind=kind, taken=taken,
        next_addr=next_addr, terminator_addr=terminator_addr,
        tail_state=walker.snapshot(),
    )
    trace.bind(workload.cfg)
    return trace


class StreamSegments:
    """The canonical fetch-stream segmentation of a :class:`CompiledTrace`.

    Cutting the correct path into fetch streams from instruction 0 with a
    fixed cap yields a *canonical* segmentation: one entry per stream,
    again stored as flat columns.  The batched passes (``sampling.bbv``,
    ``sampling.proxy``, ``simulator.warming``) stride over these columns
    one stream at a time instead of re-deriving each stream block by
    block through ``peek_stream``.

    Alignment: a position produced by consuming whole canonical streams
    is itself a canonical stream start.  Positions reached some other way
    (e.g. a mispredict redirect stopping mid-stream in the timed loop)
    realign after the next *taken*-ended stream, because a capped stream
    never ends exactly at a taken block's terminator (``peek_stream``
    extends through it) -- so every taken-block end the generic walk
    stops at is also a boundary of the from-zero segmentation.

    Each segment row records, besides the :class:`ActualStream` fields,
    the oracle block cursor *after* the stream (``end_index`` /
    ``end_offset``, normalized exactly as ``advance`` would leave it) so
    a batched consumer can jump the oracle in O(1), plus lazily-derived
    per-segment LOAD counts and touched-line spans.
    """

    __slots__ = (
        "trace", "cap", "start_addr", "length", "next_addr", "ends_taken",
        "term_addr", "kind", "start_pos", "end_index", "end_offset",
        "loads", "_lines", "_build_index", "_build_offset", "_build_pos",
    )

    def __init__(self, trace: CompiledTrace, cap: int) -> None:
        if cap <= 0:
            raise ValueError("stream cap must be positive")
        self.trace = trace
        self.cap = cap
        self.start_addr = array("q")
        self.length = array("q")
        self.next_addr = array("q")
        self.ends_taken = array("b")
        self.term_addr = array("q")
        self.kind: List[BranchKind] = []      # effective terminator kind
        self.start_pos = array("q")           # cumulative start position
        self.end_index = array("q")
        self.end_offset = array("q")
        self.loads = array("q")               # lazily filled per bbdict
        self._lines: Dict[int, List[tuple]] = {}   # line_size -> spans
        self._build_index = 0
        self._build_offset = 0
        self._build_pos = 0

    def __len__(self) -> int:
        return len(self.length)

    def ensure_count(self, count: int) -> None:
        """Materialise at least ``count`` segments."""
        while len(self.length) < count:
            self._build_one()

    def aligned_index(self, position: int) -> Optional[int]:
        """Segment index starting exactly at ``position``, else ``None``."""
        while self._build_pos <= position:
            self._build_one()
        index = bisect_right(self.start_pos, position) - 1
        if self.start_pos[index] != position:
            return None
        return index

    def _build_one(self) -> None:
        """Append the next segment, mirroring ``peek_stream`` +
        ``advance(length)`` from the current build cursor."""
        trace = self.trace
        addr_a, size_a, taken_a = trace.addr, trace.size, trace.taken
        ensure = trace.ensure
        cap = self.cap
        idx = self._build_index
        off = self._build_offset
        if idx >= len(size_a):
            ensure(idx)
        start = addr_a[idx] + off * INSTRUCTION_BYTES
        length = 0
        while True:
            if idx >= len(size_a):
                ensure(idx)
            size = size_a[idx]
            taken = taken_a[idx]
            available = size - off
            remaining = cap - length
            if available >= remaining and not (taken and available <= remaining):
                length += remaining
                end_addr = addr_a[idx] + (off + remaining) * INSTRUCTION_BYTES
                next_addr = end_addr
                ends_taken = 0
                kind = BranchKind.NONE
                term = end_addr - INSTRUCTION_BYTES
                if off + remaining == size:
                    end_idx, end_off = idx + 1, 0
                else:
                    end_idx, end_off = idx, off + remaining
                break
            length += available
            if taken:
                next_addr = trace.next_addr[idx]
                ends_taken = 1
                kind = BranchKind(trace.kind[idx])
                term = trace.terminator_addr[idx]
                end_idx, end_off = idx + 1, 0
                break
            if length >= cap:                      # defensive; see peek_stream
                end_addr = addr_a[idx] + size * INSTRUCTION_BYTES
                next_addr = end_addr
                ends_taken = 0
                kind = BranchKind.NONE
                term = end_addr - INSTRUCTION_BYTES
                end_idx, end_off = idx + 1, 0
                break
            idx += 1
            off = 0
        self.start_addr.append(start)
        self.length.append(length)
        self.next_addr.append(next_addr)
        self.ends_taken.append(ends_taken)
        self.term_addr.append(term)
        self.kind.append(kind)
        self.start_pos.append(self._build_pos)
        self.end_index.append(end_idx)
        self.end_offset.append(end_off)
        self._build_pos += length
        self._build_index = end_idx
        self._build_offset = end_off

    # -- lazily derived per-segment data --------------------------------
    def ensure_loads(self, bbdict: BasicBlockDictionary, count: int) -> None:
        """Fill per-segment LOAD-class instruction counts up to ``count``."""
        self.ensure_count(count)
        loads = self.loads
        loads_for = bbdict.loads_for
        start_addr = self.start_addr
        length = self.length
        for i in range(len(loads), count):
            loads.append(loads_for(start_addr[i], length[i]))

    def lines(self, line_size: int, count: int) -> List[tuple]:
        """Per-segment touched-line tuples for ``line_size``, through
        ``count`` segments (grown on demand, memoized per line size)."""
        spans = self._lines.get(line_size)
        if spans is None:
            spans = self._lines[line_size] = []
        if len(spans) < count:
            self.ensure_count(count)
            start_addr = self.start_addr
            length = self.length
            for i in range(len(spans), count):
                spans.append(
                    tuple(span_lines(start_addr[i], length[i], line_size))
                )
        return spans


class CompiledPathOracle:
    """Array-backed drop-in for :class:`CorrectPathOracle`.

    Replays a :class:`CompiledTrace` with the same public API and the
    same semantics (``current_address`` / ``peek_stream`` / ``advance`` /
    ``consumed_instructions``) but reads the columnar arrays directly:
    no RNG draws, no CFG lookups and no :class:`DynamicBlock` objects on
    the timed or functional hot paths.
    """

    __slots__ = (
        "_trace", "_addr", "_size", "_kind", "_taken", "_next", "_term",
        "_index", "_offset", "_consumed_instructions",
        "max_stream_instructions",
    )

    def __init__(
        self,
        trace: CompiledTrace,
        max_stream_instructions: int = MAX_STREAM_INSTRUCTIONS,
    ) -> None:
        self._trace = trace
        # array identities are stable (extension appends in place).
        self._addr = trace.addr
        self._size = trace.size
        self._kind = trace.kind
        self._taken = trace.taken
        self._next = trace.next_addr
        self._term = trace.terminator_addr
        self._index = 0
        self._offset = 0
        self._consumed_instructions = 0
        self.max_stream_instructions = max_stream_instructions

    # -- public API (mirrors CorrectPathOracle) -------------------------
    @property
    def consumed_instructions(self) -> int:
        return self._consumed_instructions

    def current_address(self) -> int:
        index = self._index
        if index >= len(self._size):
            self._trace.ensure(index)
        return self._addr[index] + self._offset * INSTRUCTION_BYTES

    def peek_stream(self, max_instructions: Optional[int] = None) -> ActualStream:
        cap = max_instructions or self.max_stream_instructions
        addr_a, size_a, taken_a = self._addr, self._size, self._taken
        ensure = self._trace.ensure
        idx = self._index
        off = self._offset
        if idx >= len(size_a):
            ensure(idx)
        start = addr_a[idx] + off * INSTRUCTION_BYTES
        length = 0
        while True:
            if idx >= len(size_a):
                ensure(idx)
            size = size_a[idx]
            taken = taken_a[idx]
            available = size - off
            remaining = cap - length
            if available >= remaining and not (taken and available <= remaining):
                length += remaining
                end_addr = addr_a[idx] + (off + remaining) * INSTRUCTION_BYTES
                return ActualStream(
                    start=start, length=length, next_addr=end_addr,
                    ends_taken=False, terminator_kind=BranchKind.NONE,
                    terminator_addr=end_addr - INSTRUCTION_BYTES,
                )
            length += available
            if taken:
                return ActualStream(
                    start=start, length=length, next_addr=self._next[idx],
                    ends_taken=True, terminator_kind=BranchKind(self._kind[idx]),
                    terminator_addr=self._term[idx],
                )
            if length >= cap:
                end_addr = addr_a[idx] + size * INSTRUCTION_BYTES
                return ActualStream(
                    start=start, length=length, next_addr=end_addr,
                    ends_taken=False, terminator_kind=BranchKind.NONE,
                    terminator_addr=end_addr - INSTRUCTION_BYTES,
                )
            idx += 1
            off = 0

    def segments(
        self, max_stream_instructions: Optional[int] = None
    ) -> StreamSegments:
        """Canonical segmentation of the backing trace (shared across all
        consumers of the trace) for the given stream cap."""
        return self._trace.segments(
            max_stream_instructions or self.max_stream_instructions
        )

    def _set_position(
        self, index: int, offset: int, consumed_instructions: int
    ) -> None:
        """Jump the cursor in O(1) (batched stride in ``simulator.warming``).

        The coordinates must come from :class:`StreamSegments`, whose
        ``end_index``/``end_offset`` are normalized exactly as a
        block-by-block ``advance`` to the same position would leave them.
        """
        self._index = index
        self._offset = offset
        self._consumed_instructions = consumed_instructions

    def advance(self, n_instructions: int) -> None:
        if n_instructions < 0:
            raise ValueError("cannot advance by a negative amount")
        size_a = self._size
        ensure = self._trace.ensure
        index = self._index
        offset = self._offset
        remaining = n_instructions
        while remaining > 0:
            if index >= len(size_a):
                ensure(index)
            available = size_a[index] - offset
            if remaining < available:
                offset += remaining
                remaining = 0
            else:
                remaining -= available
                index += 1
                offset = 0
        self._index = index
        self._offset = offset
        self._consumed_instructions += n_instructions


class CorrectPathOracle:
    """Buffered cursor over the correct-path dynamic block stream.

    The front-end uses it to (a) learn what the correct path actually does
    (for comparing against branch predictions and for training the
    predictor) and (b) know where to resume after a misprediction
    resolves.  The cursor is a ``(block index, instruction offset)`` pair
    into a (possibly shared) :class:`BlockStream`, so the front-end can
    stop mid-block when a predicted stream is shorter than the actual one.
    """

    def __init__(self, source,
                 max_stream_instructions: int = MAX_STREAM_INSTRUCTIONS):
        if isinstance(source, BlockStream):
            self._stream = source
        else:   # a ProgramWalker (the historical constructor signature)
            self._stream = BlockStream(source)
        self._index = 0          # index of the current block in the stream
        self._offset = 0         # instruction offset within the current block
        self._consumed_instructions = 0
        self.max_stream_instructions = max_stream_instructions
        # Private continuation past the stream's bounded shared prefix: a
        # forked walker plus a compacted window (memory stays O(window)
        # however long the run is).
        self._tail_walker: Optional[ProgramWalker] = None
        self._tail_base = 0
        self._tail_window: List[DynamicBlock] = []

    # -- materialisation helpers ---------------------------------------
    def _ensure(self, index: int) -> DynamicBlock:
        block = self._stream.get(index)
        if block is not None:
            return block
        if self._tail_walker is None:
            self._tail_walker = self._stream.fork_tail_walker()
            self._tail_base = self._stream.shared_limit
        relative = index - self._tail_base
        window = self._tail_window
        next_block = self._tail_walker.next_block
        while len(window) <= relative:
            window.append(next_block())
        return window[relative]

    def _compact_tail(self) -> None:
        """Drop fully-consumed blocks from the private continuation window."""
        consumed = self._index - self._tail_base
        if consumed > 128:
            drop = consumed - 64
            del self._tail_window[:drop]
            self._tail_base += drop

    # -- public API ------------------------------------------------------
    @property
    def consumed_instructions(self) -> int:
        """Total correct-path instructions the front-end has moved past."""
        return self._consumed_instructions

    def current_address(self) -> int:
        """Address of the next correct-path instruction to be fetched."""
        block = self._ensure(self._index)
        return block.addr + self._offset * INSTRUCTION_BYTES

    def peek_stream(self, max_instructions: Optional[int] = None) -> ActualStream:
        """The actual stream that begins at :meth:`current_address`.

        Does not move the cursor.
        """
        cap = max_instructions or self.max_stream_instructions
        start = self.current_address()
        length = 0
        idx = self._index
        off = self._offset
        while True:
            block = self._ensure(idx)
            available = block.size - off
            remaining = cap - length
            if available >= remaining and not (
                block.taken and available <= remaining
            ):
                # The cap ends the stream inside (or exactly at the end of)
                # this block without reaching a taken terminator.
                length += remaining
                end_addr = block.addr + (off + remaining) * INSTRUCTION_BYTES
                return ActualStream(
                    start=start, length=length, next_addr=end_addr,
                    ends_taken=False, terminator_kind=BranchKind.NONE,
                    terminator_addr=end_addr - INSTRUCTION_BYTES,
                )
            length += available
            if block.taken:
                return ActualStream(
                    start=start, length=length, next_addr=block.next_addr,
                    ends_taken=True, terminator_kind=block.kind,
                    terminator_addr=block.terminator_addr,
                )
            if length >= cap:
                end_addr = block.addr + block.size * INSTRUCTION_BYTES
                return ActualStream(
                    start=start, length=length, next_addr=end_addr,
                    ends_taken=False, terminator_kind=BranchKind.NONE,
                    terminator_addr=end_addr - INSTRUCTION_BYTES,
                )
            idx += 1
            off = 0

    def advance(self, n_instructions: int) -> None:
        """Move the cursor forward by ``n_instructions`` along the correct
        path (used after emitting a fetch block for those instructions)."""
        if n_instructions < 0:
            raise ValueError("cannot advance by a negative amount")
        remaining = n_instructions
        while remaining > 0:
            block = self._ensure(self._index)
            available = block.size - self._offset
            if remaining < available:
                self._offset += remaining
                remaining = 0
            else:
                remaining -= available
                self._index += 1
                self._offset = 0
        self._consumed_instructions += n_instructions
        if self._tail_walker is not None:
            self._compact_tail()


@dataclass
class Workload:
    """A fully-built workload: program, dictionary, and trace machinery."""

    profile: WorkloadProfile
    cfg: ControlFlowGraph
    bbdict: BasicBlockDictionary
    #: Shared correct-path block stream, materialised lazily and reused by
    #: every oracle (the walk is deterministic per seed).
    _block_stream: Optional[BlockStream] = None
    #: Optional compiled trace (loaded from the artifact cache); when
    #: attached, oracles replay its columnar arrays instead of walking.
    _compiled_trace: Optional[CompiledTrace] = None

    def attach_compiled_trace(self, trace: CompiledTrace) -> None:
        """Route every future oracle through ``trace`` (must belong to
        this workload's profile/seed; the replay is bit-identical to the
        walker-backed stream)."""
        if (trace.name, trace.seed) != (self.profile.name, self.profile.seed):
            raise ValueError(
                f"compiled trace for {trace.name!r}/seed {trace.seed} does "
                f"not belong to workload {self.profile.name!r}/seed "
                f"{self.profile.seed}"
            )
        trace.bind(self.cfg)
        self._compiled_trace = trace

    def new_oracle(self):
        """A fresh correct-path oracle (identical stream for identical
        profile seeds, regardless of simulator configuration)."""
        if self._compiled_trace is not None:
            return CompiledPathOracle(self._compiled_trace)
        if self._block_stream is None:
            self._block_stream = BlockStream(
                ProgramWalker(self.cfg, seed=self.profile.seed)
            )
        return CorrectPathOracle(self._block_stream)

    def iter_intervals(
        self, interval_length: int, total_instructions: int
    ) -> Iterator[IntervalRecord]:
        """Per-interval basic-block vectors of this workload's correct path.

        Uses a private walker (same seed as every simulation run), so the
        shared block stream's memory stays untouched by profiling.
        """
        walker = ProgramWalker(self.cfg, seed=self.profile.seed)
        return iter_intervals(walker, interval_length, total_instructions)

    @property
    def name(self) -> str:
        return self.profile.name


def build_workload(profile: WorkloadProfile) -> Workload:
    """Generate the program for ``profile`` and wrap it as a workload."""
    cfg = generate_program(profile)
    return Workload(profile=profile, cfg=cfg, bbdict=BasicBlockDictionary(cfg))
