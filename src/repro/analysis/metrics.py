"""Metrics helpers: speedups, harmonic means, budget comparisons."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..simulator.stats import SimulationResult, harmonic_mean, speedup

__all__ = [
    "harmonic_mean",
    "sampling_error_report",
    "speedup",
    "speedup_table",
    "crossover_size",
    "budget_equivalent_size",
]


def speedup_table(
    ipc_by_label: Mapping[str, float], baseline_label: str
) -> Dict[str, float]:
    """Speedup of every configuration over ``baseline_label``."""
    if baseline_label not in ipc_by_label:
        raise KeyError(f"baseline {baseline_label!r} missing from results")
    base = ipc_by_label[baseline_label]
    return {label: speedup(ipc, base) for label, ipc in ipc_by_label.items()}


def crossover_size(
    series_a: Mapping[int, float], series_b: Mapping[int, float]
) -> Optional[int]:
    """Smallest size at which series A reaches (or exceeds) series B.

    Both series map cache size -> IPC.  Returns ``None`` when A never
    reaches B on the common sizes.
    """
    common = sorted(set(series_a) & set(series_b))
    for size in common:
        if series_a[size] >= series_b[size]:
            return size
    return None


def sampling_error_report(
    full_series: Mapping[str, Mapping[int, float]],
    sampled_series: Mapping[str, Mapping[int, float]],
) -> Dict[str, Dict[str, float]]:
    """Per-scheme accuracy of a sampled figure sweep versus the full sweep.

    Both inputs are figure-shaped ``{scheme: {l1_size: hmean_ipc}}``
    mappings (e.g. :meth:`repro.api.Session.figure5_series` run with
    and without sampled execution).  For each scheme the report gives the
    signed relative error per common size plus summary statistics::

        {scheme: {"mean_abs_rel_error": ..., "max_abs_rel_error": ...,
                  "per_size": {size: rel_error}}}
    """
    report: Dict[str, Dict[str, float]] = {}
    for scheme, full_row in full_series.items():
        sampled_row = sampled_series.get(scheme, {})
        per_size: Dict[int, float] = {}
        for size, full_ipc in full_row.items():
            if size not in sampled_row or not full_ipc:
                continue
            per_size[size] = sampled_row[size] / full_ipc - 1.0
        if not per_size:
            continue
        abs_errors = [abs(e) for e in per_size.values()]
        report[scheme] = {
            "mean_abs_rel_error": sum(abs_errors) / len(abs_errors),
            "max_abs_rel_error": max(abs_errors),
            "per_size": per_size,
        }
    return report


def budget_equivalent_size(
    target_ipc: float, series: Mapping[int, float]
) -> Optional[int]:
    """Smallest cache size in ``series`` whose IPC reaches ``target_ipc``.

    Used for the paper's "2.5 KB of CLGP budget matches a 16 KB pipelined
    cache" style statements.  Returns ``None`` if no size reaches it.
    """
    for size in sorted(series):
        if series[size] >= target_ipc:
            return size
    return None
