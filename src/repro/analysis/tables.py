"""Data for the paper's tables (1, 2 and 3)."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..memory.latency import L1_SIZES_BYTES, L2_SIZE_BYTES, table3_rows
from ..simulator.config import SimulationConfig
from ..technology import table1_rows

__all__ = ["table1", "table2", "table3", "L1_SIZES_BYTES", "L2_SIZE_BYTES"]


def table1() -> List[Dict[str, float]]:
    """Paper Table 1: SIA technology roadmap."""
    return table1_rows()


def table2(config: Optional[SimulationConfig] = None) -> Dict[str, str]:
    """Paper Table 2: baseline simulation parameters, derived from the
    default :class:`SimulationConfig` so documentation cannot drift from
    the implementation."""
    cfg = config or SimulationConfig()
    return {
        "Fetch/Issue/Commit": f"{cfg.fetch_width} instructions",
        "RUU Size": f"{cfg.ruu_size} instructions",
        "Branch Predictor": (
            f"{cfg.stream_predictor_base_entries // 1024}K+"
            f"{cfg.stream_predictor_history_entries // 1024}K-entry stream pred., "
            "1 cycle lat."
        ),
        "RAS": f"{cfg.ras_entries}-entry",
        "Pipeline depth": f"{cfg.pipeline_depth} stages",
        "L1 I-Cache": (
            f"{cfg.l1_associativity}-way asc., 1 port, {cfg.line_size}B/line"
        ),
        "L1 D-Cache": "32KB, 2-way, 1-cyc lat, 2 ports, 64B/line (probabilistic model)",
        "L2 Cache": (
            f"{cfg.l2_size_bytes // (1 << 20)}MB, {cfg.l2_associativity}-way asc., "
            f"1 port, {cfg.l2_line_size}B/line"
        ),
        "Mem. lat.": f"{cfg.memory_latency} cycles",
        "L2 bus BW": "64B/cycle",
        "Pre. Buffer / L0 cache": f"{cfg.line_size}B/line",
    }


def table3() -> Dict[str, Dict[int, int]]:
    """Paper Table 3: cache latencies per size and technology."""
    return table3_rows()
