"""Deprecated free-function figure builders.

.. deprecated:: 1.1
    The data-series builders live in :mod:`repro.api.experiments` and
    are called through :class:`repro.api.Session`
    (``session.figure5_series(...)``), which owns the jobs/pool/cache
    policy the old ``jobs=``/``sampled=`` kwargs re-wired per call.

Every ``figureN_series`` function below (plus ``headline_speedups`` and
``ablation_series``) still works with its historical signature: it emits
a ``DeprecationWarning`` naming its replacement and delegates to the
default :class:`~repro.api.session.Session`, so results are identical to
the façade path.  Returned shapes are unchanged:

* Figures 1, 2(b), 4(b), 5(a), 5(b): ``{scheme: {l1_size: hmean_ipc}}``
* Figure 6: ``{benchmark: {scheme: ipc}}``
* Figures 7(a), 7(b), 8: ``{scheme: {l1_size: {source: fraction}}}``
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..api.experiments import DEFAULT_SWEEP_SIZES   # re-export (legacy name)

__all__ = [
    "DEFAULT_SWEEP_SIZES",
    "ablation_series",
    "figure1_series",
    "figure2_series",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "figure7_series",
    "figure8_series",
    "headline_speedups",
]


def _delegate(name: str, jobs: int, sampled: bool, sampling, kwargs):
    """Warn and forward one legacy builder call to the default session."""
    from ..api._deprecation import warn_legacy
    from ..api.session import default_session
    from ..api.spec import ExecutionOptions
    from ..simulator.runner import resolve_jobs

    warn_legacy(f"repro.analysis.figures.{name}",
                f"repro.api.Session.{name}", stacklevel=4)
    # resolve_jobs keeps the legacy contract: None/0 = all cores (inside
    # ExecutionOptions a None would mean "inherit the session default").
    options = ExecutionOptions(jobs=resolve_jobs(jobs), sampled=sampled,
                               sampling=sampling)
    return getattr(default_session(), name)(options=options, **kwargs)


def figure1_series(
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, float]]:
    return _delegate("figure1_series", jobs, sampled, sampling, dict(
        technology=technology, l1_sizes=l1_sizes, benchmarks=benchmarks,
        max_instructions=max_instructions))


def figure2_series(
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, float]]:
    return _delegate("figure2_series", jobs, sampled, sampling, dict(
        technology=technology, l1_sizes=l1_sizes, benchmarks=benchmarks,
        max_instructions=max_instructions))


def figure4_series(
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, float]]:
    return _delegate("figure4_series", jobs, sampled, sampling, dict(
        technology=technology, l1_sizes=l1_sizes, benchmarks=benchmarks,
        max_instructions=max_instructions))


def figure5_series(
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, float]]:
    return _delegate("figure5_series", jobs, sampled, sampling, dict(
        technology=technology, l1_sizes=l1_sizes, benchmarks=benchmarks,
        max_instructions=max_instructions))


def figure6_series(
    technology: object = "0.045um",
    l1_size_bytes: int = 8192,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[str, float]]:
    return _delegate("figure6_series", jobs, sampled, sampling, dict(
        technology=technology, l1_size_bytes=l1_size_bytes,
        benchmarks=benchmarks, max_instructions=max_instructions))


def figure7_series(
    with_l0: bool,
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    return _delegate("figure7_series", jobs, sampled, sampling, dict(
        with_l0=with_l0, technology=technology, l1_sizes=l1_sizes,
        benchmarks=benchmarks, max_instructions=max_instructions))


def figure8_series(
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    return _delegate("figure8_series", jobs, sampled, sampling, dict(
        technology=technology, l1_sizes=l1_sizes, benchmarks=benchmarks,
        max_instructions=max_instructions))


def headline_speedups(
    l1_size_bytes: int = 4096,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[str, float]]:
    """CLGP-vs-FDP and CLGP-vs-pipelined-baseline speedups at both nodes."""
    return _delegate("headline_speedups", jobs, sampled, sampling, dict(
        l1_size_bytes=l1_size_bytes, benchmarks=benchmarks,
        max_instructions=max_instructions))


def ablation_series(
    technology: object = "0.045um",
    l1_size_bytes: int = 4096,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
) -> Dict[str, float]:
    """Harmonic-mean IPC of CLGP+L0 with individual design choices reverted."""
    return _delegate("ablation_series", jobs, False, None, dict(
        technology=technology, l1_size_bytes=l1_size_bytes,
        benchmarks=benchmarks, max_instructions=max_instructions))
