"""Data-series builders for every figure in the paper's evaluation.

Each ``figureN_series`` function declares the simulations it needs as a
flat :class:`~repro.simulator.plan.ExperimentPlan` of typed tasks, runs
the plan through the one executor (``jobs=N`` fans the whole grid out
over a process pool; ``sampled=True`` switches every task to SimPoint
style sampled simulation), and regroups the results into plain
dictionaries shaped like the corresponding figure:

* Figures 1, 2(b), 4(b), 5(a), 5(b): ``{scheme: {l1_size: hmean_ipc}}``
* Figure 6: ``{benchmark: {scheme: ipc}}``
* Figures 7(a), 7(b): ``{scheme: {l1_size: {source: fraction}}}``
* Figure 8: ``{scheme: {l1_size: {source: fraction}}}``

The benchmark harness prints these series (see ``benchmarks/``), the
examples reuse them, and EXPERIMENTS.md records representative outputs.
All functions accept ``benchmarks`` / ``l1_sizes`` / ``max_instructions``
overrides so the pure-Python simulation cost can be tuned.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..simulator.plan import ExperimentPlan
from ..simulator.presets import (
    FIGURE1_SCHEMES,
    FIGURE5_SCHEMES,
    FIGURE6_SCHEMES,
    paper_config,
)
from ..simulator.stats import (
    aggregate_fetch_sources,
    aggregate_prefetch_sources,
    harmonic_mean_ipc,
)
from ..workloads.spec2000 import DEFAULT_MIX, SPECINT2000_NAMES

#: Default (reduced) L1 size sweep used when the caller does not override
#: it; the paper sweeps nine sizes from 256 B to 64 KB.
DEFAULT_SWEEP_SIZES: Sequence[int] = (256, 1024, 4096, 16384, 65536)


def _scheme_size_plan(
    name: str,
    schemes: Sequence[str],
    technology: object,
    l1_sizes: Sequence[int],
    benchmarks: Sequence[str],
    max_instructions: int,
    sampled: bool = False,
    sampling=None,
    **config_overrides,
) -> ExperimentPlan:
    """Flat (scheme x size x benchmark) task grid keyed by (scheme, size)."""
    plan = ExperimentPlan(name)
    for scheme in schemes:
        for size in l1_sizes:
            config = paper_config(
                scheme,
                l1_size_bytes=size,
                technology=technology,
                max_instructions=max_instructions,
                **config_overrides,
            )
            for benchmark in benchmarks:
                plan.add(config, benchmark, max_instructions,
                         key=(scheme, size),
                         sampled=sampled, sampling=sampling)
    return plan


def _scheme_sweep(
    name: str,
    schemes: Sequence[str],
    technology: object,
    l1_sizes: Sequence[int],
    benchmarks: Sequence[str],
    max_instructions: int,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
    **config_overrides,
) -> Dict[str, Dict[int, float]]:
    """Harmonic-mean IPC for each scheme at each L1 size."""
    plan = _scheme_size_plan(
        name, schemes, technology, l1_sizes, benchmarks, max_instructions,
        sampled=sampled, sampling=sampling, **config_overrides,
    )
    series: Dict[str, Dict[int, float]] = {scheme: {} for scheme in schemes}
    for (scheme, size), hmean in plan.run(jobs=jobs).hmean_by_key().items():
        series[scheme][size] = hmean
    return series


# ----------------------------------------------------------------------
# Figure 1: effect of the L1 I-cache latency (no prefetching)
# ----------------------------------------------------------------------
def figure1_series(
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, float]]:
    return _scheme_sweep(
        "figure1",
        FIGURE1_SCHEMES,
        technology,
        list(l1_sizes or DEFAULT_SWEEP_SIZES),
        list(benchmarks or DEFAULT_MIX),
        max_instructions,
        jobs=jobs, sampled=sampled, sampling=sampling,
    )


# ----------------------------------------------------------------------
# Figure 2(b): FDP with and without an L0 cache
# ----------------------------------------------------------------------
def figure2_series(
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, float]]:
    return _scheme_sweep(
        "figure2",
        ("FDP", "FDP+L0"),
        technology,
        list(l1_sizes or DEFAULT_SWEEP_SIZES),
        list(benchmarks or DEFAULT_MIX),
        max_instructions,
        jobs=jobs, sampled=sampled, sampling=sampling,
    )


# ----------------------------------------------------------------------
# Figure 4(b): CLGP with and without an L0 cache
# ----------------------------------------------------------------------
def figure4_series(
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, float]]:
    return _scheme_sweep(
        "figure4",
        ("CLGP", "CLGP+L0"),
        technology,
        list(l1_sizes or DEFAULT_SWEEP_SIZES),
        list(benchmarks or DEFAULT_MIX),
        max_instructions,
        jobs=jobs, sampled=sampled, sampling=sampling,
    )


# ----------------------------------------------------------------------
# Figure 5: the six main configurations at both technology nodes
# ----------------------------------------------------------------------
def figure5_series(
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, float]]:
    return _scheme_sweep(
        "figure5",
        FIGURE5_SCHEMES,
        technology,
        list(l1_sizes or DEFAULT_SWEEP_SIZES),
        list(benchmarks or DEFAULT_MIX),
        max_instructions,
        jobs=jobs, sampled=sampled, sampling=sampling,
    )


# ----------------------------------------------------------------------
# Figure 6: per-benchmark IPC for the best configurations (8KB, 0.045um)
# ----------------------------------------------------------------------
def figure6_series(
    technology: object = "0.045um",
    l1_size_bytes: int = 8192,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[str, float]]:
    names = list(benchmarks or SPECINT2000_NAMES)
    plan = ExperimentPlan("figure6")
    for scheme in FIGURE6_SCHEMES:
        config = paper_config(
            scheme,
            l1_size_bytes=l1_size_bytes,
            technology=technology,
            max_instructions=max_instructions,
        )
        for benchmark in names:
            plan.add(config, benchmark, max_instructions, key=(scheme,),
                     sampled=sampled, sampling=sampling)
    out: Dict[str, Dict[str, float]] = {name: {} for name in names}
    hmean: Dict[str, float] = {}
    for (scheme,), results in plan.run(jobs=jobs).by_key().items():
        for result in results:
            out[result.workload][scheme] = result.ipc
        hmean[scheme] = harmonic_mean_ipc(results)
    out["HMEAN"] = hmean
    return out


# ----------------------------------------------------------------------
# Figure 7: fetch-source distribution (FDP vs CLGP, with/without L0)
# ----------------------------------------------------------------------
def figure7_series(
    with_l0: bool,
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    schemes = ("FDP+L0", "CLGP+L0") if with_l0 else ("FDP", "CLGP")
    plan = _scheme_size_plan(
        "figure7",
        schemes, technology,
        list(l1_sizes or DEFAULT_SWEEP_SIZES),
        list(benchmarks or DEFAULT_MIX),
        max_instructions,
        sampled=sampled, sampling=sampling,
    )
    out: Dict[str, Dict[int, Dict[str, float]]] = {s: {} for s in schemes}
    for (scheme, size), results in plan.run(jobs=jobs).by_key().items():
        out[scheme][size] = aggregate_fetch_sources(results)
    return out


# ----------------------------------------------------------------------
# Figure 8: prefetch-source distribution (FDP vs CLGP)
# ----------------------------------------------------------------------
def figure8_series(
    technology: object = "0.045um",
    l1_sizes: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    schemes = ("FDP", "CLGP")
    plan = _scheme_size_plan(
        "figure8",
        schemes, technology,
        list(l1_sizes or DEFAULT_SWEEP_SIZES),
        list(benchmarks or DEFAULT_MIX),
        max_instructions,
        sampled=sampled, sampling=sampling,
    )
    out: Dict[str, Dict[int, Dict[str, float]]] = {s: {} for s in schemes}
    for (scheme, size), results in plan.run(jobs=jobs).by_key().items():
        out[scheme][size] = aggregate_prefetch_sources(results)
    return out


# ----------------------------------------------------------------------
# Headline speedups (Section 5.1)
# ----------------------------------------------------------------------
def headline_speedups(
    l1_size_bytes: int = 4096,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, Dict[str, float]]:
    """CLGP-vs-FDP and CLGP-vs-pipelined-baseline speedups at both nodes.

    Returns ``{tech_name: {"clgp_over_fdp": x, "clgp_over_base_pipelined": y,
    "ipc": {scheme: ipc}}}``.
    """
    names = list(benchmarks or DEFAULT_MIX)
    plan = ExperimentPlan("headline-speedups")
    for technology in ("0.09um", "0.045um"):
        for scheme in ("CLGP+L0+PB16", "FDP+L0+PB16", "base-pipelined"):
            config = paper_config(
                scheme, l1_size_bytes=l1_size_bytes, technology=technology,
                max_instructions=max_instructions,
            )
            for benchmark in names:
                plan.add(config, benchmark, max_instructions,
                         key=(technology, scheme),
                         sampled=sampled, sampling=sampling)
    ipc_by_key = plan.run(jobs=jobs).hmean_by_key()
    out: Dict[str, Dict[str, float]] = {}
    for technology in ("0.09um", "0.045um"):
        ipc = {
            scheme: ipc_by_key[(technology, scheme)]
            for scheme in ("CLGP+L0+PB16", "FDP+L0+PB16", "base-pipelined")
        }
        out[technology] = {
            "clgp_over_fdp": ipc["CLGP+L0+PB16"] / ipc["FDP+L0+PB16"] - 1.0
            if ipc["FDP+L0+PB16"] else 0.0,
            "clgp_over_base_pipelined": ipc["CLGP+L0+PB16"] / ipc["base-pipelined"] - 1.0
            if ipc["base-pipelined"] else 0.0,
            "ipc": ipc,
        }
    return out


# ----------------------------------------------------------------------
# CLGP design-choice ablations (DESIGN.md section 5)
# ----------------------------------------------------------------------
def ablation_series(
    technology: object = "0.045um",
    l1_size_bytes: int = 4096,
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 20_000,
    jobs: int = 1,
) -> Dict[str, float]:
    """Harmonic-mean IPC of CLGP+L0 with individual design choices reverted."""
    names = list(benchmarks or DEFAULT_MIX)
    variants = {
        "CLGP+L0 (full)": {},
        "CLGP+L0 free-on-use": {"clgp_free_on_use": True},
        "CLGP+L0 copy-to-cache": {"clgp_copy_to_cache": True},
        "CLGP+L0 with filtering": {"clgp_use_filtering": True},
        "FDP+L0 (reference)": None,
    }
    plan = ExperimentPlan("ablations")
    for label, overrides in variants.items():
        if overrides is None:
            config = paper_config(
                "FDP+L0", l1_size_bytes=l1_size_bytes, technology=technology,
                max_instructions=max_instructions,
            )
        else:
            config = paper_config(
                "CLGP+L0", l1_size_bytes=l1_size_bytes, technology=technology,
                max_instructions=max_instructions, **overrides,
            )
        for benchmark in names:
            plan.add(config, benchmark, max_instructions, key=(label,))
    return {
        key[0]: hmean
        for key, hmean in plan.run(jobs=jobs).hmean_by_key().items()
    }
