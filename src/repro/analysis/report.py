"""Plain-text report formatting for figure/table data.

The benchmark harness and the CLI print these; the format mirrors the
paper's presentation (sizes across the columns, one row per scheme, and
stacked source-distribution rows for Figures 7/8).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..memory.hierarchy import FETCH_SOURCES


def _size_label(size: int) -> str:
    if size >= 1024 and size % 1024 == 0:
        return f"{size // 1024}KB"
    return f"{size}B"


def format_ipc_sweep(
    series: Mapping[str, Mapping[int, float]], title: str
) -> str:
    """Format ``{scheme: {size: ipc}}`` as a text table."""
    sizes = sorted({size for per in series.values() for size in per})
    header = f"{'configuration':>22s} | " + " ".join(
        f"{_size_label(s):>8s}" for s in sizes
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for scheme, per_size in series.items():
        cells = " ".join(
            f"{per_size.get(size, float('nan')):8.3f}" for size in sizes
        )
        lines.append(f"{scheme:>22s} | {cells}")
    return "\n".join(lines)


def format_per_benchmark(
    series: Mapping[str, Mapping[str, float]], title: str
) -> str:
    """Format ``{benchmark: {scheme: ipc}}`` (Figure 6 style)."""
    schemes = sorted({s for per in series.values() for s in per})
    header = f"{'benchmark':>10s} | " + " ".join(f"{s:>16s}" for s in schemes)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for benchmark, per_scheme in series.items():
        cells = " ".join(
            f"{per_scheme.get(s, float('nan')):16.3f}" for s in schemes
        )
        lines.append(f"{benchmark:>10s} | {cells}")
    return "\n".join(lines)


def format_source_distribution(
    series: Mapping[str, Mapping[int, Mapping[str, float]]], title: str
) -> str:
    """Format ``{scheme: {size: {source: fraction}}}`` (Figures 7/8 style)."""
    lines = [title, "=" * max(len(title), 40)]
    for scheme, per_size in series.items():
        lines.append(f"\n  {scheme}")
        header = f"    {'size':>8s} | " + " ".join(
            f"{src:>6s}" for src in FETCH_SOURCES
        )
        lines.append(header)
        lines.append("    " + "-" * (len(header) - 4))
        for size in sorted(per_size):
            dist = per_size[size]
            cells = " ".join(
                f"{100 * dist.get(src, 0.0):5.1f}%" for src in FETCH_SOURCES
            )
            lines.append(f"    {_size_label(size):>8s} | {cells}")
    return "\n".join(lines)


def format_key_value_table(rows: Mapping[str, object], title: str) -> str:
    """Format a two-column parameter table (Table 2 style)."""
    width = max(len(str(k)) for k in rows) if rows else 10
    lines = [title, "=" * max(len(title), 30)]
    for key, value in rows.items():
        lines.append(f"  {str(key):<{width}s} : {value}")
    return "\n".join(lines)


def format_latency_table(
    table: Mapping[str, Mapping[int, int]], title: str = "Cache access latencies"
) -> str:
    """Format Table 3: ``{tech: {size: cycles}}``."""
    sizes = sorted({size for row in table.values() for size in row})
    header = f"{'technology':>12s} | " + " ".join(
        f"{_size_label(s):>6s}" for s in sizes
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for tech, row in table.items():
        cells = " ".join(f"{row.get(size, 0):6d}" for size in sizes)
        lines.append(f"{tech:>12s} | {cells}")
    return "\n".join(lines)


def format_sampling_errors(
    report: Mapping[str, Mapping[str, object]],
    title: str = "Sampled-vs-full accuracy (hmean IPC relative error)",
) -> str:
    """Format :func:`repro.analysis.metrics.sampling_error_report` output."""
    sizes = sorted({
        size for row in report.values() for size in row["per_size"]
    })
    header = (f"{'configuration':>22s} | " +
              " ".join(f"{_size_label(s):>8s}" for s in sizes) +
              f" | {'mean':>7s} {'max':>7s}")
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for scheme, row in report.items():
        per_size = row["per_size"]
        cells = " ".join(
            f"{100 * per_size[s]:+7.2f}%" if s in per_size else " " * 8
            for s in sizes
        )
        lines.append(
            f"{scheme:>22s} | {cells} | "
            f"{100 * row['mean_abs_rel_error']:6.2f}% "
            f"{100 * row['max_abs_rel_error']:6.2f}%"
        )
    return "\n".join(lines)


def format_speedups(headline: Mapping[str, Mapping[str, object]]) -> str:
    """Format the headline speedups produced by
    :meth:`repro.api.Session.headline_speedups`."""
    lines = ["Headline speedups (4KB L1, pipelined pre-buffers)", "=" * 50]
    for tech, data in headline.items():
        lines.append(
            f"  {tech}: CLGP vs FDP {100 * data['clgp_over_fdp']:+.1f}%   "
            f"CLGP vs base-pipelined {100 * data['clgp_over_base_pipelined']:+.1f}%"
        )
        ipc = data.get("ipc", {})
        if ipc:
            lines.append(
                "      IPC: " + ", ".join(f"{k}={v:.3f}" for k, v in ipc.items())
            )
    return "\n".join(lines)
