"""Analysis layer: figure/table data builders, metrics, text reports."""

from .figures import (
    DEFAULT_SWEEP_SIZES,
    ablation_series,
    figure1_series,
    figure2_series,
    figure4_series,
    figure5_series,
    figure6_series,
    figure7_series,
    figure8_series,
    headline_speedups,
)
from .metrics import (
    budget_equivalent_size,
    crossover_size,
    harmonic_mean,
    sampling_error_report,
    speedup,
    speedup_table,
)
from .report import (
    format_ipc_sweep,
    format_key_value_table,
    format_latency_table,
    format_per_benchmark,
    format_sampling_errors,
    format_source_distribution,
    format_speedups,
)
from .tables import table1, table2, table3

__all__ = [
    "DEFAULT_SWEEP_SIZES",
    "ablation_series",
    "budget_equivalent_size",
    "crossover_size",
    "figure1_series",
    "figure2_series",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "figure7_series",
    "figure8_series",
    "format_ipc_sweep",
    "format_key_value_table",
    "format_latency_table",
    "format_per_benchmark",
    "format_sampling_errors",
    "format_source_distribution",
    "format_speedups",
    "harmonic_mean",
    "headline_speedups",
    "sampling_error_report",
    "speedup",
    "speedup_table",
    "table1",
    "table2",
    "table3",
]
