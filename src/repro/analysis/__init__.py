"""Analysis layer: metrics, text reports, table builders.

Figure-series builders live on the :class:`repro.api.Session` façade
(``session.figure5_series()`` and friends, backed by
:mod:`repro.api.experiments`); this layer turns their outputs into
derived metrics and formatted text.
"""

from .metrics import (
    budget_equivalent_size,
    crossover_size,
    harmonic_mean,
    sampling_error_report,
    speedup,
    speedup_table,
)
from .report import (
    format_ipc_sweep,
    format_key_value_table,
    format_latency_table,
    format_per_benchmark,
    format_sampling_errors,
    format_source_distribution,
    format_speedups,
)
from .tables import table1, table2, table3

__all__ = [
    "budget_equivalent_size",
    "crossover_size",
    "format_ipc_sweep",
    "format_key_value_table",
    "format_latency_table",
    "format_per_benchmark",
    "format_sampling_errors",
    "format_source_distribution",
    "format_speedups",
    "harmonic_mean",
    "sampling_error_report",
    "speedup",
    "speedup_table",
    "table1",
    "table2",
    "table3",
]
