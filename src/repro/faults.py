"""Deterministic fault injection: seeded chaos for the execution substrate.

Fault tolerance that is never exercised is fault tolerance that does not
exist.  This module injects the three failure classes the supervised
executor (:mod:`repro.simulator.runner`) and the artifact store
(:mod:`repro.cache.store`) must survive:

* ``worker_kill`` -- a pool worker calls ``os._exit`` at a chunk
  boundary, exactly as if the OS had OOM-killed it mid-sweep,
* ``artifact_corrupt`` -- bytes are truncated or bit-flipped at artifact
  *write* time, exactly as a torn write or bad disk would,
* ``io_error`` -- store I/O raises ``OSError`` (``ENOSPC`` on writes,
  ``EIO`` on reads), exercising the retry/degradation/re-probe path,
* ``write_crash`` -- a writer "dies" between its temp-file write and
  the atomic ``os.replace``, stranding a ``.tmp`` file exactly as a
  ``kill -9`` mid-publish would (``cache gc``/``fsck`` must reap it),
* ``io_delay`` -- every store read/write is delayed by a fixed amount,
  modelling slow or contended storage,
* ``request_drop`` -- the experiment service (:mod:`repro.service`)
  drops an incoming HTTP request without a response, exactly as a
  flaky network or a dying front end would; clients must retry, and
  request dedup must keep the retried submission idempotent.

Decisions are **pure functions of the fault seed and the injection
site's identity** (task index + dispatch attempt for kills, artifact
kind + content key for corruption), derived through SHA-256 -- not from
a stateful RNG -- so a chaos run is reproducible regardless of process
scheduling, pool size or retry interleaving.  A killed chunk's retry is
a *different* identity (the attempt number changed), so with any kill
probability below 1.0 retries converge; a corrupted artifact's identity
never changes, so it stays corrupted for the whole run and every read
must degrade to recompute.

Configuration mirrors the artifact cache: the ``REPRO_FAULTS``
environment variable (e.g.
``REPRO_FAULTS=worker_kill:0.1,artifact_corrupt:0.05,io_delay:20ms,seed:7``),
a process-wide :func:`configure_faults` override (the CLI's ``--faults``;
``ExecutionOptions(faults=...)`` scopes it per submission), and
``_worker_init`` forwarding so pool workers inject the same plan as the
parent.
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Optional, Union

#: Environment variable holding the ambient fault plan.
ENV_FAULTS = "REPRO_FAULTS"

#: Exit status used by injected worker kills (distinguishable from
#: crashes in worker logs; the supervisor treats any loss identically).
WORKER_KILL_EXIT = 117

#: Fault names accepted by :meth:`FaultPlan.parse`.
_PROBABILITY_FAULTS = ("worker_kill", "artifact_corrupt", "io_error",
                       "write_crash", "request_drop")


def _parse_probability(name: str, token: str) -> float:
    try:
        value = float(token)
    except ValueError as exc:
        raise ValueError(f"{name} needs a probability, got {token!r}") from exc
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} probability must be in [0, 1], got {value}")
    return value


def _parse_duration(token: str) -> float:
    """A duration in seconds: plain float seconds, ``20ms`` or ``1.5s``."""
    text = token.strip().lower()
    scale = 1.0
    if text.endswith("ms"):
        text, scale = text[:-2], 1e-3
    elif text.endswith("s"):
        text = text[:-1]
    try:
        value = float(text) * scale
    except ValueError as exc:
        raise ValueError(
            f"io_delay needs a duration (seconds, 'Ns' or 'Nms'), "
            f"got {token!r}") from exc
    if value < 0:
        raise ValueError(f"io_delay must be >= 0, got {token!r}")
    return value


@dataclass(frozen=True)
class FaultPlan:
    """One immutable chaos configuration (hashable, picklable).

    All-zero probabilities/delays (the default) mean "inject nothing";
    :meth:`active` distinguishes that from an explicit plan.
    """

    worker_kill: float = 0.0        #: P(kill worker) per chunk boundary
    artifact_corrupt: float = 0.0   #: P(corrupt payload) per artifact write
    io_error: float = 0.0           #: P(OSError) per store read/write
    write_crash: float = 0.0        #: P(die between write and rename)
    request_drop: float = 0.0       #: P(drop a service request) per attempt
    io_delay: float = 0.0           #: seconds added to every store I/O
    seed: int = 0                   #: decision seed (reproducibility knob)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` spec string.

        Comma-separated ``name:value`` entries; names are
        ``worker_kill``/``artifact_corrupt``/``io_error``/``write_crash``
        (probabilities), ``io_delay`` (duration) and ``seed`` (integer).
        """
        fields = {}
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, sep, token = entry.partition(":")
            name = name.strip()
            if not sep:
                raise ValueError(
                    f"fault entry {entry!r} is not of the form name:value")
            if name in _PROBABILITY_FAULTS:
                fields[name] = _parse_probability(name, token)
            elif name == "io_delay":
                fields[name] = _parse_duration(token)
            elif name == "seed":
                try:
                    fields[name] = int(token)
                except ValueError as exc:
                    raise ValueError(
                        f"seed needs an integer, got {token!r}") from exc
            else:
                raise ValueError(
                    f"unknown fault {name!r}; choose from "
                    f"{_PROBABILITY_FAULTS + ('io_delay', 'seed')}")
        return cls(**fields)

    def active(self) -> bool:
        """Whether this plan injects anything at all."""
        return bool(self.worker_kill or self.artifact_corrupt
                    or self.io_error or self.write_crash
                    or self.request_drop or self.io_delay)

    def describe(self) -> str:
        """Canonical spec string (``FaultPlan.parse`` round-trips it)."""
        parts = []
        if self.worker_kill:
            parts.append(f"worker_kill:{self.worker_kill}")
        if self.artifact_corrupt:
            parts.append(f"artifact_corrupt:{self.artifact_corrupt}")
        if self.io_error:
            parts.append(f"io_error:{self.io_error}")
        if self.write_crash:
            parts.append(f"write_crash:{self.write_crash}")
        if self.request_drop:
            parts.append(f"request_drop:{self.request_drop}")
        if self.io_delay:
            parts.append(f"io_delay:{self.io_delay}s")
        if self.seed:
            parts.append(f"seed:{self.seed}")
        return ",".join(parts)


#: Plan meaning "no injection" (what an empty/unset spec resolves to).
NO_FAULTS = FaultPlan()


def resolve_plan(
    value: Union[FaultPlan, str, None]
) -> Optional[FaultPlan]:
    """Normalise a user-facing faults argument to a plan (or ``None``)."""
    if value is None:
        return None
    if isinstance(value, FaultPlan):
        return value
    return FaultPlan.parse(value)


# ----------------------------------------------------------------------
# process-wide plan resolution (mirrors cache/store configuration)
# ----------------------------------------------------------------------
_override_plan: Optional[FaultPlan] = None
_env_cache: Optional[tuple] = None   # (raw env string, parsed plan)
_IN_WORKER = False


def configure_faults(plan: Union[FaultPlan, str, None]) -> None:
    """Set the process-wide fault plan (``None`` = environment decides)."""
    global _override_plan
    _override_plan = resolve_plan(plan)


def snapshot_faults() -> Optional[FaultPlan]:
    """The current override, for :func:`restore_faults` (session scoping)."""
    return _override_plan


def restore_faults(snapshot: Optional[FaultPlan]) -> None:
    global _override_plan
    _override_plan = snapshot


def active_plan() -> FaultPlan:
    """The fault plan in effect (override first, then ``REPRO_FAULTS``)."""
    global _env_cache
    if _override_plan is not None:
        return _override_plan
    raw = os.environ.get(ENV_FAULTS, "")
    if not raw.strip():
        return NO_FAULTS
    if _env_cache is None or _env_cache[0] != raw:
        _env_cache = (raw, FaultPlan.parse(raw))
    return _env_cache[1]


def mark_worker(value: bool = True) -> None:
    """Flag this process as a pool worker (kills only fire in workers --
    killing the supervisor would defeat the exercise)."""
    global _IN_WORKER
    _IN_WORKER = value


def in_worker() -> bool:
    return _IN_WORKER


# ----------------------------------------------------------------------
# deterministic decisions
# ----------------------------------------------------------------------
def _decision(seed: int, site: str, *material) -> float:
    """A reproducible uniform draw in [0, 1) for one injection site.

    Pure function of (seed, site, material): independent of process,
    scheduling and call order, so a fixed-seed chaos run makes identical
    decisions everywhere.
    """
    text = "\x1f".join([str(seed), site] + [repr(m) for m in material])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def maybe_kill_worker(*identity) -> None:
    """Die (``os._exit``) at a chunk boundary if the plan says so.

    ``identity`` should include the dispatch attempt so retries of a
    killed chunk draw fresh decisions and eventually get through.
    No-op outside pool workers.
    """
    plan = active_plan()
    if not plan.worker_kill or not _IN_WORKER:
        return
    if _decision(plan.seed, "worker_kill", *identity) < plan.worker_kill:
        os._exit(WORKER_KILL_EXIT)


def corrupt_artifact(kind: str, key: str, payload: bytes) -> bytes:
    """Deterministically damage an artifact payload at write time.

    Per (kind, key) the plan decides whether -- and how -- to corrupt:
    either truncate to half length (a torn write) or flip one bit (rot).
    The decision never changes for a given key, so a corrupted artifact
    stays corrupted: every later read must detect it and recompute.
    """
    plan = active_plan()
    if not plan.artifact_corrupt or not payload:
        return payload
    if _decision(plan.seed, "artifact_corrupt", kind, key) \
            >= plan.artifact_corrupt:
        return payload
    mode = _decision(plan.seed, "corrupt_mode", kind, key)
    if mode < 0.5:
        return payload[: len(payload) // 2]
    offset = int(_decision(plan.seed, "corrupt_offset", kind, key)
                 * len(payload))
    flipped = bytearray(payload)
    flipped[offset] ^= 0x40
    return bytes(flipped)


def maybe_io_error(op: str, kind: str, key: str) -> None:
    """Raise an ``OSError`` at a store I/O site if the plan says so.

    Writes fail with ``ENOSPC`` (the disk-pressure case the store must
    degrade gracefully on), reads with ``EIO``.  The decision is keyed
    on (op, kind, key), so a doomed artifact stays doomed for the whole
    run: every access must fall back to recompute, and the final output
    must still be byte-identical.
    """
    plan = active_plan()
    if not plan.io_error:
        return
    if _decision(plan.seed, "io_error", op, kind, key) < plan.io_error:
        code = errno.ENOSPC if op == "write" else errno.EIO
        raise OSError(code, os.strerror(code), f"{kind}/{key}")


def maybe_write_crash(kind: str, key: str) -> bool:
    """Whether a writer should "die" between its temp write and the
    atomic rename, stranding the temp file.

    Keyed on (kind, key) like :func:`corrupt_artifact`: a crashing
    publish crashes every time, so the artifact is never cached and the
    orphaned ``.tmp`` litter keeps accumulating until ``gc``/``fsck``
    reaps it -- the worst case the store must stay correct under.
    """
    plan = active_plan()
    if not plan.write_crash:
        return False
    return _decision(plan.seed, "write_crash", kind, key) < plan.write_crash


def maybe_drop_request(*identity) -> bool:
    """Whether the experiment server should drop this request attempt.

    ``identity`` should include a per-request attempt counter (the
    server keys one on the request's method/path/body identity), so a
    retried request draws a fresh decision and -- with any probability
    below 1.0 -- eventually gets through, exactly like killed-chunk
    retries.  Dedup makes the retry idempotent on the server side.
    """
    plan = active_plan()
    if not plan.request_drop:
        return False
    return _decision(plan.seed, "request_drop", *identity) \
        < plan.request_drop


def io_pause() -> None:
    """Sleep for the plan's ``io_delay`` (no-op without one)."""
    delay = active_plan().io_delay
    if delay:
        time.sleep(delay)
