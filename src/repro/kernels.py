"""Batch kernels over :class:`~repro.workloads.trace.CompiledTrace` columns.

``CompiledTrace`` freezes correct-path walks into flat ``array`` columns
(one entry per basic block), and PR 5's stream segmentation extends that
with one entry per *fetch stream*.  This module holds the dependency-free
primitives that consume those columns wholesale instead of block-by-block:

* :func:`grouped_load_miss_counts` -- the deterministic per-load miss
  draws of the proxy base pass, accumulated one chunk at a time instead
  of one float at a time;
* :func:`interval_block_counts` -- interval-boundary slicing of the block
  columns into per-interval basic-block vectors for BBV profiling;
* :class:`TwoLevelLRUReplay` -- a lean two-level LRU cache replay that is
  count-equivalent to the throwaway ``Cache`` pair the proxy feature pass
  builds per call.

Numpy policy: every kernel has a pure-python implementation that is the
reference semantics; when numpy is importable (it is an *optional*
accelerator, never a dependency) a vectorized fast path is used instead.
The two are bit/float-identical -- the miss draws hash 64-bit lattices
whose wraparound arithmetic maps 1:1 onto ``uint64`` vectors, and every
count is an exact integer -- and the differential suite in
``tests/test_kernels.py`` holds them to that.  Set ``REPRO_NO_NUMPY=1``
to force the fallback, and ``REPRO_NO_BATCH=1`` to disable the batched
passes entirely (the block-by-block interpreters remain in place as the
reference implementations).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "numpy_or_none",
    "batch_disabled",
    "grouped_load_miss_counts",
    "interval_block_counts",
    "TwoLevelLRUReplay",
]

_M64 = (1 << 64) - 1
#: splitmix64-style lattice constants; must match ``backend.dcache._hash01``.
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xD1B54A32D192ED03
_MIX_C = 0xBF58476D1CE4E5B9
_L2_SALT = 0x5A5A5A5A


def _probe_numpy():
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - image always ships numpy
        return None
    return numpy


_NP = _probe_numpy()


def numpy_or_none():
    """The numpy module when the fast path is enabled, else ``None``."""
    return _NP


def set_numpy_enabled(enabled: bool) -> bool:
    """Toggle the numpy fast path (test hook); returns the new state."""
    global _NP
    _NP = _probe_numpy() if enabled else None
    return _NP is not None


def batch_disabled() -> bool:
    """True when ``REPRO_NO_BATCH`` forces the block-by-block passes."""
    return bool(os.environ.get("REPRO_NO_BATCH"))


def _hash01(index: int, salt: int) -> float:
    """Scalar reference draw; identical to ``backend.dcache._hash01``."""
    x = (index * _MIX_A + salt * _MIX_B) & _M64
    x ^= x >> 29
    x = (x * _MIX_C) & _M64
    x ^= x >> 32
    return (x & 0xFFFFFFFF) / 2**32


def _hash01_array(np, start_index: int, count: int, salt: int):
    """Vectorized ``_hash01`` over dynamic load indices ``start..start+n``.

    ``uint64`` wraparound reproduces the python ``& _M64`` masking bit for
    bit; the salt product is pre-masked because it is a python int.
    """
    index = np.arange(start_index, start_index + count, dtype=np.uint64)
    x = index * np.uint64(_MIX_A) + np.uint64((salt * _MIX_B) & _M64)
    x ^= x >> np.uint64(29)
    x *= np.uint64(_MIX_C)
    x ^= x >> np.uint64(32)
    return (x & np.uint64(0xFFFFFFFF)).astype(np.float64) / 2**32


def grouped_load_miss_counts(
    chunks: Sequence[Tuple[int, Tuple[float, ...]]],
    group_count: int,
    start_index: int,
    seed: int,
    l2_rate: float,
) -> Tuple[List[int], List[int]]:
    """Accumulate the proxy base pass's deterministic miss draws per group.

    ``chunks`` is the dynamic-order sequence of ``(group, probs)`` pairs
    -- ``probs`` being the per-LOAD miss probabilities of one contiguous
    chunk -- exactly as the block-by-block loop would visit them; the
    dynamic load index therefore runs ``start_index, start_index+1, ...``
    across the concatenation.  Returns per-group L1-D and L2 miss counts.
    """
    d_out = [0] * group_count
    dm_out = [0] * group_count
    np = _NP
    if np is None:
        index = start_index
        l2_salt = seed ^ _L2_SALT
        for group, probs in chunks:
            for miss_prob in probs:
                if _hash01(index, seed) < miss_prob:
                    d_out[group] += 1
                    if _hash01(index, l2_salt) < l2_rate:
                        dm_out[group] += 1
                index += 1
        return d_out, dm_out
    groups: List[int] = []
    counts: List[int] = []
    flat: List[float] = []
    for group, probs in chunks:
        if probs:
            groups.append(group)
            counts.append(len(probs))
            flat.extend(probs)
    total = len(flat)
    if total == 0:
        return d_out, dm_out
    miss = _hash01_array(np, start_index, total, seed) < np.array(
        flat, dtype=np.float64
    )
    if miss.any():
        group_ids = np.repeat(
            np.array(groups, dtype=np.int64), np.array(counts, dtype=np.int64)
        )
        for group, value in zip(*np.unique(group_ids[miss], return_counts=True)):
            d_out[int(group)] = int(value)
        l2_miss = miss & (
            _hash01_array(np, start_index, total, seed ^ _L2_SALT) < l2_rate
        )
        for group, value in zip(*np.unique(group_ids[l2_miss], return_counts=True)):
            dm_out[int(group)] = int(value)
    return d_out, dm_out


def interval_block_counts(
    addrs: Sequence[int],
    sizes: Sequence[int],
    total_instructions: int,
    interval_length: int,
) -> List[Dict[int, int]]:
    """Slice the block columns into per-interval basic-block count vectors.

    Equivalent to draining ``trace.iter_intervals`` over the same dynamic
    block sequence: one dict per interval, keyed by block start address in
    first-occurrence order (BBV pickles hash the dict ordering, so the
    order is part of the contract).  The columns must already cover
    ``total_instructions``.
    """
    np = _NP
    if np is None:
        return _interval_block_counts_python(
            addrs, sizes, total_instructions, interval_length
        )
    sizes_np = np.frombuffer(sizes, dtype=np.int64)
    addrs_np = np.frombuffer(addrs, dtype=np.int64)
    ends = np.cumsum(sizes_np)
    starts = ends - sizes_np
    out: List[Dict[int, int]] = []
    position = 0
    while position < total_instructions:
        end = min(position + interval_length, total_instructions)
        first = int(np.searchsorted(ends, position, side="right"))
        last = int(np.searchsorted(ends, end - 1, side="right"))
        block_addrs = addrs_np[first : last + 1]
        contrib = np.minimum(ends[first : last + 1], end) - np.maximum(
            starts[first : last + 1], position
        )
        unique, first_index, inverse = np.unique(
            block_addrs, return_index=True, return_inverse=True
        )
        sums = np.bincount(inverse, weights=contrib)
        order = np.argsort(first_index, kind="stable")
        out.append({int(unique[j]): int(sums[j]) for j in order})
        position = end
    return out


def _interval_block_counts_python(addrs, sizes, total_instructions, interval_length):
    out: List[Dict[int, int]] = []
    counts: Dict[int, int] = {}
    emitted = 0
    fill = 0
    index = 0
    while emitted < total_instructions:
        addr = addrs[index]
        size = sizes[index]
        index += 1
        while size > 0 and emitted < total_instructions:
            take = min(size, interval_length - fill, total_instructions - emitted)
            counts[addr] = counts.get(addr, 0) + take
            fill += take
            emitted += take
            size -= take
            if fill == interval_length or emitted == total_instructions:
                out.append(counts)
                counts = {}
                fill = 0
    return out


class TwoLevelLRUReplay:
    """Lean L1-I/L2 miss-count replay for the proxy feature pass.

    ``proxy.functional_profile`` builds two throwaway :class:`Cache`
    objects per call only to count fills that miss; the stamp-based LRU
    bookkeeping dominates that loop.  Each cache set here is a plain dict
    used as an ordered LRU (move-to-end on touch, evict the first key):
    because the stamp clock in ``memory.replacement.LRUPolicy`` is
    strictly increasing, insertion order *is* stamp order, so the victim
    choice -- and therefore every hit/miss count -- is identical.  Only
    counts escape this class, never cache state, so the equivalence is
    all that matters.

    The replay mirrors the exact probe/fill sequence of the interpreter
    loop: ``contains(l1)`` then ``contains(l2)`` then ``l2.fill`` then
    ``l1.fill`` -- with the hit-path touches that implies.
    """

    __slots__ = (
        "_l1_sets", "_l1_line", "_l1_nsets", "_l1_assoc",
        "_l2_sets", "_l2_line", "_l2_nsets", "_l2_assoc",
    )

    def __init__(self, l1_size, l1_line, l1_assoc, l2_size, l2_line, l2_assoc):
        self._l1_line, self._l1_nsets, self._l1_assoc = self._geometry(
            l1_size, l1_line, l1_assoc
        )
        self._l2_line, self._l2_nsets, self._l2_assoc = self._geometry(
            l2_size, l2_line, l2_assoc
        )
        self._l1_sets: Dict[int, Dict[int, bool]] = {}
        self._l2_sets: Dict[int, Dict[int, bool]] = {}

    @staticmethod
    def _geometry(size, line_size, associativity):
        # Mirrors Cache.__init__'s normalization: associativity None (or
        # larger than the cache) means fully associative.
        num_lines = max(1, size // line_size)
        if associativity is None or associativity >= num_lines:
            associativity = num_lines
        num_sets = max(1, num_lines // associativity)
        return line_size, num_sets, associativity

    @staticmethod
    def _fill(sets, index, line, associativity) -> bool:
        """One LRU fill; returns True when the line was absent (a miss)."""
        cset = sets.get(index)
        if cset is None:
            cset = sets[index] = {}
        if line in cset:
            del cset[line]
            cset[line] = True
            return False
        if len(cset) >= associativity:
            del cset[next(iter(cset))]
        cset[line] = True
        return True

    def warm(self, lines: Iterable[int]) -> None:
        """Replay a warmup line trace (l1-line-aligned) into both levels."""
        l2_line = self._l2_line
        for line in lines:
            l2_tag = line - line % l2_line
            self._fill(self._l2_sets, (l2_tag // l2_line) % self._l2_nsets,
                       l2_tag, self._l2_assoc)
            self._fill(self._l1_sets, (line // self._l1_line) % self._l1_nsets,
                       line, self._l1_assoc)

    def replay(self, lines: Iterable[int]) -> Tuple[int, int]:
        """Replay fetch lines; returns ``(l1_misses, l2_misses)``."""
        i1 = 0
        i2 = 0
        l1_sets = self._l1_sets
        l1_line = self._l1_line
        l1_nsets = self._l1_nsets
        l1_assoc = self._l1_assoc
        l2_line = self._l2_line
        for line in lines:
            index = (line // l1_line) % l1_nsets
            cset = l1_sets.get(index)
            if cset is None:
                cset = l1_sets[index] = {}
            if line in cset:
                # L1 hit: the interpreter still calls l1.fill -> touch.
                del cset[line]
                cset[line] = True
                continue
            i1 += 1
            l2_tag = line - line % l2_line
            if self._fill(self._l2_sets, (l2_tag // l2_line) % self._l2_nsets,
                          l2_tag, self._l2_assoc):
                i2 += 1
            if len(cset) >= l1_assoc:
                del cset[next(iter(cset))]
            cset[line] = True
        return i1, i2
