"""Functional per-interval cost proxies (control variates for sampling).

The synthetic SPEC workloads are statistically stationary: interval BBVs
barely differ while interval IPC still fluctuates with the particular
branch outcomes, load misses and I-cache misses each interval happens to
draw.  Pure BBV clustering therefore cannot tell expensive intervals from
cheap ones, and with a handful of measured intervals the sampling error
stays at several percent.

This module closes that gap with a *functional* cost model: one cheap
pass over the correct path (no timing) computes, for **every** interval,
event counts that are exact or near-exact images of what the timed run
will do --

* mispredicted streams: the stream predictor is deterministic and trains
  on the same correct-path sequence in both worlds, so replaying
  predict-then-train gives (almost) the timed run's misprediction
  positions,
* L1-D/L2 data misses: the data-cache model hashes the dynamic load
  index, so its decisions can be reproduced exactly,
* L1-I/L2-I demand misses: approximated by replaying the fetch-line
  stream into warm caches (prefetching effects are absent, but the
  *relative* weight across intervals is what matters).

Folding the counts with configuration-derived latency penalties yields a
per-interval proxy of simulated cycles.  Sampling then (a) stratifies the
intervals by proxy so the measured representatives span the cost range
and (b) scales each stratum's proxy mass by the measured-vs-proxy ratio
of its representative -- a classic ratio estimator whose error depends
only on how well the proxy *ranks* intervals, not on its absolute
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .. import kernels
from ..backend.dcache import _hash01
from ..frontend.stream_predictor import StreamPredictor
from ..memory.hierarchy import MemoryHierarchy
from ..simulator.config import SimulationConfig
from ..simulator.warming import get_warmup_artifacts
from ..workloads.isa import INSTRUCTION_BYTES, span_lines
from ..workloads.trace import Workload

#: Baseline cycles-per-instruction term of the proxy.  Only the *relative*
#: spread of the proxy across intervals matters (the ratio estimator
#: absorbs global calibration), but a realistic base keeps the event
#: penalties from dominating artificially.
PROXY_BASE_CPI = 0.3


@dataclass(frozen=True, slots=True)
class IntervalFeatures:
    """Functional event counts for one interval of the correct path."""

    length: int                     #: instructions in the interval
    mispredicted_streams: int
    dl1_misses: int
    l2_data_misses: int
    l1i_misses: int
    l2i_misses: int


@dataclass(frozen=True)
class FunctionalProfile:
    """Per-interval functional features for one (workload, geometry)."""

    workload: str
    seed: int
    interval_length: int
    total_instructions: int
    features: Tuple[IntervalFeatures, ...]

    def __len__(self) -> int:
        return len(self.features)


def feature_key(config: SimulationConfig) -> Tuple:
    """The configuration fields the functional features depend on.

    Engine choice, pre-buffer organisation and back-end parameters do not
    enter the functional pass, so every scheme of a sweep that shares
    cache and predictor geometry shares one profile.
    """
    return (
        config.l1_size_bytes, config.l1_associativity, config.line_size,
        config.l2_size_bytes, config.l2_associativity, config.l2_line_size,
        config.stream_predictor_base_entries,
        config.stream_predictor_history_entries,
        config.max_stream_instructions,
        config.resolved_warmup_instructions(),
    )


def _base_key(config: SimulationConfig) -> Tuple:
    """Cache geometry stripped out: what the walk itself depends on."""
    return (
        config.stream_predictor_base_entries,
        config.stream_predictor_history_entries,
        config.max_stream_instructions,
        config.resolved_warmup_instructions(),
        config.line_size,
    )


#: Per-process cache of size-independent base passes, keyed by
#: (workload name, seed, total, interval_length, predictor geometry).
#: An L1-size sweep over one benchmark re-walks nothing: only the cheap
#: per-size cache-fill replay in :func:`functional_profile` runs again.
_BASE_CACHE: Dict[Tuple, tuple] = {}


def clear_base_profile_cache() -> None:
    _BASE_CACHE.clear()


def _base_pass(
    workload: Workload,
    config: SimulationConfig,
    total_instructions: int,
    interval_length: int,
) -> tuple:
    """The cache-size-independent part of the functional pass.

    Walks the correct path once, replaying predictor training (for
    per-interval mispredicted-stream counts) and the exact load-index
    miss hashes (for per-interval L1-D / L2 data miss counts), and
    records the stream spans per interval so per-size cache replays can
    skip the walk entirely.  Returns ``(rows, spans_per_interval)``.
    """
    key = (
        workload.name, workload.profile.seed,
        total_instructions, interval_length, _base_key(config),
    )
    cached = _BASE_CACHE.get(key)
    if cached is not None:
        return cached
    artifacts = get_warmup_artifacts(
        workload,
        config.resolved_warmup_instructions(),
        base_entries=config.stream_predictor_base_entries,
        history_entries=config.stream_predictor_history_entries,
        max_stream_instructions=config.max_stream_instructions,
        line_size=config.line_size,
    )
    predictor = artifacts.predictor.clone()
    if workload._compiled_trace is not None and not kernels.batch_disabled():
        result = _base_pass_batched(
            workload, config, predictor, total_instructions, interval_length
        )
    else:
        result = _base_pass_generic(
            workload, config, predictor, total_instructions, interval_length
        )
    _BASE_CACHE[key] = result
    return result


def _base_pass_generic(
    workload: Workload,
    config: SimulationConfig,
    predictor: StreamPredictor,
    total_instructions: int,
    interval_length: int,
) -> tuple:
    """Block-by-block reference walk (kept for trace-less workloads and
    as the differential baseline for the batched path)."""
    oracle = workload.new_oracle()
    load_miss_probs = workload.bbdict.load_miss_probs
    seed = workload.profile.seed
    l2_data_rate = workload.profile.l2_data_miss_rate
    history = 0
    load_index = 0
    consumed = 0
    count = -(-total_instructions // interval_length)      # ceil division
    rows = [dict(m=0, d=0, dm=0) for _ in range(count)]
    spans: List[List[Tuple[int, int]]] = [[] for _ in range(count)]
    while consumed < total_instructions:
        addr = oracle.current_address()
        actual = oracle.peek_stream(config.max_stream_instructions)
        prediction = predictor.predict(addr, history)
        predictor.train(addr, history, actual)
        take = min(actual.length, total_instructions - consumed)
        # A prediction is one event; it belongs to the interval where the
        # stream starts.  Loads and line spans are split exactly at
        # interval boundaries (like trace.iter_intervals) so per-interval
        # counts stay exact even when a stream straddles a boundary.
        if (prediction.length != actual.length
                or prediction.next_addr != actual.next_addr):
            rows[consumed // interval_length]["m"] += 1
        done = 0
        while done < take:
            index = (consumed + done) // interval_length
            boundary = (index + 1) * interval_length
            chunk = min(take - done, boundary - (consumed + done))
            chunk_addr = addr + done * INSTRUCTION_BYTES
            row = rows[index]
            for miss_prob in load_miss_probs(chunk_addr, chunk):
                if _hash01(load_index, seed) < miss_prob:
                    row["d"] += 1
                    if _hash01(load_index, seed ^ 0x5A5A5A5A) < l2_data_rate:
                        row["dm"] += 1
                load_index += 1
            spans[index].append((chunk_addr, chunk))
            done += chunk
        if actual.length <= take:
            history = StreamPredictor.fold_history(
                history, actual.next_addr, actual.ends_taken
            )
        oracle.advance(take)
        consumed += take
    return (rows, spans)


def _base_pass_batched(
    workload: Workload,
    config: SimulationConfig,
    predictor: StreamPredictor,
    total_instructions: int,
    interval_length: int,
) -> tuple:
    """:func:`_base_pass_generic` over the canonical stream segmentation.

    The walk strides over pre-segmented streams (no ``peek_stream``
    re-derivation); the miss-draw loop is deferred entirely -- chunks
    record their probability tuples in dynamic order, and one call to
    :func:`repro.kernels.grouped_load_miss_counts` accumulates every
    interval's L1-D/L2 counts at the end.  Bit-identical to the generic
    pass (``tests/test_kernels.py`` holds both paths together).
    """
    segments = workload._compiled_trace.segments(
        config.max_stream_instructions
    )
    load_miss_probs = workload.bbdict.load_miss_probs
    fold = StreamPredictor.fold_history
    predict_pair = predictor.predict_pair
    train = predictor.train_parts
    history = 0
    consumed = 0
    count = -(-total_instructions // interval_length)      # ceil division
    rows = [dict(m=0, d=0, dm=0) for _ in range(count)]
    spans: List[List[Tuple[int, int]]] = [[] for _ in range(count)]
    chunk_probs: List[Tuple[int, Tuple[float, ...]]] = []
    start_a = segments.start_addr
    length_a = segments.length
    next_a = segments.next_addr
    taken_a = segments.ends_taken
    kind_l = segments.kind
    i = 0
    while consumed < total_instructions:
        if i >= len(length_a):
            segments.ensure_count(i + 128)
        addr = start_a[i]
        length = length_a[i]
        next_addr = next_a[i]
        predicted_length, predicted_next = predict_pair(addr, history)
        train(addr, history, length, next_addr, kind_l[i])
        take = min(length, total_instructions - consumed)
        if predicted_length != length or predicted_next != next_addr:
            rows[consumed // interval_length]["m"] += 1
        done = 0
        while done < take:
            index = (consumed + done) // interval_length
            boundary = (index + 1) * interval_length
            chunk = min(take - done, boundary - (consumed + done))
            chunk_addr = addr + done * INSTRUCTION_BYTES
            chunk_probs.append((index, load_miss_probs(chunk_addr, chunk)))
            spans[index].append((chunk_addr, chunk))
            done += chunk
        if length <= take:
            history = fold(history, next_addr, bool(taken_a[i]))
        consumed += take
        i += 1
    d_counts, dm_counts = kernels.grouped_load_miss_counts(
        chunk_probs, count, 0,
        workload.profile.seed, workload.profile.l2_data_miss_rate,
    )
    for row, d, dm in zip(rows, d_counts, dm_counts):
        row["d"] = d
        row["dm"] = dm
    return (rows, spans)


def functional_profile(
    workload: Workload,
    config: SimulationConfig,
    total_instructions: int,
    interval_length: int,
) -> FunctionalProfile:
    """Per-interval functional features for one (workload, geometry).

    The expensive walk (predictor replay, load-miss hashing, stream span
    recording) runs once per workload via :func:`_base_pass`; this
    function only replays the recorded spans into caches of this
    configuration's geometry to count per-interval instruction misses.
    Both start from the same warmed state a timed run starts from.
    """
    if interval_length <= 0:
        raise ValueError("interval_length must be positive")
    rows, spans = _base_pass(
        workload, config, total_instructions, interval_length
    )
    artifacts = get_warmup_artifacts(
        workload,
        config.resolved_warmup_instructions(),
        base_entries=config.stream_predictor_base_entries,
        history_entries=config.stream_predictor_history_entries,
        max_stream_instructions=config.max_stream_instructions,
        line_size=config.line_size,
    )
    # The per-size caches here are throwaway (only miss counts escape),
    # so the replay runs on the lean ordered-dict LRU model -- count-
    # equivalent to a Cache pair by construction (see TwoLevelLRUReplay).
    replay = kernels.TwoLevelLRUReplay(
        config.l1_size_bytes, config.line_size, config.l1_associativity,
        config.l2_size_bytes, config.l2_line_size, config.l2_associativity,
    )
    replay.warm(artifacts.line_trace)

    line_size = config.line_size
    span_cache: dict = {}    # (addr, take) -> touched cache lines
    counts = []
    for interval_spans in spans:
        i1 = i2 = 0
        for addr, take in interval_spans:
            lines = span_cache.get((addr, take))
            if lines is None:
                lines = span_cache[(addr, take)] = tuple(
                    span_lines(addr, take, line_size)
                )
            d1, d2 = replay.replay(lines)
            i1 += d1
            i2 += d2
        counts.append((i1, i2))

    count = len(rows)
    lengths = [
        min(interval_length, total_instructions - i * interval_length)
        for i in range(count)
    ]
    return FunctionalProfile(
        workload=workload.name,
        seed=workload.profile.seed,
        interval_length=interval_length,
        total_instructions=total_instructions,
        features=tuple(
            IntervalFeatures(
                length=length,
                mispredicted_streams=row["m"],
                dl1_misses=row["d"],
                l2_data_misses=row["dm"],
                l1i_misses=i1,
                l2i_misses=i2,
            )
            for row, length, (i1, i2) in zip(rows, lengths, counts)
        ),
    )


def proxy_cycles(
    profile: FunctionalProfile, config: SimulationConfig
) -> List[float]:
    """Per-interval predicted cycles from the functional event counts.

    Penalties are derived from the configuration: branch-resolution delay
    for mispredicted streams, MLP-moderated L2/memory latency for data
    misses, and L2/memory access latency for instruction misses.  The
    absolute values only need to be plausible -- the sampled estimator
    divides them out per stratum.
    """
    hierarchy = MemoryHierarchy(config.hierarchy_config())
    mlp = config.mlp_factor
    branch_penalty = config.branch_resolution_latency + 4.0
    dl1_penalty = hierarchy.l2_latency / mlp
    l2_data_penalty = config.memory_latency / mlp
    l1i_penalty = float(hierarchy.l2_latency)
    l2i_penalty = float(config.memory_latency)
    return [
        (
            PROXY_BASE_CPI * f.length
            + branch_penalty * f.mispredicted_streams
            + dl1_penalty * f.dl1_misses
            + l2_data_penalty * f.l2_data_misses
            + l1i_penalty * f.l1i_misses
            + l2i_penalty * f.l2i_misses
        )
        for f in profile.features
    ]
