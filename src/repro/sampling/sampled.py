"""Sampled simulation: run K representative intervals instead of everything.

``_execute_sampled`` is the sampled counterpart of the runner's full
simulation path and produces the same
:class:`~repro.simulator.stats.SimulationResult` shape, so figure builders
and reports work unchanged.  The flow per (configuration, benchmark):

1. profile the workload's correct path into basic-block vectors and pick
   K representative intervals with weights (cached per benchmark),
2. build one simulator, warm it up once, checkpoint it (cached per
   configuration x benchmark),
3. for each selected interval, in start order: restore the previous
   checkpoint, functionally fast-forward to the interval start
   (:meth:`Simulator.skip_to` -- predictor keeps training, caches keep
   filling), checkpoint again so the next interval only skips the delta,
   then run the interval timed,
4. combine the per-interval results into one weighted estimate
   (:func:`repro.simulator.stats.weighted_aggregate`).

Everything is deterministic: same workload seed, same sampling spec ->
same selection, same per-interval results, same estimate.  That
determinism is also what makes the per-interval measurements themselves
persistable artifacts: with the artifact cache enabled they are
published to disk keyed by (configuration, workload, budget, spec), and
any later invocation replays them through the same aggregation instead
of re-simulating -- bit-identical by construction, and guarded by
``tests/test_artifact_cache.py``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..cache.keys import content_key, stable_repr
from ..cache.traces import ensure_compiled_trace
from ..simulator.config import SimulationConfig
from ..simulator.simulator import Simulator
from ..simulator.stats import SimulationResult, result_delta, weighted_aggregate
from ..workloads.trace import Workload
from .bbv import DEFAULT_PROJECTION_DIM
from .checkpoint import DEFAULT_STORE, CheckpointStore
from .proxy import proxy_cycles
from .simpoint import IntervalSelection, select_stratified


@dataclass(frozen=True)
class SamplingSpec:
    """Parameters of a sampled run (hashable, picklable, deterministic).

    ``interval_length=None`` derives the interval size from the run's
    instruction budget so short smoke runs and long sweeps both end up
    with a sensible number of intervals to choose from.

    ``method`` selects how representatives are chosen:

    * ``"stratified"`` (default): functional cost proxies stratify the
      intervals and a per-stratum ratio estimator corrects the cycle
      estimate (accurate even when BBVs barely differ across intervals,
      as with the statistically-stationary synthetic workloads),
    * ``"kmeans"``: classic SimPoint -- k-means over projected BBVs,
      cluster-mass weights, no proxy correction.
    """

    interval_length: Optional[int] = None
    max_intervals: int = 5              #: K representative intervals
    method: str = "stratified"
    projection_dim: int = DEFAULT_PROJECTION_DIM
    seed: int = 1
    kmeans_iterations: int = 30
    #: Floor for derived interval lengths; intervals much shorter than
    #: this are dominated by the per-interval pipeline-fill transient.
    min_interval_length: int = 500
    #: Timed-but-discarded instructions simulated in front of a measured
    #: interval that was *jumped to* (checkpoint restore + functional
    #: skip).  Restoring leaves the pipeline and queues empty, so the
    #: first ~hundreds of instructions run below steady-state IPC;
    #: measuring differentially after this stretch removes that bias.
    #: Intervals measured contiguously need no warm stretch.
    detail_warmup: int = 500

    def __post_init__(self) -> None:
        if self.method not in ("stratified", "kmeans"):
            raise ValueError(
                f"unknown sampling method {self.method!r}; "
                "choose 'stratified' or 'kmeans'"
            )
        if self.max_intervals < 1:
            raise ValueError("max_intervals must be >= 1")
        if self.interval_length is not None and self.interval_length <= 0:
            raise ValueError("interval_length must be positive")

    def resolved_interval_length(self, total_instructions: int) -> int:
        """Interval size for a run of ``total_instructions``."""
        if self.interval_length is not None:
            if self.interval_length <= 0:
                raise ValueError("interval_length must be positive")
            return self.interval_length
        # Aim for ~20 candidate intervals so the selector has spread to
        # work with, while keeping each interval long enough to measure.
        derived = max(self.min_interval_length, total_instructions // 20)
        return min(derived, max(1, total_instructions))


#: Spec used when a sampled task does not carry its own.
DEFAULT_SPEC = SamplingSpec()


def get_selection(
    workload: Workload,
    total_instructions: int,
    spec: SamplingSpec = DEFAULT_SPEC,
    store: CheckpointStore = DEFAULT_STORE,
    config: Optional[SimulationConfig] = None,
) -> IntervalSelection:
    """The (cached) interval selection for a workload under ``spec``.

    The stratified method needs a configuration (its functional features
    depend on cache/predictor geometry); the k-means method is purely a
    property of the workload.
    """
    interval_length = spec.resolved_interval_length(total_instructions)
    if spec.method == "stratified":
        if config is None:
            raise ValueError("stratified selection needs a configuration")
        profile = store.functional_profile(
            config, workload, total_instructions, interval_length
        )
        return select_stratified(
            profile, proxy_cycles(profile, config), spec.max_intervals
        )
    return store.selection(
        workload,
        total_instructions,
        interval_length=interval_length,
        max_intervals=spec.max_intervals,
        projection_dim=spec.projection_dim,
        seed=spec.seed,
        iterations=spec.kmeans_iterations,
    )


def _measure_intervals(
    config: SimulationConfig,
    workload: Workload,
    selection: IntervalSelection,
    spec: SamplingSpec,
    store: CheckpointStore,
):
    """Simulate the selected intervals; returns (interval results, weights).

    Adjacent intervals continue one timed stretch; distant ones are
    reached by restoring the warm jump base and functionally skipping.
    """
    simulator = Simulator(config, workload)
    cursor = None        # jump base: a checkpoint at the furthest warm point
    cursor_offset = 0    # instruction offset of `cursor` (0 = warm state)
    interval_results: List[SimulationResult] = []
    weights: List[float] = []
    position: Optional[int] = None   # correct-path offset simulated so far
    segment_after: Optional[SimulationResult] = None
    segment_target = 0               # cumulative run target in this segment
    intervals = selection.intervals              # sorted by start
    # A "jump" is any interval that does not continue the previous timed
    # segment; checkpoints are only worth taking when another jump will
    # come back for them.
    jump_flags = [
        i == 0 and interval.start_instruction != 0
        or i > 0 and interval.start_instruction
        != intervals[i - 1].start_instruction + intervals[i - 1].length
        for i, interval in enumerate(intervals)
    ]
    for i, interval in enumerate(intervals):
        if position is not None and interval.start_instruction == position:
            # Adjacent to the previous measured interval: keep the timed
            # run going -- no checkpoint restore, no discarded warm-up,
            # and the machine state is the exact full-run state.
            before = segment_after
            segment_target += interval.length
            after = simulator.run(segment_target)
        elif position is None and interval.start_instruction == 0:
            # First interval at the very beginning (always true for
            # stratified selections: interval 0 represents itself):
            # plain warm-up, exactly like a full run starts.
            simulator.warm_up()
            before = None
            segment_target = interval.length
            after = simulator.run(segment_target)
        else:
            # Jump: reset to the deepest warm state at or before the
            # target, functionally fast-forward the remaining prefix,
            # and refill the pipeline with a timed-but-discarded warm
            # stretch.
            warm_len = min(spec.detail_warmup, interval.start_instruction)
            skip_target = interval.start_instruction - warm_len
            # Prefer the deepest usable prefix: a positioned checkpoint
            # published by an earlier run (possibly under a different
            # budget or interval selection) beats re-skipping from this
            # run's own cursor -- and on the first jump, from the warm
            # checkpoint -- whenever its offset is strictly deeper.
            # Skips are split-invariant, so every path lands in the same
            # state.
            positioned = None
            if cursor is None or cursor_offset < skip_target:
                positioned = store.positioned_checkpoint(
                    config, workload, skip_target, min_offset=cursor_offset)
            if positioned is not None:
                cursor_offset, cursor = positioned
                simulator.restore(cursor)
            elif cursor is not None:
                simulator.restore(cursor)
            else:
                cursor = store.jump_base_checkpoint(config, workload)
                if cursor is not None:
                    simulator.restore(cursor)
                elif position is None:
                    # Nothing measured yet: the simulator is pristine.
                    simulator.warm_up()
                else:
                    # Nothing cached: a fresh warmed simulator is the
                    # same state, minus the cost of snapshotting state
                    # this one-shot run would never restore again.
                    simulator = Simulator(config, workload)
                    simulator.warm_up()
            simulator.skip_to(skip_target)
            if any(jump_flags[i + 1:]) or store.artifact_store() is not None:
                # Checkpoint ahead of the interval: the next jump of this
                # run restores here and only skips the delta, and -- when
                # the artifact store is live -- any later run whose skip
                # targets land at or beyond this offset resumes from it
                # instead of from offset 0 (skips are split-invariant, so
                # the continuation is bit-identical either way).  A cursor
                # already sitting exactly at the target (a positioned hit
                # at this very offset) IS that state: re-snapshotting it
                # would deep-copy the whole machine for nothing, so only
                # the (presence-checked, usually no-op) publish runs.
                if cursor is None or cursor_offset != skip_target:
                    cursor = simulator.snapshot()
                    cursor_offset = skip_target
                store.publish_positioned(config, workload, skip_target,
                                         cursor)
            before = simulator.run(warm_len) if warm_len else None
            segment_target = warm_len + interval.length
            after = simulator.run(segment_target)
        interval_results.append(result_delta(after, before))
        weights.append(interval.weight)
        segment_after = after
        position = interval.start_instruction + interval.length
    return interval_results, weights


def _segments(intervals) -> List[Tuple[int, ...]]:
    """Partition a sorted interval selection into maximal contiguous runs.

    Two intervals belong to the same segment exactly when the serial walk
    in :func:`_measure_intervals` would take its *adjacent* branch for the
    second one (``start == previous start + previous length``): within a
    segment one timed stretch covers every interval, across segments the
    walk restores a checkpoint and functionally skips.  Segments are
    therefore the independent units of a sampled run -- each element is a
    tuple of indices into ``intervals``.
    """
    segments: List[Tuple[int, ...]] = []
    current = [0]
    for i in range(1, len(intervals)):
        previous = intervals[i - 1]
        if (intervals[i].start_instruction
                == previous.start_instruction + previous.length):
            current.append(i)
        else:
            segments.append(tuple(current))
            current = [i]
    if intervals:
        segments.append(tuple(current))
    return segments


def _measure_segment(
    config: SimulationConfig,
    workload: Workload,
    selection,
    spec: SamplingSpec,
    indices: Sequence[int],
    store: CheckpointStore,
) -> List[SimulationResult]:
    """Measure one contiguous segment of selected intervals.

    Mirrors the per-branch logic of :func:`_measure_intervals` exactly:
    the first interval either starts at instruction 0 (plain warm-up,
    like a full run) or is a jump (restore the deepest usable prefix --
    a positioned checkpoint published through the artifact store, else
    the warm jump base -- then functionally skip the remaining delta and
    refill the pipeline with a timed-but-discarded warm stretch); every
    subsequent interval continues the one timed run.  Functional skips
    are split-invariant and restore/warm-up states are bit-identical by
    construction, so the returned deltas equal the corresponding slice
    of the serial walk bit for bit, whichever process measures them.
    """
    intervals = selection.intervals
    first = intervals[indices[0]]
    simulator = Simulator(config, workload)
    if first.start_instruction == 0:
        simulator.warm_up()
        before: Optional[SimulationResult] = None
        segment_target = 0
    else:
        warm_len = min(spec.detail_warmup, first.start_instruction)
        skip_target = first.start_instruction - warm_len
        cursor_offset = 0
        positioned = store.positioned_checkpoint(config, workload,
                                                 skip_target)
        if positioned is not None:
            cursor_offset, cursor = positioned
            simulator.restore(cursor)
        else:
            cursor = store.jump_base_checkpoint(config, workload)
            if cursor is not None:
                simulator.restore(cursor)
            else:
                simulator.warm_up()
        simulator.skip_to(skip_target)
        if store.artifact_store() is not None \
                and cursor_offset != skip_target and skip_target > 0:
            # Publish the post-skip state so sibling segments (and later
            # runs) resume from this prefix instead of skipping from 0.
            store.publish_positioned(config, workload, skip_target,
                                     simulator.snapshot())
        before = simulator.run(warm_len) if warm_len else None
        segment_target = warm_len
    results: List[SimulationResult] = []
    for index in indices:
        segment_target += intervals[index].length
        after = simulator.run(segment_target)
        results.append(result_delta(after, before))
        before = after
    return results


def _execute_segment(task) -> Tuple[SimulationResult, ...]:
    """Run one :class:`~repro.simulator.plan.SegmentTask` (pool worker
    entry point, dispatched by ``repro.simulator.runner._run_task``).

    The worker rebuilds the deterministic workload from the task's
    profile, recomputes the (cached) interval selection, and measures
    just its segment; per-interval results return positionally aligned
    with ``task.indices``.
    """
    spec = task.sampling if task.sampling is not None else DEFAULT_SPEC
    from ..simulator.runner import get_workload_for_profile

    workload = get_workload_for_profile(task.profile)
    total = task.total_instructions
    ensure_compiled_trace(
        workload, max(total, task.config.resolved_warmup_instructions())
    )
    store = DEFAULT_STORE
    selection = get_selection(workload, total, spec, store=store,
                              config=task.config)
    if not task.indices or max(task.indices) >= len(selection.intervals):
        raise RuntimeError(
            f"interval selection holds {len(selection.intervals)} "
            f"interval(s) but segment references {task.indices!r}; "
            "selection diverged across processes")
    return tuple(_measure_segment(task.config, workload, selection, spec,
                                  task.indices, store))


def _measure_intervals_parallel(
    config: SimulationConfig,
    workload: Workload,
    selection,
    spec: SamplingSpec,
    store: CheckpointStore,
    total: int,
    interval_jobs: int,
):
    """Fan the selection's contiguous segments across the shared pool.

    Returns ``(interval results, weights)`` bit-identical to
    :func:`_measure_intervals`, or ``None`` when intra-run parallelism
    is unavailable -- fewer than two segments, already inside a pool
    worker (daemonic workers cannot nest pools), no persistent artifact
    store (workers need it to share warm/positioned checkpoints), or any
    segment failed terminally -- in which case the caller falls back to
    the serial walk.
    """
    from .. import faults

    if interval_jobs < 2 or selection.k < 2:
        return None
    if faults.in_worker():
        return None
    if store.artifact_store() is None:
        return None
    segments = _segments(selection.intervals)
    if len(segments) < 2:
        return None
    # Imported lazily: the runner imports this module for dispatch.
    from ..simulator.plan import SegmentTask
    from ..simulator.runner import iter_task_results

    # Publish the warm checkpoint once so every worker restores it
    # instead of re-running the warm-up per process.
    store.warm_checkpoint(config, workload)
    tasks = []
    for indices in segments:
        first = selection.intervals[indices[0]]
        timed = sum(selection.intervals[i].length for i in indices)
        if first.start_instruction:
            timed += min(spec.detail_warmup, first.start_instruction)
        # Functional skips are far cheaper per instruction than the
        # timed loop; a flat discount keeps long-prefix segments from
        # being scheduled as if they were all timed work.
        weight = timed + first.start_instruction // 4
        tasks.append(SegmentTask(
            config=config, profile=workload.profile,
            total_instructions=total, indices=indices, sampling=spec,
            weight=weight,
        ))
    cancel = threading.Event()
    slots: List[Optional[Tuple[SimulationResult, ...]]] = [None] * len(tasks)
    failed = False
    for completion in iter_task_results(
            tasks, jobs=min(interval_jobs, len(tasks)), cancel=cancel):
        if completion.failed:
            # One segment exhausted its retry budget: stop dispatching
            # and let the serial walk (which has its own fallback
            # states) produce the run instead of a partial estimate.
            failed = True
            cancel.set()
            continue
        slots[completion.index] = completion.result
    if failed or any(slot is None for slot in slots):
        return None
    interval_results: List[Optional[SimulationResult]] = [None] * selection.k
    for indices, results in zip(segments, slots):
        if len(results) != len(indices):
            return None
        for index, result in zip(indices, results):
            interval_results[index] = result
    if any(result is None for result in interval_results):
        return None
    weights = [interval.weight for interval in selection.intervals]
    return interval_results, weights


def _execute_sampled(
    config: SimulationConfig,
    workload: Union[Workload, str],
    max_instructions: Optional[int] = None,
    spec: Optional[SamplingSpec] = None,
    store: CheckpointStore = DEFAULT_STORE,
    interval_jobs: Optional[int] = None,
) -> SimulationResult:
    """Sampled run of one configuration on one benchmark (the executor
    primitive behind ``SimTask(sampled=True)``; the public entry point is
    :class:`repro.api.Session` with ``ExecutionOptions(sampled=True)``).

    Returns a :class:`SimulationResult` whose counters estimate the full
    ``max_instructions`` run from the K selected intervals; ``extras``
    records the sampling metadata (``sampled``, ``sampling_intervals``,
    ``sampled_instructions``).
    """
    if spec is None:
        spec = DEFAULT_SPEC
    if isinstance(workload, str):
        # Imported lazily: the runner imports this module for dispatch.
        from ..simulator.runner import get_workload

        workload = get_workload(workload)
    total = max_instructions or config.max_instructions
    ensure_compiled_trace(
        workload, max(total, config.resolved_warmup_instructions())
    )
    selection = get_selection(workload, total, spec, store=store,
                              config=config)

    # Per-interval measurements are deterministic per (configuration,
    # workload, budget, spec) -- the dominant cost of a sampled run, so
    # they are themselves artifacts: any previous invocation's timed
    # intervals replay from disk, leaving only selection + aggregation.
    # The selection fingerprint guards against stale payloads (e.g. an
    # algorithm change that kept the key but moved the intervals), and a
    # payload whose interval results *or* weights disagree with the
    # selection -- a short weights list would silently truncate the
    # ``zip`` in ``weighted_aggregate`` -- is recomputed, not trusted.
    # ``result_cache=False`` (the CLI's ``--no-result-cache``) skips the
    # replay just as it does for full-run results: "force resimulation"
    # means the timed loop actually runs.
    from ..cache.results import result_cache_enabled

    disk = store.artifact_store()
    measured = None
    measurement_key = None
    selection_fingerprint = content_key("selection-fp", selection)
    if disk is not None:
        measurement_key = content_key(
            "sampled-measurements", stable_repr(config),
            workload.name, workload.profile.seed, total, stable_repr(spec),
        )
    if measurement_key is not None and result_cache_enabled():
        payload = disk.get("measurement", measurement_key)
        if isinstance(payload, dict) \
                and payload.get("selection") == selection_fingerprint:
            payload_weights = payload.get("weights", ())
            if (len(payload.get("interval_results", ())) == selection.k
                    and len(payload_weights) == selection.k
                    and all(isinstance(w, (int, float))
                            and not isinstance(w, bool)
                            and math.isfinite(w)
                            for w in payload_weights)):
                measured = payload
    if measured is not None:
        interval_results = list(measured["interval_results"])
        weights = list(measured["weights"])
    else:
        measured_parallel = None
        if interval_jobs is not None and interval_jobs > 1:
            measured_parallel = _measure_intervals_parallel(
                config, workload, selection, spec, store, total,
                interval_jobs,
            )
        if measured_parallel is not None:
            interval_results, weights = measured_parallel
        else:
            interval_results, weights = _measure_intervals(
                config, workload, selection, spec, store
            )
        if measurement_key is not None:
            disk.put("measurement", measurement_key, {
                "selection": selection_fingerprint,
                "interval_results": interval_results,
                "weights": weights,
            })

    result = weighted_aggregate(
        interval_results, weights, total_instructions=total
    )
    if spec.method == "stratified":
        # Ratio-corrected cycle estimate: each stratum's summed proxy,
        # scaled by its representative's measured/proxy cycle ratio.
        # Exact whenever the proxy is proportional to true cycles within
        # a stratum; absolute proxy calibration divides out.
        estimated = sum(
            interval.cluster_proxy_mass
            * measured.cycles / interval.proxy
            for interval, measured in zip(
                selection.intervals, interval_results
            )
            if interval.proxy > 0
        )
        if estimated > 0:
            result.cycles = max(1, round(estimated))
    result.extras.update(
        sampled=1.0,
        sampling_intervals=float(selection.k),
        sampling_interval_length=float(selection.interval_length),
        sampled_instructions=float(selection.sampled_instructions),
        sampling_coverage=selection.coverage(),
    )
    return result
