"""Basic-block-vector (BBV) profiling of a workload's dynamic stream.

One cheap functional pass over a workload's correct path (no timing
simulation) slices it into fixed-length instruction intervals and records,
per interval, how many instructions each static basic block contributed --
the classic SimPoint fingerprint of "where the program was executing".
Intervals with similar vectors behave similarly under timing simulation,
which is what the k-means selection in :mod:`repro.sampling.simpoint`
exploits.

Vectors are compared after projection into a small fixed-dimension space
(SimPoint projects to 15 dimensions); here a deterministic feature-hashing
projection keeps the module dependency-free: each basic block address is
hashed to one bucket, and vectors are normalised to instruction fractions
so intervals of different lengths remain comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .. import kernels
from ..workloads.trace import CompiledTrace, IntervalRecord, Workload

#: Default projected dimensionality (SimPoint uses 15).
DEFAULT_PROJECTION_DIM = 16

#: Knuth's 64-bit multiplicative-hash constant: spreads block addresses
#: (which share low-bit structure) uniformly over buckets.
_HASH_MULTIPLIER = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1


def _bucket(addr: int, dim: int, seed: int) -> int:
    mixed = ((addr ^ (seed * 0x5851F42D4C957F2D)) * _HASH_MULTIPLIER) & _HASH_MASK
    return (mixed >> 32) % dim


def project_counts(
    block_counts: Dict[int, int],
    dim: int = DEFAULT_PROJECTION_DIM,
    seed: int = 0,
) -> List[float]:
    """Project a raw BBV into ``dim`` buckets, normalised to fractions."""
    vector = [0.0] * dim
    total = 0
    for addr, count in block_counts.items():
        vector[_bucket(addr, dim, seed)] += count
        total += count
    if total:
        vector = [v / total for v in vector]
    return vector


@dataclass(frozen=True)
class BBVProfile:
    """Per-interval basic-block vectors for one workload's correct path."""

    workload: str
    seed: int                       #: workload profile seed (determinism key)
    interval_length: int
    total_instructions: int
    intervals: Tuple[IntervalRecord, ...]

    def __len__(self) -> int:
        return len(self.intervals)

    def vectors(
        self, dim: int = DEFAULT_PROJECTION_DIM, seed: int = 0
    ) -> List[List[float]]:
        """Projected, normalised vectors (one per interval, same order)."""
        return [
            project_counts(record.block_counts, dim=dim, seed=seed)
            for record in self.intervals
        ]

    def interval_weights(self) -> List[float]:
        """Fraction of the profiled instructions in each interval (the
        final interval may be shorter than the rest)."""
        if not self.total_instructions:
            return [0.0] * len(self.intervals)
        return [
            record.length / self.total_instructions
            for record in self.intervals
        ]


def profile_workload(
    workload: Workload,
    total_instructions: int,
    interval_length: int,
) -> BBVProfile:
    """Replay ``total_instructions`` of the correct path into a profile.

    Purely functional (one walker pass, no caches or timing touched), and
    deterministic per workload seed -- interval ``i`` of the profile is
    exactly instructions ``[i*L, (i+1)*L)`` of any simulation run.

    When the workload carries a compiled trace the intervals are sliced
    wholesale from its columnar arrays by the batch kernels
    (:func:`repro.kernels.interval_block_counts`) -- bit-identical to the
    block-by-block walk, including the first-occurrence key order of each
    interval's ``block_counts`` (pickled profile bytes depend on it).
    """
    trace = workload._compiled_trace
    if (trace is not None and total_instructions > 0 and interval_length > 0
            and not kernels.batch_disabled()):
        intervals = _compiled_intervals(
            trace, total_instructions, interval_length
        )
    else:
        intervals = tuple(
            workload.iter_intervals(interval_length, total_instructions)
        )
    return BBVProfile(
        workload=workload.name,
        seed=workload.profile.seed,
        interval_length=interval_length,
        total_instructions=total_instructions,
        intervals=intervals,
    )


def _ensure_block_coverage(trace: CompiledTrace, total_instructions: int) -> None:
    """Extend the trace columns until they cover ``total_instructions``."""
    np = kernels.numpy_or_none()
    if np is None:
        covered = 0
        index = 0
        size_a = trace.size
        while covered < total_instructions:
            if index >= len(size_a):
                trace.ensure(index + 255)
            covered += size_a[index]
            index += 1
        return
    while True:
        # Views are created fresh each round: ensure() reallocates the
        # backing arrays as it appends.
        covered = int(np.frombuffer(trace.size, dtype=np.int64).sum())
        if covered >= total_instructions:
            return
        blocks = len(trace.size)
        mean = max(1.0, covered / max(1, blocks))
        deficit = int((total_instructions - covered) / mean) + 16
        trace.ensure(blocks + deficit)


def _compiled_intervals(
    trace: CompiledTrace, total_instructions: int, interval_length: int
) -> Tuple[IntervalRecord, ...]:
    """Interval records sliced from the compiled block columns."""
    _ensure_block_coverage(trace, total_instructions)
    counts = kernels.interval_block_counts(
        trace.addr, trace.size, total_instructions, interval_length
    )
    return tuple(
        IntervalRecord(
            index=i,
            start_instruction=i * interval_length,
            length=min(
                interval_length, total_instructions - i * interval_length
            ),
            block_counts=block_counts,
        )
        for i, block_counts in enumerate(counts)
    )
