"""Sampled simulation: BBV profiling, SimPoint-style interval selection,
checkpoint/restore-based sampled runs.

Workflow (see README "Sampled simulation"):

1. :func:`profile_workload` -- one functional pass over the correct path,
   yielding per-interval basic-block vectors,
2. :func:`select_intervals` -- dependency-free k-means picks K
   representative intervals plus weights,
3. a sampled execution (``repro.api.ExecutionOptions(sampled=True)``) --
   one warm-up checkpoint per (configuration, benchmark), restored per
   interval, producing a weighted
   :class:`~repro.simulator.stats.SimulationResult` estimate of the full
   run at a fraction of its cost.
"""

from .bbv import BBVProfile, DEFAULT_PROJECTION_DIM, profile_workload, project_counts
from .checkpoint import CheckpointStore, DEFAULT_STORE, clear_checkpoint_store
from .proxy import FunctionalProfile, functional_profile, proxy_cycles
from .sampled import DEFAULT_SPEC, SamplingSpec, get_selection
from .simpoint import (
    IntervalSelection,
    SelectedInterval,
    kmeans,
    select_intervals,
    select_stratified,
)

__all__ = [
    "BBVProfile",
    "CheckpointStore",
    "DEFAULT_PROJECTION_DIM",
    "DEFAULT_SPEC",
    "DEFAULT_STORE",
    "FunctionalProfile",
    "IntervalSelection",
    "SamplingSpec",
    "SelectedInterval",
    "clear_checkpoint_store",
    "functional_profile",
    "get_selection",
    "kmeans",
    "profile_workload",
    "project_counts",
    "proxy_cycles",
    "select_intervals",
    "select_stratified",
]
