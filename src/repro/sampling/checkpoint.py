"""Checkpoint store: one warm-up pass per (configuration, benchmark).

A sampled run restarts timing from warm architectural state once per
selected interval, and a sweep restarts from it once per configuration.
Re-running the functional warm-up (and re-building the simulator) each
time would swamp the savings, so this per-process store caches

* the warmed-simulator checkpoint per (configuration, workload) -- built
  on first use with :meth:`Simulator.warm_up` + :meth:`Simulator.snapshot`
  (which itself reuses :mod:`repro.simulator.warming`'s cached artifacts
  across configurations that share cache/predictor geometry), and
* the interval selection per (workload, sampling parameters) -- the BBV
  profiling pass and k-means run once per benchmark no matter how many
  configurations a sweep evaluates.

Everything here is deterministic, so pool workers that rebuild these
caches independently produce identical results.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..simulator.config import SimulationConfig
from ..simulator.simulator import Simulator, SimulatorCheckpoint
from ..workloads.trace import Workload
from .bbv import profile_workload
from .proxy import FunctionalProfile, feature_key, functional_profile
from .simpoint import IntervalSelection, select_intervals


def _config_key(config: SimulationConfig) -> Tuple:
    """Hashable identity of a configuration (flat dataclass of scalars)."""
    return tuple(
        getattr(config, f.name) for f in dataclasses.fields(config)
    )


class CheckpointStore:
    """Per-process cache of warm checkpoints and interval selections."""

    def __init__(self) -> None:
        self._checkpoints: Dict[Tuple, SimulatorCheckpoint] = {}
        self._selections: Dict[Tuple, IntervalSelection] = {}
        self._profiles: Dict[Tuple, FunctionalProfile] = {}
        self._requested: set = set()

    # -- warm simulator state ------------------------------------------
    def warm_checkpoint(
        self, config: SimulationConfig, workload: Workload
    ) -> SimulatorCheckpoint:
        """The post-warm-up checkpoint for (config, workload), cached."""
        key = (_config_key(config), workload.name, workload.profile.seed)
        checkpoint = self._checkpoints.get(key)
        if checkpoint is None:
            simulator = Simulator(config, workload)
            simulator.warm_up()
            checkpoint = simulator.snapshot()
            self._checkpoints[key] = checkpoint
        return checkpoint

    def peek_warm_checkpoint(
        self, config: SimulationConfig, workload: Workload
    ) -> Optional[SimulatorCheckpoint]:
        """The cached warm checkpoint, or ``None`` without building one.

        A one-shot sweep visits each (configuration, benchmark) once, so
        eagerly snapshotting warm state it will never restore again is
        pure overhead; the sampled runner peeks and falls back to a fresh
        ``Simulator`` + ``warm_up()`` (functionally identical state) when
        nothing is cached.
        """
        key = (_config_key(config), workload.name, workload.profile.seed)
        return self._checkpoints.get(key)

    def warm_checkpoint_if_revisited(
        self, config: SimulationConfig, workload: Workload
    ) -> Optional[SimulatorCheckpoint]:
        """Build-and-cache the warm checkpoint on the *second* request.

        First request for a (configuration, benchmark): return ``None``
        (a one-shot sweep never comes back, so snapshotting would be
        wasted) but remember the key.  Any later request builds -- or
        returns -- the cached checkpoint, so repeated sampled runs of the
        same configuration (bench comparisons, interactive exploration)
        restore one shared warm-up instead of re-warming per jump.
        """
        key = (_config_key(config), workload.name, workload.profile.seed)
        checkpoint = self._checkpoints.get(key)
        if checkpoint is not None:
            return checkpoint
        if key in self._requested:
            return self.warm_checkpoint(config, workload)
        self._requested.add(key)
        return None

    # -- interval selections -------------------------------------------
    def selection(
        self,
        workload: Workload,
        total_instructions: int,
        interval_length: int,
        max_intervals: int,
        projection_dim: int,
        seed: int,
        iterations: int = 30,
    ) -> IntervalSelection:
        """BBV-profile + k-means selection, cached per parameters."""
        key = (
            workload.name, workload.profile.seed, total_instructions,
            interval_length, max_intervals, projection_dim, seed, iterations,
        )
        selection = self._selections.get(key)
        if selection is None:
            profile = profile_workload(
                workload, total_instructions, interval_length
            )
            selection = select_intervals(
                profile,
                max_intervals=max_intervals,
                projection_dim=projection_dim,
                seed=seed,
                iterations=iterations,
            )
            self._selections[key] = selection
        return selection

    # -- functional profiles (proxy features) --------------------------
    def functional_profile(
        self,
        config: SimulationConfig,
        workload: Workload,
        total_instructions: int,
        interval_length: int,
    ) -> FunctionalProfile:
        """Per-interval functional features, cached per geometry.

        The key only contains the configuration fields the features
        depend on (cache/predictor geometry, warm budget), so every
        scheme of a sweep that shares them shares one profiling pass.
        """
        key = (
            workload.name, workload.profile.seed,
            total_instructions, interval_length, feature_key(config),
        )
        profile = self._profiles.get(key)
        if profile is None:
            profile = functional_profile(
                workload, config, total_instructions, interval_length
            )
            self._profiles[key] = profile
        return profile

    def clear(self) -> None:
        self._checkpoints.clear()
        self._selections.clear()
        self._profiles.clear()
        self._requested.clear()

    def __len__(self) -> int:
        return (len(self._checkpoints) + len(self._selections)
                + len(self._profiles))


#: Default per-process store used by :func:`repro.sampling.sampled.run_sampled`.
DEFAULT_STORE = CheckpointStore()


def clear_checkpoint_store() -> None:
    """Drop all cached warm checkpoints and selections (tests, memory)."""
    DEFAULT_STORE.clear()
