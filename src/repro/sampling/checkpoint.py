"""Checkpoint store: one warm-up pass per (configuration, benchmark).

A sampled run restarts timing from warm architectural state once per
selected interval, and a sweep restarts from it once per configuration.
Re-running the functional warm-up (and re-building the simulator) each
time would swamp the savings, so this store caches

* the warmed-simulator checkpoint per (configuration, workload) -- built
  on first use with :meth:`Simulator.warm_up` + :meth:`Simulator.snapshot`
  (which itself reuses :mod:`repro.simulator.warming`'s cached artifacts
  across configurations that share cache/predictor geometry),
* **positioned checkpoints**: post-``skip_to`` snapshots keyed by
  (position key, workload, instruction offset), so a run whose budget or
  interval selection changed restores the largest persisted offset at or
  before its skip target and only fast-forwards the delta instead of
  re-skipping the whole prefix from the warm checkpoint (the mechanism
  behind gem5's LoopPoint flow and rv8's riscv-ckpt),
* **frontier checkpoints**: the exact end state of every completed
  full (non-sampled) run keyed by (frontier key, workload, committed
  instructions), so increasing a run's instruction budget resumes the
  timed loop from the previous budget's frontier instead of
  resimulating the shared prefix,
* the interval selection (and the BBV profile behind it) per (workload,
  sampling parameters) -- the profiling pass and k-means run once per
  benchmark no matter how many configurations a sweep evaluates, and
* the per-interval functional proxy profile per (workload, geometry).

Each cache layer is two-tier: a per-process dictionary in front of the
persistent artifact store (:mod:`repro.cache`), so artifacts survive the
process and every later CLI invocation, CI job or pool worker replays
them from disk instead of recomputing.  Warm checkpoints cross the
process boundary with workload-aware pickling
(:mod:`repro.cache.shared`): the immutable workload objects stay shared
with the live process instead of being duplicated into every artifact.

Everything here is deterministic, so pool workers that rebuild these
caches independently -- or load them from disk -- produce identical
results.  Keys are derived from a stable serialization of the dataclass
fields (:func:`repro.cache.keys.stable_repr`): independent of process
hash randomization and of dataclass field order, and automatically
distinct for any content-changing config evolution; incompatible
*format* evolution is handled by the store's schema version, which turns
old artifacts into plain cache misses.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..cache.keys import content_key, stable_repr
from ..cache.shared import (
    SharedObjectUnavailable,
    dumps_with_workload,
    loads_with_workload,
)
from ..cache.store import ArtifactStore, active_store
from ..simulator.config import SimulationConfig
from ..simulator.simulator import Simulator, SimulatorCheckpoint
from ..workloads.trace import Workload
from .bbv import BBVProfile, profile_workload
from .proxy import FunctionalProfile, feature_key, functional_profile
from .simpoint import IntervalSelection, select_intervals


def _config_key(config: SimulationConfig) -> str:
    """Stable, process-independent identity of a configuration.

    A canonical serialization of every dataclass field (sorted by field
    name), not a bare value tuple: reordering fields cannot silently
    alias two configurations, adding a field changes the key, and the
    string is identical across processes regardless of hash
    randomization.
    """
    return stable_repr(config)


def position_key(config: SimulationConfig) -> str:
    """Identity of everything that shapes *post-skip* machine state.

    Positioned checkpoints exist to be reused by runs with a **changed
    instruction budget or interval selection**, so the run-length fields
    that cannot influence warm-up-plus-skip state are neutralized:
    ``max_instructions`` and ``max_cycles`` only bound the timed run and
    ``sim_loop`` is bit-identical by contract.  The functional warm-up
    budget *does* shape the state and (by default) derives from
    ``max_instructions``, so it is pinned to its resolved value -- two
    budgets share positioned checkpoints exactly when their resolved
    warm-ups agree.
    """
    return stable_repr(config.with_overrides(
        max_instructions=1,
        max_cycles=None,
        sim_loop="event",
        warmup_instructions=config.resolved_warmup_instructions(),
    ))


def frontier_key(config: SimulationConfig) -> str:
    """Identity of everything that shapes *mid-timed-run* machine state.

    Frontier checkpoints (the end state of a completed full run) are
    reused by runs of the same configuration with a **larger instruction
    budget**, so only ``max_instructions`` is neutralized -- the budget
    bounds the run without steering it.  Unlike :func:`position_key`,
    ``max_cycles`` stays bound: it sets the safety cycle limit, and a
    restored state whose cycle count already exceeds a smaller limit
    would diverge from a fresh run.  ``sim_loop`` is neutralized (event
    and cycle loops are bit-identical by contract), and the resolved
    warm-up budget is pinned because it defaults from
    ``max_instructions``.
    """
    return stable_repr(config.with_overrides(
        max_instructions=1,
        sim_loop="event",
        warmup_instructions=config.resolved_warmup_instructions(),
    ))


class CheckpointStore:
    """Cache of warm checkpoints, selections and profiles.

    ``artifacts`` selects the persistent tier: the default resolves
    :func:`repro.cache.store.active_store` at each use (so the CLI's
    ``--no-cache``/``--cache-dir`` apply), an explicit
    :class:`~repro.cache.store.ArtifactStore` pins one, and ``None``
    keeps the store memory-only (the pre-persistence behaviour).
    """

    _DEFAULT = object()

    def __init__(
        self, artifacts: Union[ArtifactStore, None, object] = _DEFAULT
    ) -> None:
        self._artifacts = artifacts
        self._checkpoints: Dict[Tuple, SimulatorCheckpoint] = {}
        self._selections: Dict[Tuple, IntervalSelection] = {}
        self._profiles: Dict[Tuple, FunctionalProfile] = {}
        self._bbv_profiles: Dict[Tuple, BBVProfile] = {}
        self._requested: set = set()
        #: Positioned (post-skip) checkpoints: {(position key, workload
        #: name, seed): {instruction offset: checkpoint}}.
        self._positioned: Dict[Tuple, Dict[int, SimulatorCheckpoint]] = {}
        #: Reuse counters for positioned checkpoints (tests and the
        #: acceptance criteria assert prefix reuse on these).
        self.positioned_hits = 0
        self.positioned_misses = 0
        self.positioned_publishes = 0
        #: Frontier (end-of-completed-run) checkpoints: {(frontier key,
        #: workload name, seed): {committed instructions: checkpoint}}.
        self._frontier: Dict[Tuple, Dict[int, SimulatorCheckpoint]] = {}
        self.frontier_hits = 0
        self.frontier_misses = 0
        self.frontier_publishes = 0

    def artifact_store(self) -> Optional[ArtifactStore]:
        """The persistent tier in effect, or ``None`` (memory only)."""
        if self._artifacts is CheckpointStore._DEFAULT:
            return active_store()
        return self._artifacts

    # -- warm simulator state ------------------------------------------
    def warm_checkpoint(
        self, config: SimulationConfig, workload: Workload
    ) -> SimulatorCheckpoint:
        """The post-warm-up checkpoint for (config, workload), cached.

        Misses fall through to the artifact store before building: a
        checkpoint published by any earlier process restores into a
        state bit-identical to a fresh ``Simulator`` + ``warm_up()``.
        """
        key = (_config_key(config), workload.name, workload.profile.seed)
        checkpoint = self._checkpoints.get(key)
        if checkpoint is not None:
            return checkpoint
        checkpoint = self._load_persisted_checkpoint(key, workload)
        if checkpoint is not None:
            return checkpoint
        simulator = Simulator(config, workload)
        simulator.warm_up()
        checkpoint = simulator.snapshot()
        self._checkpoints[key] = checkpoint
        disk = self.artifact_store()
        if disk is not None:
            # The store digest-frames every payload (schema v4), so a
            # rotted checkpoint is rejected on read instead of replaying
            # wrong simulator state.
            disk.put_bytes(
                "checkpoint", content_key("warm-checkpoint", *key),
                dumps_with_workload(checkpoint._state, workload),
            )
        return checkpoint

    def _load_persisted_checkpoint(
        self, key: Tuple, workload: Workload
    ) -> Optional[SimulatorCheckpoint]:
        """The persisted warm checkpoint for ``key``, or ``None``."""
        disk = self.artifact_store()
        if disk is None:
            return None
        disk_key = content_key("warm-checkpoint", *key)
        # A digest mismatch (payload rotted after writing, or tampering)
        # surfaces as a miss here: the store verifies the frame on read.
        data = disk.get_bytes("checkpoint", disk_key)
        if data is None:
            return None
        try:
            state = loads_with_workload(data, workload)
        except SharedObjectUnavailable:
            # References a compiled trace this process lacks: still
            # usable by other processes, so leave it on disk.
            return None
        except Exception:
            disk.stats.corrupt += 1
            disk.discard("checkpoint", disk_key)
            return None
        checkpoint = SimulatorCheckpoint(state)
        self._checkpoints[key] = checkpoint
        return checkpoint

    def peek_warm_checkpoint(
        self, config: SimulationConfig, workload: Workload
    ) -> Optional[SimulatorCheckpoint]:
        """The cached warm checkpoint, or ``None`` without building one.

        A one-shot sweep visits each (configuration, benchmark) once, so
        eagerly snapshotting warm state it will never restore again is
        pure overhead; the sampled runner peeks and falls back to a fresh
        ``Simulator`` + ``warm_up()`` (functionally identical state) when
        nothing is cached.
        """
        key = (_config_key(config), workload.name, workload.profile.seed)
        return self._checkpoints.get(key)

    def warm_checkpoint_if_revisited(
        self, config: SimulationConfig, workload: Workload
    ) -> Optional[SimulatorCheckpoint]:
        """Build-and-cache the warm checkpoint on the *second* request.

        First request for a (configuration, benchmark): return ``None``
        (a one-shot sweep never comes back, so snapshotting would be
        wasted) but remember the key.  Any later request builds -- or
        returns -- the cached checkpoint, so repeated sampled runs of the
        same configuration (bench comparisons, interactive exploration)
        restore one shared warm-up instead of re-warming per jump.
        This tier is memory-only; the persistence-aware entry point is
        :meth:`jump_base_checkpoint`.
        """
        key = (_config_key(config), workload.name, workload.profile.seed)
        checkpoint = self._checkpoints.get(key)
        if checkpoint is not None:
            return checkpoint
        if key in self._requested:
            return self.warm_checkpoint(config, workload)
        self._requested.add(key)
        return None

    def jump_base_checkpoint(
        self, config: SimulationConfig, workload: Workload
    ) -> Optional[SimulatorCheckpoint]:
        """Warm state a sampled run jumps from.

        A checkpoint persisted by any earlier invocation is restored
        directly (no warm-up, no redone skips).  Nothing on disk keeps
        the lazy second-request heuristic: a one-shot sweep -- whose
        per-interval measurements are persisted separately and replayed
        wholesale on later invocations -- never pays for snapshotting
        and pickling state nothing will restore, while a pair that *is*
        revisited builds its checkpoint once and publishes it through
        :meth:`warm_checkpoint` for every later process.
        """
        key = (_config_key(config), workload.name, workload.profile.seed)
        checkpoint = self._checkpoints.get(key)
        if checkpoint is not None:
            return checkpoint
        checkpoint = self._load_persisted_checkpoint(key, workload)
        if checkpoint is not None:
            return checkpoint
        return self.warm_checkpoint_if_revisited(config, workload)

    # -- positioned (post-skip) checkpoints ----------------------------
    def positioned_checkpoint(
        self,
        config: SimulationConfig,
        workload: Workload,
        max_offset: int,
        min_offset: int = 0,
    ) -> Optional[Tuple[int, SimulatorCheckpoint]]:
        """The deepest positioned checkpoint at or before ``max_offset``.

        Returns ``(instruction offset, checkpoint)`` for the largest
        published offset ``min_offset < offset <= max_offset`` of this
        (position key, workload), or ``None`` (``min_offset`` lets a
        caller that already holds a checkpoint at some offset ask only
        for strictly deeper ones, so the reuse counters count real
        reuse).  The checkpoint's state is exactly ``warm_up()`` followed
        by ``skip_to(offset)`` -- functional skips are split-invariant,
        so restoring it and skipping the remaining delta is bit-identical
        to skipping the whole prefix from the warm checkpoint, whatever
        budget or interval selection produced the persisted offset.
        Memory tier first, then the artifact store (offsets are
        enumerated through a small per-(config, workload) index
        artifact).
        """
        key = (position_key(config), workload.name, workload.profile.seed)
        memo = self._positioned.get(key, {})
        candidates = {off for off in memo if min_offset < off <= max_offset}
        disk = self.artifact_store()
        if disk is not None:
            index = disk.get("positioned-index",
                             content_key("positioned-index", *key))
            if isinstance(index, (list, tuple)):
                candidates.update(
                    off for off in index
                    if isinstance(off, int) and min_offset < off <= max_offset
                )
        for offset in sorted(candidates, reverse=True):
            checkpoint = memo.get(offset)
            if checkpoint is None and disk is not None:
                checkpoint = self._load_positioned(disk, key, offset,
                                                   workload)
            if checkpoint is not None:
                self.positioned_hits += 1
                return offset, checkpoint
        self.positioned_misses += 1
        return None

    def _load_positioned(
        self, disk: ArtifactStore, key: Tuple, offset: int,
        workload: Workload,
    ) -> Optional[SimulatorCheckpoint]:
        disk_key = content_key("positioned-checkpoint", *key, offset)
        # Digest-verified by the store: a corrupted checkpoint reads as
        # a miss, never as "successful" wrong machine state.
        data = disk.get_bytes("positioned", disk_key)
        if data is None:
            return None
        try:
            state = loads_with_workload(data, workload)
        except SharedObjectUnavailable:
            # References a compiled trace this process lacks: still
            # usable by other processes, so leave it on disk.
            return None
        except Exception:
            disk.stats.corrupt += 1
            disk.discard("positioned", disk_key)
            return None
        checkpoint = SimulatorCheckpoint(state)
        self._positioned.setdefault(key, {})[offset] = checkpoint
        return checkpoint

    def publish_positioned(
        self,
        config: SimulationConfig,
        workload: Workload,
        offset: int,
        checkpoint: SimulatorCheckpoint,
    ) -> None:
        """Record a post-``skip_to(offset)`` snapshot for later prefix
        reuse (memory tier always; artifact store when one is active).

        The per-(config, workload) offset index is read-merge-written;
        concurrent publishers may lose an index entry to a race, which
        costs a future prefix reuse, never correctness.
        """
        if offset <= 0:
            return
        key = (position_key(config), workload.name, workload.profile.seed)
        self._positioned.setdefault(key, {})[offset] = checkpoint
        self.positioned_publishes += 1
        disk = self.artifact_store()
        if disk is None:
            return
        disk_key = content_key("positioned-checkpoint", *key, offset)
        if disk.path_for("positioned", disk_key).exists():
            # Already persisted *to this store* (memo presence alone
            # proves nothing: the entry may have been published while
            # caching was disabled or routed at a different root);
            # republishing identical bytes would only burn time.
            return
        disk.put_bytes(
            "positioned", disk_key,
            dumps_with_workload(checkpoint._state, workload),
        )
        index_key = content_key("positioned-index", *key)
        index = disk.get("positioned-index", index_key)
        offsets = set(index) if isinstance(index, (list, tuple)) else set()
        offsets.add(offset)
        disk.put("positioned-index", index_key, sorted(offsets))

    # -- frontier (end-of-completed-run) checkpoints -------------------
    def frontier_checkpoint(
        self,
        config: SimulationConfig,
        workload: Workload,
        max_offset: int,
    ) -> Optional[Tuple[int, SimulatorCheckpoint]]:
        """The deepest frontier checkpoint strictly before ``max_offset``.

        Returns ``(committed instructions, checkpoint)`` for the largest
        published frontier ``0 < offset < max_offset`` of this (frontier
        key, workload), or ``None``.  A frontier checkpoint is the exact
        machine state at the end of a *completed* (never cycle-clamped)
        full run, so a run of the same configuration with a larger
        instruction budget restores it and resumes the timed loop from
        the frontier instead of resimulating the prefix -- bit-identical
        to the continuous run, because ``Simulator.run`` only consults
        the budget to decide when to stop.  Strictly ``< max_offset``:
        an equal-budget rerun must resimulate (a run that returns its
        own restored end state would turn ``--no-result-cache`` into a
        silent replay).
        """
        key = (frontier_key(config), workload.name, workload.profile.seed)
        memo = self._frontier.get(key, {})
        candidates = {off for off in memo if 0 < off < max_offset}
        disk = self.artifact_store()
        if disk is not None:
            index = disk.get("frontier-index",
                             content_key("frontier-index", *key))
            if isinstance(index, (list, tuple)):
                candidates.update(
                    off for off in index
                    if isinstance(off, int) and 0 < off < max_offset
                )
        for offset in sorted(candidates, reverse=True):
            checkpoint = memo.get(offset)
            if checkpoint is None and disk is not None:
                checkpoint = self._load_frontier(disk, key, offset,
                                                 workload)
            if checkpoint is not None:
                self.frontier_hits += 1
                return offset, checkpoint
        self.frontier_misses += 1
        return None

    def has_frontier(
        self, config: SimulationConfig, workload: Workload, offset: int
    ) -> bool:
        """Whether a frontier at exactly ``offset`` is already recorded.

        Checked *before* snapshotting at the end of a full run: repeated
        identical runs (bench rounds, sweeps re-entered per scheme) would
        otherwise pay the snapshot-and-pickle cost every time for a
        checkpoint that is already published.
        """
        key = (frontier_key(config), workload.name, workload.profile.seed)
        if offset in self._frontier.get(key, {}):
            return True
        disk = self.artifact_store()
        if disk is None:
            return False
        index = disk.get("frontier-index", content_key("frontier-index", *key))
        return isinstance(index, (list, tuple)) and offset in index

    def _load_frontier(
        self, disk: ArtifactStore, key: Tuple, offset: int,
        workload: Workload,
    ) -> Optional[SimulatorCheckpoint]:
        disk_key = content_key("frontier-checkpoint", *key, offset)
        # Digest-verified by the store: a corrupted checkpoint reads as
        # a miss, never as resumable wrong machine state.
        data = disk.get_bytes("frontier", disk_key)
        if data is None:
            return None
        try:
            state = loads_with_workload(data, workload)
        except SharedObjectUnavailable:
            # References a compiled trace this process lacks: still
            # usable by other processes, so leave it on disk.
            return None
        except Exception:
            disk.stats.corrupt += 1
            disk.discard("frontier", disk_key)
            return None
        checkpoint = SimulatorCheckpoint(state)
        self._frontier.setdefault(key, {})[offset] = checkpoint
        return checkpoint

    def publish_frontier(
        self,
        config: SimulationConfig,
        workload: Workload,
        offset: int,
        checkpoint: SimulatorCheckpoint,
    ) -> None:
        """Record an end-of-run snapshot at ``offset`` committed
        instructions for later budget-increase fast-forwarding.

        Same read-merge-write index discipline as
        :meth:`publish_positioned`: a concurrent-publisher race can lose
        an index entry (costing a future reuse), never correctness.
        """
        if offset <= 0:
            return
        key = (frontier_key(config), workload.name, workload.profile.seed)
        self._frontier.setdefault(key, {})[offset] = checkpoint
        self.frontier_publishes += 1
        disk = self.artifact_store()
        if disk is None:
            return
        disk_key = content_key("frontier-checkpoint", *key, offset)
        if disk.path_for("frontier", disk_key).exists():
            return
        disk.put_bytes(
            "frontier", disk_key,
            dumps_with_workload(checkpoint._state, workload),
        )
        index_key = content_key("frontier-index", *key)
        index = disk.get("frontier-index", index_key)
        offsets = set(index) if isinstance(index, (list, tuple)) else set()
        offsets.add(offset)
        disk.put("frontier-index", index_key, sorted(offsets))

    # -- the memory-then-disk tier for plain-pickle artifacts ----------
    def _cached(self, memo: Dict, kind: str, key: Tuple,
                expected_type: type, compute):
        """Get-or-compute through both tiers: the per-process ``memo``
        dictionary first, then the artifact store (type-checked, so a
        foreign or stale payload degrades to recompute), computing and
        publishing on a full miss."""
        value = memo.get(key)
        if value is not None:
            return value
        disk = self.artifact_store()
        disk_key = content_key(kind, *key) if disk is not None else None
        if disk is not None:
            loaded = disk.get(kind, disk_key)
            if isinstance(loaded, expected_type):
                memo[key] = loaded
                return loaded
        value = compute()
        memo[key] = value
        if disk is not None:
            disk.put(kind, disk_key, value)
        return value

    # -- BBV profiles ---------------------------------------------------
    def bbv_profile(
        self,
        workload: Workload,
        total_instructions: int,
        interval_length: int,
    ) -> BBVProfile:
        """Per-interval basic-block vectors, cached (memory, then disk)."""
        key = (
            workload.name, workload.profile.seed,
            total_instructions, interval_length,
        )
        return self._cached(
            self._bbv_profiles, "bbv", key, BBVProfile,
            lambda: profile_workload(
                workload, total_instructions, interval_length
            ),
        )

    # -- interval selections -------------------------------------------
    def selection(
        self,
        workload: Workload,
        total_instructions: int,
        interval_length: int,
        max_intervals: int,
        projection_dim: int,
        seed: int,
        iterations: int = 30,
    ) -> IntervalSelection:
        """BBV-profile + k-means selection, cached per parameters."""
        key = (
            workload.name, workload.profile.seed, total_instructions,
            interval_length, max_intervals, projection_dim, seed, iterations,
        )
        return self._cached(
            self._selections, "selection", key, IntervalSelection,
            lambda: select_intervals(
                self.bbv_profile(workload, total_instructions,
                                 interval_length),
                max_intervals=max_intervals,
                projection_dim=projection_dim,
                seed=seed,
                iterations=iterations,
            ),
        )

    # -- functional profiles (proxy features) --------------------------
    def functional_profile(
        self,
        config: SimulationConfig,
        workload: Workload,
        total_instructions: int,
        interval_length: int,
    ) -> FunctionalProfile:
        """Per-interval functional features, cached per geometry.

        The key only contains the configuration fields the features
        depend on (cache/predictor geometry, warm budget), so every
        scheme of a sweep that shares them shares one profiling pass.
        """
        key = (
            workload.name, workload.profile.seed,
            total_instructions, interval_length, feature_key(config),
        )
        return self._cached(
            self._profiles, "fprofile", key, FunctionalProfile,
            lambda: functional_profile(
                workload, config, total_instructions, interval_length
            ),
        )

    def clear(self) -> None:
        self._checkpoints.clear()
        self._selections.clear()
        self._profiles.clear()
        self._bbv_profiles.clear()
        self._requested.clear()
        self._positioned.clear()
        self.positioned_hits = 0
        self.positioned_misses = 0
        self.positioned_publishes = 0
        self._frontier.clear()
        self.frontier_hits = 0
        self.frontier_misses = 0
        self.frontier_publishes = 0

    def __len__(self) -> int:
        return (len(self._checkpoints) + len(self._selections)
                + len(self._profiles) + len(self._bbv_profiles)
                + sum(len(v) for v in self._positioned.values())
                + sum(len(v) for v in self._frontier.values()))


#: Default per-process store used by sampled executions.
DEFAULT_STORE = CheckpointStore()


def clear_checkpoint_store() -> None:
    """Drop all cached warm checkpoints and selections (tests, memory)."""
    DEFAULT_STORE.clear()
