"""SimPoint-style representative-interval selection (dependency-free k-means).

Given a :class:`~repro.sampling.bbv.BBVProfile`, cluster the projected
interval vectors with k-means (deterministic k-means++ seeding from a
fixed RNG seed, Lloyd iterations, lowest-index tie-breaking) and pick, per
cluster, the interval closest to the centroid as its representative.  The
representative's weight is the fraction of profiled *instructions* its
cluster covers, so a sampled run reproduces the full run as the
weight-averaged behaviour of K intervals instead of simulating everything.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .bbv import DEFAULT_PROJECTION_DIM, BBVProfile


@dataclass(frozen=True)
class SelectedInterval:
    """One representative interval plus the cluster weight it stands for."""

    index: int                  #: interval number in the profile
    start_instruction: int      #: absolute offset of its first instruction
    length: int                 #: instructions to simulate
    weight: float               #: fraction of the full run it represents
    cluster_size: int           #: intervals in its cluster
    #: Functional cost proxy of this interval and the summed proxy of its
    #: cluster/stratum (zero when selection ran without proxies); used by
    #: the sampled runner's ratio estimator.
    proxy: float = 0.0
    cluster_proxy_mass: float = 0.0


@dataclass(frozen=True)
class IntervalSelection:
    """The outcome of interval selection for one workload."""

    workload: str
    seed: int                   #: workload profile seed
    interval_length: int
    total_instructions: int
    intervals: Tuple[SelectedInterval, ...]    #: sorted by start

    @property
    def k(self) -> int:
        return len(self.intervals)

    @property
    def sampled_instructions(self) -> int:
        """Instructions actually simulated by a sampled run."""
        return sum(ivl.length for ivl in self.intervals)

    def coverage(self) -> float:
        """Sampled fraction of the full instruction budget."""
        if not self.total_instructions:
            return 0.0
        return self.sampled_instructions / self.total_instructions


def _squared_distance(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def _kmeans_pp_seeds(
    vectors: List[List[float]], k: int, rng: random.Random
) -> List[List[float]]:
    """k-means++ initial centroids (deterministic given the RNG state)."""
    centers = [list(vectors[rng.randrange(len(vectors))])]
    while len(centers) < k:
        dists = [
            min(_squared_distance(v, c) for c in centers) for v in vectors
        ]
        total = sum(dists)
        if total <= 0.0:
            # All remaining points coincide with a center; any choice works.
            centers.append(list(vectors[rng.randrange(len(vectors))]))
            continue
        pick = rng.random() * total
        acc = 0.0
        chosen = len(vectors) - 1
        for i, d in enumerate(dists):
            acc += d
            if acc >= pick:
                chosen = i
                break
        centers.append(list(vectors[chosen]))
    return centers


def kmeans(
    vectors: List[List[float]],
    k: int,
    seed: int = 1,
    iterations: int = 30,
) -> List[int]:
    """Cluster ``vectors`` into ``k`` groups; returns per-vector labels.

    Plain Lloyd's algorithm with k-means++ seeding.  Fully deterministic
    for a given ``seed``: the RNG is private, ties in assignment go to the
    lowest cluster index, and empty clusters are re-seeded with the point
    farthest from its centroid.
    """
    n = len(vectors)
    if k <= 0:
        raise ValueError("k must be positive")
    if n == 0:
        return []
    k = min(k, n)
    rng = random.Random(seed ^ 0x53494D50)   # 'SIMP'
    centers = _kmeans_pp_seeds(vectors, k, rng)
    labels = [0] * n
    for _ in range(max(1, iterations)):
        # Assignment step.
        changed = False
        farthest = (-1.0, 0)        # (distance, index) for empty-cluster fix
        for i, vector in enumerate(vectors):
            best, best_d = 0, _squared_distance(vector, centers[0])
            for c in range(1, k):
                d = _squared_distance(vector, centers[c])
                if d < best_d:
                    best, best_d = c, d
            if labels[i] != best:
                labels[i] = best
                changed = True
            if best_d > farthest[0]:
                farthest = (best_d, i)
        # Update step.
        dim = len(vectors[0])
        sums = [[0.0] * dim for _ in range(k)]
        counts = [0] * k
        for label, vector in zip(labels, vectors):
            counts[label] += 1
            target = sums[label]
            for d in range(dim):
                target[d] += vector[d]
        for c in range(k):
            if counts[c]:
                centers[c] = [value / counts[c] for value in sums[c]]
            else:
                # Re-seed an empty cluster at the farthest point.
                centers[c] = list(vectors[farthest[1]])
                changed = True
        if not changed:
            break
    return labels


def select_intervals(
    profile: BBVProfile,
    max_intervals: int = 5,
    projection_dim: int = DEFAULT_PROJECTION_DIM,
    seed: int = 1,
    iterations: int = 30,
) -> IntervalSelection:
    """Pick up to ``max_intervals`` representative intervals + weights."""
    n = len(profile.intervals)
    if n == 0:
        raise ValueError("profile has no intervals to select from")
    k = min(max_intervals, n)
    vectors = profile.vectors(dim=projection_dim, seed=seed)
    labels = kmeans(vectors, k, seed=seed, iterations=iterations)

    # Centroids of the final labelling (kmeans returns labels only).
    members: List[List[int]] = [[] for _ in range(k)]
    for i, label in enumerate(labels):
        members[label].append(i)
    total_instructions = profile.total_instructions or 1

    selected: List[SelectedInterval] = []
    for cluster in members:
        if not cluster:
            continue
        dim = len(vectors[0])
        centroid = [
            sum(vectors[i][d] for i in cluster) / len(cluster)
            for d in range(dim)
        ]
        representative = min(
            cluster,
            key=lambda i: (_squared_distance(vectors[i], centroid), i),
        )
        cluster_instructions = sum(
            profile.intervals[i].length for i in cluster
        )
        record = profile.intervals[representative]
        selected.append(SelectedInterval(
            index=record.index,
            start_instruction=record.start_instruction,
            length=record.length,
            weight=cluster_instructions / total_instructions,
            cluster_size=len(cluster),
        ))
    selected.sort(key=lambda ivl: ivl.start_instruction)
    return IntervalSelection(
        workload=profile.workload,
        seed=profile.seed,
        interval_length=profile.interval_length,
        total_instructions=profile.total_instructions,
        intervals=tuple(selected),
    )


def select_stratified(
    profile,
    proxies: Sequence[float],
    max_intervals: int = 5,
) -> IntervalSelection:
    """Proxy-stratified selection (the default for sampled runs).

    ``profile`` is a :class:`~repro.sampling.proxy.FunctionalProfile` (or
    anything with ``workload``/``seed``/``interval_length``/
    ``total_instructions`` and per-interval ``features`` lengths).  Sorts
    the intervals by their functional cost proxy, splits the order into
    ``max_intervals`` strata of near-equal population, and picks each
    stratum's *earliest* interval as its representative.  Deterministic,
    and -- unlike k-means on near-identical BBVs -- guarantees the
    measured intervals span the cost range, which is what the ratio
    estimator needs.  Under ratio correction any stratum member is an
    equally valid representative, so the earliest is chosen: the measured
    set then clusters at the front of the run, where the sampled runner
    can measure adjacent intervals in one continuous timed stretch (no
    checkpoint restore, no discarded warm-up, exact machine state) and
    functional skips stay short.  The recorded ``cluster_proxy_mass`` is
    the stratum's summed proxy; the sampled runner scales it by the
    representative's measured/proxy cycle ratio.
    """
    lengths = [f.length for f in profile.features]
    n = len(lengths)
    if n == 0:
        raise ValueError("profile has no intervals to select from")
    if len(proxies) != n:
        raise ValueError("need exactly one proxy value per interval")
    k = min(max_intervals, n)
    interval_length = profile.interval_length
    total_instructions = profile.total_instructions or 1
    # Interval 0 is a singleton stratum: it carries the run's one-time
    # start-up transient (L0 / pre-buffer still filling), so its measured
    # cycles must count exactly once and never be extrapolated to warmer
    # intervals.  The remaining intervals are stratified by proxy.
    strata: List[List[int]] = [[0]] if n > 1 else [list(range(n))]
    if n > 1:
        rest = list(range(1, n))
        order = sorted(rest, key=lambda i: (proxies[i], i))
        k_rest = max(1, k - 1)
        bounds = [round(j * len(order) / k_rest) for j in range(k_rest + 1)]
        strata.extend(
            order[bounds[j]:bounds[j + 1]] for j in range(k_rest)
        )
    selected: List[SelectedInterval] = []
    for stratum in strata:
        if not stratum:
            continue
        representative = min(stratum)
        stratum_instructions = sum(lengths[i] for i in stratum)
        selected.append(SelectedInterval(
            index=representative,
            start_instruction=representative * interval_length,
            length=lengths[representative],
            weight=stratum_instructions / total_instructions,
            cluster_size=len(stratum),
            proxy=proxies[representative],
            cluster_proxy_mass=sum(proxies[i] for i in stratum),
        ))
    selected.sort(key=lambda ivl: ivl.start_instruction)
    return IntervalSelection(
        workload=profile.workload,
        seed=profile.seed,
        interval_length=profile.interval_length,
        total_instructions=profile.total_instructions,
        intervals=tuple(selected),
    )
