"""repro: reproduction of "Effective Instruction Prefetching via Fetch
Prestaging" (Falcon, Ramirez, Valero; IPDPS 2005).

The package implements Cache Line Guided Prestaging (CLGP), Fetch Directed
Prefetching (FDP) and non-prefetching baselines on top of a trace-driven
decoupled-front-end simulator with synthetic SPECint2000-like workloads.

Quickstart
----------
The supported entry point is the :mod:`repro.api` façade:

>>> from repro.api import ExperimentSpec, Session
>>> with Session() as session:
...     result = session.run(ExperimentSpec("CLGP+L0", "gcc",
...                                         max_instructions=5000))
>>> result.results[0].ipc > 0
True
"""

from .faults import FaultPlan
from .simulator import (
    SimulationConfig,
    SimulationResult,
    Simulator,
    TaskFailure,
    TaskFailureError,
    configs_for_schemes,
    harmonic_mean_ipc,
    paper_config,
    simulate,
    speedup,
)
from .technology import TECH_045, TECH_090, TECHNOLOGY_ROADMAP, resolve_technology
from .workloads import (
    DEFAULT_MIX,
    SPECINT2000_NAMES,
    WorkloadProfile,
    build_workload,
    profile_for,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_MIX",
    "FaultPlan",
    "SPECINT2000_NAMES",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "TECH_045",
    "TECH_090",
    "TECHNOLOGY_ROADMAP",
    "TaskFailure",
    "TaskFailureError",
    "WorkloadProfile",
    "__version__",
    "build_workload",
    "configs_for_schemes",
    "harmonic_mean_ipc",
    "paper_config",
    "profile_for",
    "resolve_technology",
    "simulate",
    "speedup",
]
