"""repro: reproduction of "Effective Instruction Prefetching via Fetch
Prestaging" (Falcon, Ramirez, Valero; IPDPS 2005).

The package implements Cache Line Guided Prestaging (CLGP), Fetch Directed
Prefetching (FDP) and non-prefetching baselines on top of a trace-driven
decoupled-front-end simulator with synthetic SPECint2000-like workloads.

Quickstart
----------
>>> from repro import paper_config, run_single
>>> config = paper_config("CLGP+L0", l1_size_bytes=4096, technology="0.045um")
>>> result = run_single(config, "gcc", max_instructions=5000)
>>> result.ipc > 0
True
"""

from .simulator import (
    SimulationConfig,
    SimulationResult,
    Simulator,
    configs_for_schemes,
    harmonic_mean_ipc,
    paper_config,
    run_benchmarks,
    run_mix,
    run_single,
    simulate,
    speedup,
)
from .technology import TECH_045, TECH_090, TECHNOLOGY_ROADMAP, resolve_technology
from .workloads import (
    DEFAULT_MIX,
    SPECINT2000_NAMES,
    WorkloadProfile,
    build_workload,
    profile_for,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_MIX",
    "SPECINT2000_NAMES",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "TECH_045",
    "TECH_090",
    "TECHNOLOGY_ROADMAP",
    "WorkloadProfile",
    "__version__",
    "build_workload",
    "configs_for_schemes",
    "harmonic_mean_ipc",
    "paper_config",
    "profile_for",
    "resolve_technology",
    "run_benchmarks",
    "run_mix",
    "run_single",
    "simulate",
    "speedup",
]
