"""Functional warm-up of predictor and cache state before timing.

The paper simulates 300-million-instruction SimPoint slices, so its
structures are measured warm.  Re-running hundreds of millions of
instructions in pure Python is not viable, so before the timed portion the
simulator *functionally* warms

* the stream predictor (trained on the correct-path stream sequence, with
  the same path-history folding the prediction unit uses),
* the L2 and L1 instruction caches (filled with the touched lines in
  execution order so the replacement state is realistic).

The warm-up touches no timing state and is identical in structure for every
fetch engine, so configuration comparisons stay fair.  It replays the
beginning of the same deterministic correct path that the timed run then
measures (the synthetic workloads are statistically stationary, so this is
equivalent to measuring a later, warmed slice).

Because many experiment sweeps run the same benchmark under dozens of
configurations, the expensive part of the warm-up (walking the correct
path and training a predictor) is computed once per (workload, predictor
geometry, budget) and cached; each simulation then receives a deep copy of
the trained predictor and replays the recorded line trace into its own
caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cache.keys import content_key
from ..cache.store import active_store
from ..frontend.stream_predictor import StreamPredictor
from ..kernels import batch_disabled
from ..memory.cache import Cache
from ..memory.hierarchy import MemoryHierarchy
from ..workloads.isa import INSTRUCTION_BYTES, BranchKind, span_lines
from ..workloads.trace import ActualStream, CompiledPathOracle, Workload


@dataclass
class WarmupArtifacts:
    """Result of one functional warm-up walk (cacheable, config-independent)."""

    predictor: StreamPredictor          #: trained prototype (cloned per run)
    line_trace: List[int]               #: cache-line addresses in first-touch order
    instructions: int                   #: correct-path instructions replayed
    #: Warmed-cache snapshots keyed by cache geometry, filled lazily by
    #: :func:`apply_warmup` so sweeps replay the line trace once per
    #: (workload, cache organisation) instead of once per run.
    cache_snapshots: Dict[Tuple, tuple] = field(default_factory=dict)


_CACHE: Dict[Tuple, WarmupArtifacts] = {}


def compute_warmup(
    workload: Workload,
    instructions: int,
    base_entries: int = 1024,
    history_entries: int = 6144,
    max_stream_instructions: int = 64,
    line_size: int = 64,
) -> WarmupArtifacts:
    """Walk the correct path for ``instructions`` and build warm-up state."""
    predictor = StreamPredictor(
        base_entries=base_entries,
        history_entries=history_entries,
        default_length=max_stream_instructions,
    )
    oracle = workload.new_oracle()
    history = 0
    replayed = 0
    line_trace: List[int] = []
    seen_last: Optional[int] = None
    while replayed < instructions:
        addr = oracle.current_address()
        actual = oracle.peek_stream(max_stream_instructions)
        predictor.train(addr, history, actual)
        history = StreamPredictor.fold_history(
            history, actual.next_addr, actual.ends_taken
        )
        for line in span_lines(addr, actual.length, line_size):
            if line != seen_last:
                line_trace.append(line)
                seen_last = line
        oracle.advance(actual.length)
        replayed += actual.length
    return WarmupArtifacts(
        predictor=predictor, line_trace=line_trace, instructions=replayed
    )


def get_warmup_artifacts(
    workload: Workload,
    instructions: int,
    base_entries: int = 1024,
    history_entries: int = 6144,
    max_stream_instructions: int = 64,
    line_size: int = 64,
) -> WarmupArtifacts:
    """Cached wrapper around :func:`compute_warmup`.

    Misses fall through to the persistent artifact store (when enabled)
    before recomputing: the warm-up walk is deterministic per key, so a
    trained predictor and its line trace published by any previous
    process replay bit-identically here.  Per-geometry cache snapshots
    are per-process (cheap to rebuild, geometry-dependent) and start
    empty on a disk load.
    """
    key = (
        workload.name, workload.profile.seed, instructions,
        base_entries, history_entries, max_stream_instructions, line_size,
    )
    if key not in _CACHE:
        disk = active_store()
        disk_key = content_key("warmup-artifacts", *key) if disk is not None else None
        artifacts = None
        if disk is not None:
            loaded = disk.get("warmup", disk_key)
            if isinstance(loaded, WarmupArtifacts):
                artifacts = loaded
        if artifacts is None:
            artifacts = compute_warmup(
                workload, instructions,
                base_entries=base_entries,
                history_entries=history_entries,
                max_stream_instructions=max_stream_instructions,
                line_size=line_size,
            )
            if disk is not None:
                # Publish without the per-process cache snapshots.
                disk.put("warmup", disk_key, WarmupArtifacts(
                    predictor=artifacts.predictor,
                    line_trace=artifacts.line_trace,
                    instructions=artifacts.instructions,
                ))
        _CACHE[key] = artifacts
    return _CACHE[key]


def clear_warmup_cache() -> None:
    _CACHE.clear()


def _cache_geometry(cache: Cache) -> Tuple:
    return (
        cache.size_bytes, cache.line_size, cache.associativity,
        cache.policy_name, cache._policy_seed,
    )


def _cache_is_fresh(cache: Cache) -> bool:
    """True when the cache has never been accessed or filled, so restoring
    a warm snapshot is equivalent to replaying the fills into it."""
    stats = cache.stats
    return not (stats.hits or stats.misses or stats.fills or cache.occupancy())


def apply_warmup(
    artifacts: WarmupArtifacts,
    hierarchy: Optional[MemoryHierarchy],
    warm_caches: bool = True,
) -> StreamPredictor:
    """Produce a private trained predictor and (optionally) warm the caches
    of ``hierarchy`` by replaying the recorded line trace.

    The replay result only depends on the cache geometry, so it is done
    once per geometry and snapshotted; later runs restore the snapshot
    (identical contents, replacement state and fill statistics).
    """
    predictor = artifacts.predictor.clone()
    if warm_caches and hierarchy is not None:
        l1, l2 = hierarchy.l1, hierarchy.l2
        key = (_cache_geometry(l1), _cache_geometry(l2))
        fresh = _cache_is_fresh(l1) and _cache_is_fresh(l2)
        snaps = artifacts.cache_snapshots.get(key) if fresh else None
        if snaps is not None:
            l1.restore(snaps[0])
            l2.restore(snaps[1])
        else:
            for line in artifacts.line_trace:
                l2.fill(line)
                l1.fill(line)
            if fresh:
                # Snapshots describe "warm state from empty"; only record
                # them when the replay indeed started from empty caches.
                artifacts.cache_snapshots.setdefault(
                    key, (l1.snapshot(), l2.snapshot())
                )
    return predictor


def functional_advance(
    prediction,
    hierarchy: Optional[MemoryHierarchy],
    target_instructions: int,
    warm_caches: bool = True,
) -> Tuple[int, int]:
    """Functionally fast-forward a prediction unit's correct path.

    Advances ``prediction``'s oracle until ``target_instructions``
    correct-path instructions have been consumed *in total* (the count is
    absolute, not relative), keeping the unit's predictor, RAS and path
    history trained exactly as :func:`compute_warmup` would, and filling
    the instruction caches with every touched line.  No timing state is
    touched, so this is the "skip" part of sampled simulation: position
    the machine at an interval start as if it had executed the prefix.

    The final stream may straddle the target; it is consumed only up to
    the target so the oracle lands exactly on the requested instruction
    (possibly mid-block), which keeps interval boundaries deterministic.
    The cut stream is remembered on the prediction unit
    (``_skip_partial``), and a later skip resuming from exactly that
    position consumes the remainder *without retraining the predictor*
    -- so a skip split at an arbitrary point (e.g. a positioned
    checkpoint taken between two skips) is bit-identical to one
    continuous skip, which is what lets persisted post-skip snapshots be
    restored by runs whose skip targets were never seen before.
    Returns ``(instructions skipped, correct-path loads skipped)``; the
    load count lets the caller keep the data-cache model's positional
    miss hashing aligned with a full run (its decisions are a function of
    the dynamic load index).
    """
    oracle = prediction.oracle
    predictor = prediction.predictor
    loads_for = prediction.bbdict.loads_for
    start = oracle.consumed_instructions
    loads = 0
    line_size = hierarchy.line_size if hierarchy is not None else 64
    fill_caches = warm_caches and hierarchy is not None
    if fill_caches:
        l1_fill, l2_fill = hierarchy.l1.fill, hierarchy.l2.fill
    # Resume a stream a previous skip cut short: the predictor already
    # trained on the full stream at its start address, so only consume.
    partial = getattr(prediction, "_skip_partial", None)
    if partial is not None:
        position, actual, consumed = partial
        if position != oracle.consumed_instructions:
            # The machine moved past the recorded position (a timed run
            # intervened): the leftover no longer applies.
            prediction._skip_partial = None
        elif oracle.consumed_instructions < target_instructions:
            left = actual.length - consumed
            take = min(left, target_instructions - oracle.consumed_instructions)
            addr = oracle.current_address()
            loads += loads_for(addr, take)
            if fill_caches:
                for line in span_lines(addr, take, line_size):
                    l2_fill(line)
                    l1_fill(line)
            oracle.advance(take)
            if take == left:
                prediction._apply_terminator(actual)
                prediction._skip_partial = None
            else:
                prediction._skip_partial = (
                    oracle.consumed_instructions, actual, consumed + take
                )
    # Batched stride: when the oracle replays a compiled trace and the
    # cursor sits exactly on a canonical stream boundary, consume whole
    # pre-segmented streams straight from the segment columns -- no
    # peek_stream re-derivation, no per-block dict work, O(1) cursor
    # jumps.  A cursor left mid-stream by the timed loop realigns after
    # the next taken-ended stream (see StreamSegments), so at most a few
    # generic iterations run before the batched path takes over.
    batchable = (
        isinstance(oracle, CompiledPathOracle) and not batch_disabled()
    )
    while oracle.consumed_instructions < target_instructions:
        if batchable:
            segments = oracle.segments(prediction.max_stream)
            index = segments.aligned_index(oracle.consumed_instructions)
            if index is not None:
                loads += _advance_segments(
                    prediction, hierarchy, segments, index,
                    target_instructions, fill_caches, line_size,
                )
                break
        addr = oracle.current_address()
        actual = oracle.peek_stream(prediction.max_stream)
        predictor.train(addr, prediction.history, actual)
        remaining = target_instructions - oracle.consumed_instructions
        take = min(actual.length, remaining)
        loads += loads_for(addr, take)
        if fill_caches:
            for line in span_lines(addr, take, line_size):
                l2_fill(line)
                l1_fill(line)
        if actual.length <= remaining:
            oracle.advance(actual.length)
            # Full stream consumed: apply its terminator to RAS/history,
            # exactly as a correctly-predicted stream would.
            prediction._apply_terminator(actual)
        else:
            oracle.advance(remaining)
            prediction._skip_partial = (
                oracle.consumed_instructions, actual, take
            )
    return oracle.consumed_instructions - start, loads


def _advance_segments(
    prediction,
    hierarchy: Optional[MemoryHierarchy],
    segments,
    index: int,
    target_instructions: int,
    fill_caches: bool,
    line_size: int,
) -> int:
    """Consume canonical streams from segment ``index`` up to the target.

    Performs exactly the per-stream work of the generic loop in
    :func:`functional_advance` -- predictor training, RAS/history
    updates, load counting and cache fills -- but reads every stream from
    the shared :class:`~repro.workloads.trace.StreamSegments` columns and
    moves the oracle cursor once at the end.  Returns the skipped load
    count; always reaches the target (cutting the final stream and
    recording ``_skip_partial`` exactly like the generic path).
    """
    oracle = prediction.oracle
    ras = prediction.ras
    bbdict = prediction.bbdict
    train = prediction.predictor.train_parts
    fold = StreamPredictor.fold_history
    history = prediction.history
    pos = oracle.consumed_instructions
    loads = 0
    if fill_caches:
        l1_span = hierarchy.l1.fill_span
        l2_span = hierarchy.l2.fill_span
        spans = segments.lines(line_size, 0)
    start_a = segments.start_addr
    length_a = segments.length
    next_a = segments.next_addr
    taken_a = segments.ends_taken
    term_a = segments.term_addr
    kind_l = segments.kind
    loads_a = segments.loads
    end_index_a = segments.end_index
    end_offset_a = segments.end_offset
    CALL, RETURN = BranchKind.CALL, BranchKind.RETURN
    #: Derived per-segment data is grown this many segments at a time.
    grow = 128
    i = index
    cursor_index = oracle._index
    cursor_offset = oracle._offset
    while pos < target_instructions:
        if i >= len(length_a):
            segments.ensure_count(i + grow)
        addr = start_a[i]
        length = length_a[i]
        next_addr = next_a[i]
        kind = kind_l[i]
        train(addr, history, length, next_addr, kind)
        remaining = target_instructions - pos
        if length <= remaining:
            if i >= len(loads_a):
                segments.ensure_loads(bbdict, i + grow)
            loads += loads_a[i]
            if fill_caches:
                if i >= len(spans):
                    segments.lines(line_size, i + grow)
                lines = spans[i]
                l2_span(lines)
                l1_span(lines)
            if kind is CALL:
                ras.push(term_a[i] + INSTRUCTION_BYTES)
            elif kind is RETURN:
                ras.pop()
            history = fold(history, next_addr, bool(taken_a[i]))
            pos += length
            cursor_index = end_index_a[i]
            cursor_offset = end_offset_a[i]
            i += 1
        else:
            # The stream straddles the target: consume only the prefix
            # and remember the cut stream, as the generic path does.
            take = remaining
            loads += bbdict.loads_for(addr, take)
            if fill_caches:
                lines = span_lines(addr, take, line_size)
                l2_span(lines)
                l1_span(lines)
            oracle._set_position(cursor_index, cursor_offset, pos)
            oracle.advance(take)
            prediction.history = history
            prediction._skip_partial = (
                pos + take,
                ActualStream(
                    start=addr, length=length, next_addr=next_addr,
                    ends_taken=bool(taken_a[i]), terminator_kind=kind,
                    terminator_addr=term_a[i],
                ),
                take,
            )
            return loads
    oracle._set_position(cursor_index, cursor_offset, pos)
    prediction.history = history
    return loads


def functional_warmup(
    workload: Workload,
    predictor: StreamPredictor,
    hierarchy: Optional[MemoryHierarchy],
    instructions: int,
    max_stream_instructions: int = 64,
    warm_caches: bool = True,
) -> int:
    """Uncached, in-place warm-up (kept for tests and simple callers).

    Trains ``predictor`` and fills the caches directly; returns the number
    of instructions replayed.
    """
    if instructions <= 0:
        return 0
    oracle = workload.new_oracle()
    history = 0
    replayed = 0
    line_size = hierarchy.line_size if hierarchy is not None else 64
    while replayed < instructions:
        addr = oracle.current_address()
        actual = oracle.peek_stream(max_stream_instructions)
        predictor.train(addr, history, actual)
        history = StreamPredictor.fold_history(
            history, actual.next_addr, actual.ends_taken
        )
        if warm_caches and hierarchy is not None:
            for line in span_lines(addr, actual.length, line_size):
                hierarchy.l2.fill(line)
                hierarchy.l1.fill(line)
        oracle.advance(actual.length)
        replayed += actual.length
    return replayed
