"""Named configuration presets matching the paper's evaluated machines.

The figures compare a fixed set of configurations across L1 sizes and the
two technology nodes:

* ``ideal``            -- 1-cycle L1 of any size, no prefetching (Figure 1),
* ``base``             -- blocking multi-cycle L1, no prefetching,
* ``base-pipelined``   -- pipelined multi-cycle L1, no prefetching,
* ``base+L0``          -- blocking L1 plus a one-cycle L0 filter cache,
* ``FDP`` / ``FDP+L0`` -- fetch directed prefetching (one-cycle pre-buffer),
* ``CLGP`` / ``CLGP+L0`` -- cache line guided prestaging,
* ``FDP+L0+PB16`` / ``CLGP+L0+PB16`` -- 16-entry pipelined pre-buffers.

:func:`paper_config` builds any of them for a given L1 size and technology.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .config import SimulationConfig

#: Preset scheme names accepted by :func:`paper_config`.
SCHEMES = (
    "ideal",
    "base",
    "base-pipelined",
    "base+L0",
    "FDP",
    "FDP+L0",
    "FDP+L0+PB16",
    "CLGP",
    "CLGP+L0",
    "CLGP+L0+PB16",
)

#: The six configurations plotted in Figure 5, in the paper's legend order.
FIGURE5_SCHEMES = (
    "CLGP+L0+PB16",
    "CLGP+L0",
    "FDP+L0+PB16",
    "FDP+L0",
    "base-pipelined",
    "base+L0",
)

#: The configurations plotted in Figure 1.
FIGURE1_SCHEMES = ("ideal", "base-pipelined", "base+L0", "base")

#: The per-benchmark comparison of Figure 6.
FIGURE6_SCHEMES = ("base-pipelined", "FDP+L0+PB16", "CLGP+L0+PB16")


def paper_config(
    scheme: str,
    l1_size_bytes: int = 4096,
    technology: object = "0.045um",
    max_instructions: int = 20_000,
    **overrides,
) -> SimulationConfig:
    """Build a :class:`SimulationConfig` for one of the paper's machines."""
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")

    base = dict(
        technology=technology,
        l1_size_bytes=l1_size_bytes,
        max_instructions=max_instructions,
        label=scheme,
    )

    if scheme == "ideal":
        base.update(engine="baseline", ideal_l1=True)
    elif scheme == "base":
        base.update(engine="baseline")
    elif scheme == "base-pipelined":
        base.update(engine="baseline", l1_pipelined=True)
    elif scheme == "base+L0":
        base.update(engine="baseline", l0_enabled=True)
    elif scheme == "FDP":
        base.update(engine="fdp")
    elif scheme == "FDP+L0":
        base.update(engine="fdp", l0_enabled=True)
    elif scheme == "FDP+L0+PB16":
        base.update(engine="fdp", l0_enabled=True, prebuffer_pipelined=True)
    elif scheme == "CLGP":
        base.update(engine="clgp")
    elif scheme == "CLGP+L0":
        base.update(engine="clgp", l0_enabled=True)
    elif scheme == "CLGP+L0+PB16":
        base.update(engine="clgp", l0_enabled=True, prebuffer_pipelined=True)

    base.update(overrides)
    return SimulationConfig(**base)


def configs_for_schemes(
    schemes: Iterable[str],
    l1_size_bytes: int,
    technology: object,
    max_instructions: int = 20_000,
    **overrides,
) -> List[SimulationConfig]:
    """Configurations for several schemes at one design point."""
    return [
        paper_config(
            scheme, l1_size_bytes=l1_size_bytes, technology=technology,
            max_instructions=max_instructions, **overrides,
        )
        for scheme in schemes
    ]


def scheme_descriptions() -> Dict[str, str]:
    """Short descriptions for reports and the CLI."""
    return {
        "ideal": "no prefetching, L1 forced to 1-cycle access (upper bound)",
        "base": "no prefetching, blocking multi-cycle L1",
        "base-pipelined": "no prefetching, pipelined multi-cycle L1",
        "base+L0": "no prefetching, one-cycle L0 filter cache in front of L1",
        "FDP": "fetch directed prefetching, one-cycle prefetch buffer",
        "FDP+L0": "FDP plus a one-cycle L0 cache",
        "FDP+L0+PB16": "FDP + L0 with a 16-entry pipelined prefetch buffer",
        "CLGP": "cache line guided prestaging, one-cycle prestage buffer",
        "CLGP+L0": "CLGP plus a one-cycle L0 emergency cache",
        "CLGP+L0+PB16": "CLGP + L0 with a 16-entry pipelined prestage buffer",
    }
