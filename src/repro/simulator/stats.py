"""Simulation results and statistics aggregation.

A single run produces a :class:`SimulationResult`; multi-benchmark sweeps
aggregate results with the harmonic mean of IPC, matching the HMEAN bars in
the paper's Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..memory.hierarchy import FETCH_SOURCES


@dataclass
class SimulationResult:
    """Everything measured in one simulation run."""

    config_label: str
    workload: str
    cycles: int
    committed_instructions: int
    # front end
    fetch_source_lines: Dict[str, int] = field(default_factory=dict)
    fetch_source_instructions: Dict[str, int] = field(default_factory=dict)
    prefetch_source: Dict[str, int] = field(default_factory=dict)
    prefetches_issued: int = 0
    stream_mispredictions: int = 0
    streams_predicted: int = 0
    wrong_path_instructions: int = 0
    flushes: int = 0
    # caches
    l1_hits: int = 0
    l1_misses: int = 0
    l0_hits: int = 0
    l0_misses: int = 0
    l2_instruction_hits: int = 0
    l2_instruction_misses: int = 0
    # back end
    dispatched_instructions: int = 0
    squashed_instructions: int = 0
    loads: int = 0
    dl1_misses: int = 0
    bus_grants: Dict[str, int] = field(default_factory=dict)
    # raw extras for debugging / extended analysis
    extras: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (the paper's main metric)."""
        return self.committed_instructions / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        if not self.streams_predicted:
            return 0.0
        return self.stream_mispredictions / self.streams_predicted

    def fetch_source_fractions(self, per_instruction: bool = True) -> Dict[str, float]:
        counts = (
            self.fetch_source_instructions if per_instruction
            else self.fetch_source_lines
        )
        total = sum(counts.values())
        if not total:
            return {s: 0.0 for s in FETCH_SOURCES}
        return {s: counts.get(s, 0) / total for s in FETCH_SOURCES}

    def prefetch_source_fractions(self) -> Dict[str, float]:
        total = sum(self.prefetch_source.values())
        if not total:
            return {s: 0.0 for s in FETCH_SOURCES}
        return {s: self.prefetch_source.get(s, 0) / total for s in FETCH_SOURCES}

    def one_cycle_fetch_fraction(self) -> float:
        """Fraction of fetches served by one-cycle sources (pre-buffer + L0),
        the paper's headline 88% / 95% statistic."""
        fractions = self.fetch_source_fractions()
        return fractions.get("PB", 0.0) + fractions.get("il0", 0.0)

    def summary(self) -> str:
        return (
            f"{self.config_label:>18s} | {self.workload:>8s} | "
            f"IPC {self.ipc:5.3f} | cycles {self.cycles:>8d} | "
            f"mispred {self.misprediction_rate:5.1%} | "
            f"1-cycle fetches {self.one_cycle_fetch_fraction():5.1%}"
        )


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; returns 0.0 for an empty input or any zero value."""
    vals = list(values)
    if not vals or any(v <= 0 for v in vals):
        return 0.0
    return len(vals) / sum(1.0 / v for v in vals)


def harmonic_mean_ipc(results: Iterable[SimulationResult]) -> float:
    """Harmonic-mean IPC over a set of per-benchmark results (paper HMEAN)."""
    return harmonic_mean(r.ipc for r in results)


def aggregate_fetch_sources(results: Iterable[SimulationResult],
                            per_instruction: bool = True) -> Dict[str, float]:
    """Fetch-source distribution summed over several benchmark runs."""
    totals: Dict[str, int] = {s: 0 for s in FETCH_SOURCES}
    for result in results:
        counts = (
            result.fetch_source_instructions if per_instruction
            else result.fetch_source_lines
        )
        for source, count in counts.items():
            totals[source] = totals.get(source, 0) + count
    grand = sum(totals.values())
    if not grand:
        return {s: 0.0 for s in FETCH_SOURCES}
    return {s: totals[s] / grand for s in FETCH_SOURCES}


def aggregate_prefetch_sources(results: Iterable[SimulationResult]) -> Dict[str, float]:
    """Prefetch-source distribution summed over several benchmark runs."""
    totals: Dict[str, int] = {s: 0 for s in FETCH_SOURCES}
    for result in results:
        for source, count in result.prefetch_source.items():
            totals[source] = totals.get(source, 0) + count
    grand = sum(totals.values())
    if not grand:
        return {s: 0.0 for s in FETCH_SOURCES}
    return {s: totals[s] / grand for s in FETCH_SOURCES}


def speedup(new: float, old: float) -> float:
    """Relative speedup of ``new`` over ``old`` (e.g. 0.035 = +3.5%)."""
    if old <= 0:
        return 0.0
    return new / old - 1.0
