"""Simulation results and statistics aggregation.

A single run produces a :class:`SimulationResult`; multi-benchmark sweeps
aggregate results with the harmonic mean of IPC, matching the HMEAN bars in
the paper's Figure 6.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..memory.hierarchy import FETCH_SOURCES


@dataclass
class SimulationResult:
    """Everything measured in one simulation run."""

    config_label: str
    workload: str
    cycles: int
    committed_instructions: int
    # front end
    fetch_source_lines: Dict[str, int] = field(default_factory=dict)
    fetch_source_instructions: Dict[str, int] = field(default_factory=dict)
    prefetch_source: Dict[str, int] = field(default_factory=dict)
    prefetches_issued: int = 0
    stream_mispredictions: int = 0
    streams_predicted: int = 0
    wrong_path_instructions: int = 0
    flushes: int = 0
    # caches
    l1_hits: int = 0
    l1_misses: int = 0
    l0_hits: int = 0
    l0_misses: int = 0
    l2_instruction_hits: int = 0
    l2_instruction_misses: int = 0
    # back end
    dispatched_instructions: int = 0
    squashed_instructions: int = 0
    loads: int = 0
    dl1_misses: int = 0
    bus_grants: Dict[str, int] = field(default_factory=dict)
    # raw extras for debugging / extended analysis
    extras: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (the paper's main metric)."""
        return self.committed_instructions / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        if not self.streams_predicted:
            return 0.0
        return self.stream_mispredictions / self.streams_predicted

    def fetch_source_fractions(self, per_instruction: bool = True) -> Dict[str, float]:
        counts = (
            self.fetch_source_instructions if per_instruction
            else self.fetch_source_lines
        )
        total = sum(counts.values())
        if not total:
            return {s: 0.0 for s in FETCH_SOURCES}
        return {s: counts.get(s, 0) / total for s in FETCH_SOURCES}

    def prefetch_source_fractions(self) -> Dict[str, float]:
        total = sum(self.prefetch_source.values())
        if not total:
            return {s: 0.0 for s in FETCH_SOURCES}
        return {s: self.prefetch_source.get(s, 0) / total for s in FETCH_SOURCES}

    def one_cycle_fetch_fraction(self) -> float:
        """Fraction of fetches served by one-cycle sources (pre-buffer + L0),
        the paper's headline 88% / 95% statistic."""
        fractions = self.fetch_source_fractions()
        return fractions.get("PB", 0.0) + fractions.get("il0", 0.0)

    def summary(self) -> str:
        return (
            f"{self.config_label:>18s} | {self.workload:>8s} | "
            f"IPC {self.ipc:5.3f} | cycles {self.cycles:>8d} | "
            f"mispred {self.misprediction_rate:5.1%} | "
            f"1-cycle fetches {self.one_cycle_fetch_fraction():5.1%}"
        )


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; returns 0.0 for an empty input or any zero value."""
    vals = list(values)
    if not vals or any(v <= 0 for v in vals):
        return 0.0
    return len(vals) / sum(1.0 / v for v in vals)


def harmonic_mean_ipc(results: Iterable[SimulationResult]) -> float:
    """Harmonic-mean IPC over a set of per-benchmark results (paper HMEAN)."""
    return harmonic_mean(r.ipc for r in results)


def aggregate_fetch_sources(results: Iterable[SimulationResult],
                            per_instruction: bool = True) -> Dict[str, float]:
    """Fetch-source distribution summed over several benchmark runs."""
    totals: Dict[str, int] = {s: 0 for s in FETCH_SOURCES}
    for result in results:
        counts = (
            result.fetch_source_instructions if per_instruction
            else result.fetch_source_lines
        )
        for source, count in counts.items():
            totals[source] = totals.get(source, 0) + count
    grand = sum(totals.values())
    if not grand:
        return {s: 0.0 for s in FETCH_SOURCES}
    return {s: totals[s] / grand for s in FETCH_SOURCES}


def aggregate_prefetch_sources(results: Iterable[SimulationResult]) -> Dict[str, float]:
    """Prefetch-source distribution summed over several benchmark runs."""
    totals: Dict[str, int] = {s: 0 for s in FETCH_SOURCES}
    for result in results:
        for source, count in result.prefetch_source.items():
            totals[source] = totals.get(source, 0) + count
    grand = sum(totals.values())
    if not grand:
        return {s: 0.0 for s in FETCH_SOURCES}
    return {s: totals[s] / grand for s in FETCH_SOURCES}


#: ``extras`` entries that describe the configuration rather than count
#: events; a weighted combination keeps them as-is instead of scaling them.
_NON_ADDITIVE_EXTRAS = frozenset(
    {"l1_latency", "l2_latency", "prebuffer_entries"}
)


def weighted_aggregate(
    results: Sequence[SimulationResult],
    weights: Sequence[float],
    total_instructions: Optional[int] = None,
) -> SimulationResult:
    """SimPoint-style weighted combination of per-interval results.

    Each result is one simulated representative interval and ``weights[i]``
    is the fraction of the full run its cluster covers.  The combined
    estimate follows the standard sampled-simulation arithmetic: overall
    CPI is the weight-averaged per-interval CPI (so the reported IPC is
    the weighted harmonic mean of interval IPCs), and every event counter
    is each interval's *rate* (events per committed instruction) averaged
    by weight and scaled to ``total_instructions``.  Counters stay
    integers; ``extras`` entries naming configuration constants (cache
    latencies, buffer sizes) are carried over unscaled.
    """
    results = list(results)
    weights = [float(w) for w in weights]
    if not results:
        raise ValueError("weighted_aggregate needs at least one result")
    if len(results) != len(weights):
        raise ValueError("results and weights differ in length")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("weights must not all be zero")
    weights = [w / total_weight for w in weights]
    if total_instructions is None:
        total_instructions = sum(r.committed_instructions for r in results)

    # Per-interval scale: instructions the interval stands for, divided by
    # the instructions it actually committed (rate extrapolation).
    scales = [
        w * total_instructions / r.committed_instructions
        if r.committed_instructions else 0.0
        for w, r in zip(weights, results)
    ]
    cpi = sum(
        w * r.cycles / r.committed_instructions
        for w, r in zip(weights, results)
        if r.committed_instructions
    )

    def combine_int(name: str) -> int:
        return round(sum(
            s * getattr(r, name) for s, r in zip(scales, results)
        ))

    def combine_dict(name: str) -> Dict[str, int]:
        out: Dict[str, float] = {}
        for s, r in zip(scales, results):
            for key, value in getattr(r, name).items():
                out[key] = out.get(key, 0.0) + s * value
        return {key: round(value) for key, value in out.items()}

    combined: Dict[str, object] = {
        "config_label": results[0].config_label,
        "workload": results[0].workload,
        "cycles": max(1, round(cpi * total_instructions)),
        "committed_instructions": total_instructions,
    }
    for f in dataclasses.fields(SimulationResult):
        if f.name in combined or f.name == "extras":
            continue
        sample = getattr(results[0], f.name)
        if isinstance(sample, dict):
            combined[f.name] = combine_dict(f.name)
        else:
            combined[f.name] = combine_int(f.name)

    extras: Dict[str, float] = {}
    for s, r in zip(scales, results):
        for key, value in r.extras.items():
            if key in _NON_ADDITIVE_EXTRAS:
                extras[key] = value
            else:
                extras[key] = extras.get(key, 0.0) + s * value
    combined["extras"] = extras
    return SimulationResult(**combined)


def result_delta(
    after: SimulationResult, before: Optional[SimulationResult]
) -> SimulationResult:
    """Counters accumulated between two snapshots of one resumable run.

    ``Simulator.run`` is resumable and its result counters are cumulative,
    so the statistics of a measurement window are the field-wise difference
    of the result at the window's end and the result at its start.  Sampled
    simulation uses this to discard a short timed warm-up stretch in front
    of each measured interval: the pipeline-fill/queue-fill transient lands
    in the discarded prefix instead of biasing the interval's IPC.
    ``before=None`` returns ``after`` unchanged (window starts at reset).
    """
    if before is None:
        return after
    fields: Dict[str, object] = {
        "config_label": after.config_label,
        "workload": after.workload,
    }
    for f in dataclasses.fields(SimulationResult):
        if f.name in fields or f.name == "extras":
            continue
        a, b = getattr(after, f.name), getattr(before, f.name)
        if isinstance(a, dict):
            fields[f.name] = {
                key: a.get(key, 0) - b.get(key, 0)
                for key in set(a) | set(b)
            }
        else:
            fields[f.name] = a - b
    extras: Dict[str, float] = {}
    for key, value in after.extras.items():
        if key in _NON_ADDITIVE_EXTRAS:
            extras[key] = value
        else:
            extras[key] = value - before.extras.get(key, 0)
    fields["extras"] = extras
    return SimulationResult(**fields)


def speedup(new: float, old: float) -> float:
    """Relative speedup of ``new`` over ``old`` (e.g. 0.035 = +3.5%)."""
    if old <= 0:
        return 0.0
    return new / old - 1.0
