"""Simulation configuration (paper Table 2 plus per-experiment knobs).

:class:`SimulationConfig` is the single object users construct to describe
one simulated machine: which fetch engine, which technology node, cache
sizes, pre-buffer organisation, back-end parameters and run length.  It
knows how to derive the structure-level configuration objects used by the
memory hierarchy and the fetch engine, resolving the technology-dependent
defaults the paper uses (pre-buffer and L0 sized to the largest one-cycle
structure; pipelined pre-buffers sized at 16 entries with CACTI-derived
stage counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.engine import FetchEngineConfig
from ..memory.hierarchy import HierarchyConfig
from ..memory.latency import (
    MEMORY_LATENCY_CYCLES,
    CactiLikeModel,
    one_cycle_prebuffer_entries,
    pipelined_prebuffer_stages,
)
from ..technology import resolve_technology

#: Engines selectable by name.
ENGINE_NAMES = ("baseline", "fdp", "clgp", "next-line", "target-line")

#: Pipelined pre-buffer entry count used by the paper's "PB:16" configs.
PIPELINED_PREBUFFER_ENTRIES = 16


@dataclass
class SimulationConfig:
    """Complete description of one simulated configuration."""

    # -- engine selection -------------------------------------------------
    engine: str = "baseline"
    label: Optional[str] = None

    # -- technology and caches ---------------------------------------------
    technology: object = "0.09um"
    l1_size_bytes: int = 4096
    l1_associativity: int = 2
    line_size: int = 64
    l1_pipelined: bool = False
    ideal_l1: bool = False                 #: force 1-cycle L1 (Figure 1 "ideal")
    l0_enabled: bool = False
    l0_size_bytes: Optional[int] = None    #: None: largest one-cycle capacity
    l2_size_bytes: int = 1 << 20
    l2_associativity: int = 2
    l2_line_size: int = 128
    memory_latency: int = MEMORY_LATENCY_CYCLES

    # -- front end ------------------------------------------------------------
    fetch_width: int = 4
    queue_capacity_blocks: int = 8
    #: Maximum line accesses the fetch stage keeps outstanding.  Two models
    #: a conventional fetch unit (current line being delivered plus the next
    #: access started); pipelined structures raise it automatically so their
    #: single-cycle initiation interval can actually be exploited.
    fetch_lookahead: int = 2
    prebuffer_entries: Optional[int] = None  #: None: one-cycle capacity / line
    prebuffer_pipelined: bool = False        #: the "PB:16" configurations
    prefetches_per_cycle: int = 1
    prefetch_probe_l1: bool = True
    prefetch_filter: str = "enqueue-cache-probe"
    piq_entries: int = 16
    clgp_scan_per_cycle: int = 4
    next_line_degree: int = 2
    # CLGP ablation switches
    clgp_free_on_use: bool = False
    clgp_copy_to_cache: bool = False
    clgp_use_filtering: bool = False

    # -- branch prediction ------------------------------------------------------
    ras_entries: int = 8
    stream_predictor_base_entries: int = 1024
    stream_predictor_history_entries: int = 6144
    max_stream_instructions: int = 64

    # -- back end ----------------------------------------------------------------
    commit_width: int = 4
    ruu_size: int = 64
    pipeline_depth: int = 15
    branch_resolution_latency: int = 8
    mlp_factor: float = 4.0

    # -- run control ----------------------------------------------------------------
    #: Simulation loop: ``"event"`` fast-forwards provably-idle stretches
    #: (bit-identical results, much faster); ``"cycle"`` ticks every cycle.
    sim_loop: str = "event"
    max_instructions: int = 20_000
    max_cycles: Optional[int] = None
    #: Correct-path instructions used to functionally warm the stream
    #: predictor and the instruction caches before timing begins (the paper
    #: measures warmed 300M-instruction slices).  ``None`` selects an
    #: automatic budget; 0 disables warming.
    warmup_instructions: Optional[int] = None

    # ------------------------------------------------------------------
    # validation and derived values
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINE_NAMES}"
            )
        if self.max_instructions < 1:
            raise ValueError("max_instructions must be positive")
        if self.sim_loop not in ("event", "cycle"):
            raise ValueError(
                f"unknown sim_loop {self.sim_loop!r}; choose 'event' or 'cycle'"
            )

    @property
    def technology_node(self):
        return resolve_technology(self.technology)

    def latency_model(self) -> CactiLikeModel:
        return CactiLikeModel(self.technology_node)

    def resolved_l0_size(self) -> Optional[int]:
        """L0 capacity in bytes (None when the config has no L0)."""
        if not self.l0_enabled:
            return None
        if self.l0_size_bytes is not None:
            return self.l0_size_bytes
        return self.latency_model().one_cycle_capacity_bytes(self.line_size)

    def resolved_prebuffer_entries(self) -> int:
        """Pre-buffer entry count after applying the paper's sizing rules."""
        if self.prebuffer_pipelined:
            return (
                self.prebuffer_entries
                if self.prebuffer_entries is not None
                else PIPELINED_PREBUFFER_ENTRIES
            )
        if self.prebuffer_entries is not None:
            return self.prebuffer_entries
        return one_cycle_prebuffer_entries(self.technology_node, self.line_size)

    def resolved_prebuffer_latency(self) -> int:
        """Pre-buffer access latency (1 cycle, or the pipelined stage count)."""
        if not self.prebuffer_pipelined:
            return 1
        return pipelined_prebuffer_stages(
            self.technology_node,
            entries=self.resolved_prebuffer_entries(),
            line_size=self.line_size,
        )

    def resolved_l1_latency(self) -> int:
        if self.ideal_l1:
            return 1
        return self.latency_model().access_latency_cycles(self.l1_size_bytes)

    def resolved_warmup_instructions(self) -> int:
        """Functional warm-up budget (see ``warmup_instructions``)."""
        if self.warmup_instructions is not None:
            return max(0, self.warmup_instructions)
        return min(200_000, max(80_000, 5 * self.max_instructions))

    # ------------------------------------------------------------------
    # structure-level configuration objects
    # ------------------------------------------------------------------
    def hierarchy_config(self) -> HierarchyConfig:
        return HierarchyConfig(
            technology=self.technology,
            l1_size_bytes=self.l1_size_bytes,
            l1_associativity=self.l1_associativity,
            l1_line_size=self.line_size,
            l1_pipelined=self.l1_pipelined,
            l0_size_bytes=self.resolved_l0_size(),
            l0_line_size=self.line_size,
            l2_size_bytes=self.l2_size_bytes,
            l2_associativity=self.l2_associativity,
            l2_line_size=self.l2_line_size,
            memory_latency=self.memory_latency,
            l1_latency_override=1 if self.ideal_l1 else None,
        )

    def engine_config(self) -> FetchEngineConfig:
        # Pipelined structures only reach single-cycle throughput when the
        # fetch stage keeps at least latency+1 line accesses in flight; a
        # blocking structure gains nothing from extra outstanding accesses.
        lookahead = self.fetch_lookahead
        if self.prebuffer_pipelined:
            lookahead = max(lookahead, self.resolved_prebuffer_latency() + 1)
        if self.l1_pipelined:
            lookahead = max(lookahead, self.resolved_l1_latency() + 1)
        return FetchEngineConfig(
            fetch_width=self.fetch_width,
            queue_capacity_blocks=self.queue_capacity_blocks,
            fetch_lookahead=lookahead,
            prebuffer_entries=self.resolved_prebuffer_entries(),
            prebuffer_latency=self.resolved_prebuffer_latency(),
            prebuffer_pipelined=self.prebuffer_pipelined,
            prefetches_per_cycle=self.prefetches_per_cycle,
            prefetch_probe_l1=self.prefetch_probe_l1,
            prefetch_filter=self.prefetch_filter,
            piq_entries=self.piq_entries,
            clgp_scan_per_cycle=self.clgp_scan_per_cycle,
            clgp_free_on_use=self.clgp_free_on_use,
            clgp_copy_to_cache=self.clgp_copy_to_cache,
            clgp_use_filtering=self.clgp_use_filtering,
        )

    # ------------------------------------------------------------------
    def derived_label(self) -> str:
        """Human-readable configuration name in the paper's style."""
        if self.label:
            return self.label
        parts = []
        if self.engine == "baseline":
            parts.append("base")
            if self.ideal_l1:
                parts[-1] = "ideal"
            elif self.l1_pipelined:
                parts.append("pipelined")
        elif self.engine == "fdp":
            parts.append("FDP")
        elif self.engine == "clgp":
            parts.append("CLGP")
        else:
            parts.append(self.engine)
        if self.l0_enabled and not self.ideal_l1:
            parts.append("+ L0")
        if self.prebuffer_pipelined and self.engine in ("fdp", "clgp"):
            parts.append(f"+ PB:{self.resolved_prebuffer_entries()}")
        return " ".join(parts)

    def with_overrides(self, **overrides) -> "SimulationConfig":
        """Copy of this configuration with selected fields replaced."""
        return replace(self, **overrides)

    def total_fast_budget_bytes(self) -> int:
        """Total 'fast storage' budget: L1 + L0 + pre-buffer (for the
        hardware-budget comparison in Section 5.1)."""
        budget = self.l1_size_bytes
        l0 = self.resolved_l0_size()
        if l0:
            budget += l0
        if self.engine in ("fdp", "clgp", "next-line", "target-line"):
            budget += self.resolved_prebuffer_entries() * self.line_size
        return budget
