"""Simulator layer: configuration, presets, cycle loop, runner, results."""

from .config import ENGINE_NAMES, PIPELINED_PREBUFFER_ENTRIES, SimulationConfig
from .presets import (
    FIGURE1_SCHEMES,
    FIGURE5_SCHEMES,
    FIGURE6_SCHEMES,
    SCHEMES,
    configs_for_schemes,
    paper_config,
    scheme_descriptions,
)
from .runner import (
    bench_benchmark_names,
    bench_instruction_budget,
    bench_l1_sizes,
    clear_workload_cache,
    get_workload,
    run_benchmarks,
    run_mix,
    run_single,
    sweep_l1_sizes,
)
from .simulator import Simulator, simulate
from .stats import (
    SimulationResult,
    aggregate_fetch_sources,
    aggregate_prefetch_sources,
    harmonic_mean,
    harmonic_mean_ipc,
    speedup,
)

__all__ = [
    "ENGINE_NAMES",
    "FIGURE1_SCHEMES",
    "FIGURE5_SCHEMES",
    "FIGURE6_SCHEMES",
    "PIPELINED_PREBUFFER_ENTRIES",
    "SCHEMES",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "aggregate_fetch_sources",
    "aggregate_prefetch_sources",
    "bench_benchmark_names",
    "bench_instruction_budget",
    "bench_l1_sizes",
    "clear_workload_cache",
    "configs_for_schemes",
    "get_workload",
    "harmonic_mean",
    "harmonic_mean_ipc",
    "paper_config",
    "run_benchmarks",
    "run_mix",
    "run_single",
    "scheme_descriptions",
    "simulate",
    "speedup",
    "sweep_l1_sizes",
]
