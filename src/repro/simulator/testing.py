"""Shared test/benchmark helpers for building fast simulation configs.

Lives in the package (rather than in a conftest) so the test suite, the
benchmark harness and ad-hoc scripts can all import it unambiguously --
``from conftest import ...`` resolves to whichever conftest pytest imported
first, which broke collection when both ``tests/`` and ``benchmarks/``
defined one.
"""

from __future__ import annotations

from .config import SimulationConfig


def make_sim_config(**overrides) -> SimulationConfig:
    """A fast simulation configuration for integration tests."""
    base = dict(
        engine="baseline",
        technology="0.045um",
        l1_size_bytes=4096,
        max_instructions=2000,
        warmup_instructions=5000,
    )
    base.update(overrides)
    return SimulationConfig(**base)
