"""Top-level cycle-driven simulator with event-driven cycle skipping.

Wires together the workload, the decoupled prediction unit, one of the
fetch engines, the memory hierarchy + bus, and the simplified back-end,
then advances them cycle by cycle until the requested number of
correct-path instructions has committed.

Per-cycle ordering (see DESIGN.md section 6):

1. back-end: resolve branches (possibly flushing the front-end through the
   redirect callback) and commit instructions,
2. fetch stage: deliver ready instructions, start new line accesses,
3. prefetcher: issue prefetches (FDP / CLGP),
4. prediction: insert one new fetch block into the FTQ / CLTQ,
5. bus: grant one queued L2 request (demand beats prefetch).

Event-driven fast-forwarding
----------------------------

Most simulated cycles during a long-latency instruction or data miss are
*provably idle*: the fetch head is waiting out a known access latency, the
decoupling queue is full (so prediction is stalled), the prefetcher has
nothing issuable, the bus is empty, and the back-end cannot commit before a
known completion cycle.  In that state every component tick is a pure wait
whose only effect is incrementing per-cycle stall counters, so the loop in
:meth:`Simulator.run` jumps ``self.cycle`` straight to the next interesting
cycle (head-line ready, RUU-head completion, branch resolution) and replays
the skipped stall counters in bulk.  The result -- every field of
:class:`~repro.simulator.stats.SimulationResult` -- is bit-identical to the
straight per-cycle loop (``loop="cycle"``), which is kept both as a
fallback and as the reference for the determinism regression test.
"""

from __future__ import annotations

import copy
from typing import Optional, Union

from ..backend.dcache import DataCacheModel
from ..backend.pipeline import BackendPipeline
from ..core.baseline import BaselineEngine
from ..core.classic_prefetchers import NextNLineEngine, TargetLineEngine
from ..core.clgp import CLGPEngine
from ..core.engine import FetchEngine
from ..core.fdp import FDPEngine
from ..frontend.prediction import PredictionUnit
from ..frontend.stream_predictor import StreamPredictor
from ..memory.hierarchy import MemoryHierarchy
from ..workloads.generator import WorkloadProfile
from ..workloads.spec2000 import profile_for
from ..workloads.trace import Workload, build_workload
from .config import SimulationConfig
from .stats import SimulationResult
from .warming import apply_warmup, functional_advance, get_warmup_artifacts

#: Safety factor for the default cycle limit (cycles per instruction).
_DEFAULT_MAX_CPI = 400


class SimulatorCheckpoint:
    """Opaque snapshot of a :class:`Simulator`'s mutable state.

    Produced by :meth:`Simulator.snapshot` and consumed by
    :meth:`Simulator.restore`.  The checkpoint owns deep copies of every
    timed structure (caches, queues, predictor, back-end, RNGs) but shares
    the immutable workload objects (CFG, basic-block dictionary, the
    memoised correct-path block stream), so it is cheap relative to
    rebuilding and re-warming a simulator and can be restored any number
    of times -- each restore yields a bit-identical continuation.
    """

    __slots__ = ("_state",)

    def __init__(self, state: dict) -> None:
        self._state = state

    @property
    def cycle(self) -> int:
        return self._state["cycle"]

    @property
    def consumed_instructions(self) -> int:
        """Correct-path instructions the checkpointed front-end has consumed."""
        return self._state["prediction"].oracle.consumed_instructions


def _build_engine(
    config: SimulationConfig,
    hierarchy: MemoryHierarchy,
    workload: Workload,
) -> FetchEngine:
    engine_config = config.engine_config()
    if config.engine == "baseline":
        return BaselineEngine(engine_config, hierarchy, workload.bbdict)
    if config.engine == "fdp":
        return FDPEngine(engine_config, hierarchy, workload.bbdict)
    if config.engine == "clgp":
        return CLGPEngine(engine_config, hierarchy, workload.bbdict)
    if config.engine == "next-line":
        return NextNLineEngine(
            engine_config, hierarchy, workload.bbdict,
            degree=config.next_line_degree,
        )
    if config.engine == "target-line":
        return TargetLineEngine(
            engine_config, hierarchy, workload.bbdict,
            degree=config.next_line_degree,
        )
    raise ValueError(f"unknown engine {config.engine!r}")


class Simulator:
    """One configured machine running one workload."""

    def __init__(
        self,
        config: SimulationConfig,
        workload: Union[Workload, WorkloadProfile, str],
    ) -> None:
        self.config = config
        self.workload = self._resolve_workload(workload)

        self.hierarchy = MemoryHierarchy(config.hierarchy_config())
        self.engine = _build_engine(config, self.hierarchy, self.workload)
        predictor = StreamPredictor(
            base_entries=config.stream_predictor_base_entries,
            history_entries=config.stream_predictor_history_entries,
            default_length=config.max_stream_instructions,
        )
        self.prediction = PredictionUnit(
            self.workload,
            predictor=predictor,
            ras_entries=config.ras_entries,
            max_stream_instructions=config.max_stream_instructions,
        )
        dcache = DataCacheModel(
            self.hierarchy,
            mlp_factor=config.mlp_factor,
            seed=self.workload.profile.seed,
        )
        self.backend = BackendPipeline(
            dcache=dcache,
            bbdict=self.workload.bbdict,
            commit_width=config.commit_width,
            ruu_size=config.ruu_size,
            branch_resolution_latency=config.branch_resolution_latency,
            on_redirect=self._handle_redirect,
        )
        self.backend.set_l2_data_miss_rate(self.workload.profile.l2_data_miss_rate)
        self.cycle = 0
        self._warmed = False
        self._bus = self.hierarchy.bus   # hot-path alias for the event loop

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_workload(
        workload: Union[Workload, WorkloadProfile, str]
    ) -> Workload:
        if isinstance(workload, Workload):
            return workload
        if isinstance(workload, WorkloadProfile):
            return build_workload(workload)
        if isinstance(workload, str):
            return build_workload(profile_for(workload))
        raise TypeError(f"cannot interpret workload {workload!r}")

    # ------------------------------------------------------------------
    def _handle_redirect(self, cycle: int) -> None:
        """The back-end resolved a mispredicted branch: flush the front-end
        and restart prediction on the correct path."""
        self.engine.flush(cycle)
        self.prediction.redirect(cycle)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine by one cycle."""
        cycle = self.cycle
        self.backend.tick(cycle)
        self.engine.fetch_tick(cycle, self.backend)
        self.engine.prefetch_tick(cycle)
        self.prediction.tick(cycle, self.engine)
        self.hierarchy.tick(cycle)
        self.cycle += 1

    def warm_up(self) -> int:
        """Functionally warm the predictor and I-caches (idempotent)."""
        if self._warmed:
            return 0
        self._warmed = True
        budget = self.config.resolved_warmup_instructions()
        if budget <= 0:
            return 0
        artifacts = get_warmup_artifacts(
            self.workload,
            budget,
            base_entries=self.config.stream_predictor_base_entries,
            history_entries=self.config.stream_predictor_history_entries,
            max_stream_instructions=self.config.max_stream_instructions,
            line_size=self.config.line_size,
        )
        self.prediction.predictor = apply_warmup(artifacts, self.hierarchy)
        return artifacts.instructions

    # ------------------------------------------------------------------
    # checkpoint / restore (sampled simulation)
    # ------------------------------------------------------------------
    def _snapshot_memo(self) -> dict:
        """Deepcopy memo pre-seeded with the objects a checkpoint must
        *share* rather than copy: the workload and everything hanging off
        it is immutable-or-memoised (append-only, deterministic), and the
        simulator itself so the deepcopy never descends into it through
        the back-end's bound redirect callback."""
        workload = self.workload
        shared = [self, self.config, workload, workload.profile,
                  workload.cfg, workload.bbdict]
        if workload._block_stream is not None:
            shared.append(workload._block_stream)
        trace = workload._compiled_trace
        if trace is not None:
            # The oracle holds direct references to the trace's columnar
            # arrays (hot-path aliases), so they must be shared
            # explicitly or every snapshot would deep-copy them.
            shared += [trace, trace.addr, trace.size, trace.kind,
                       trace.taken, trace.next_addr, trace.terminator_addr]
        return {id(obj): obj for obj in shared}

    def snapshot(self) -> SimulatorCheckpoint:
        """Capture the complete mutable state of the machine.

        The checkpoint can be :meth:`restore`\\ d repeatedly; every restore
        continues bit-identically (same ``SimulationResult`` fields, same
        stall breakdown) to a run that never checkpointed.  Sampled sweeps
        snapshot once after :meth:`warm_up` and restore per interval, so a
        single warm-up pass serves every interval of a benchmark.
        """
        state = {
            "cycle": self.cycle,
            "warmed": self._warmed,
            "hierarchy": self.hierarchy,
            "engine": self.engine,
            "prediction": self.prediction,
            "backend": self.backend,
        }
        state = copy.deepcopy(state, self._snapshot_memo())
        # The redirect callback is bound to the simulator that built the
        # checkpoint; null it in the stored copy so the checkpoint holds
        # no live machine references (restore rebinds it onto whichever
        # simulator restores).
        state["backend"].on_redirect = None
        return SimulatorCheckpoint(state)

    def restore(self, checkpoint: SimulatorCheckpoint) -> None:
        """Reset the machine to ``checkpoint`` -- taken on this simulator or
        on another simulator of the same configuration and the same
        workload instance.  The checkpoint itself is left untouched so it
        can be restored again."""
        state = copy.deepcopy(checkpoint._state, self._snapshot_memo())
        self.cycle = state["cycle"]
        self._warmed = state["warmed"]
        self.hierarchy = state["hierarchy"]
        self.engine = state["engine"]
        self.prediction = state["prediction"]
        self.backend = state["backend"]
        self.backend.on_redirect = self._handle_redirect
        self._bus = self.hierarchy.bus

    def skip_to(self, instruction_offset: int) -> int:
        """Functionally fast-forward to ``instruction_offset`` correct-path
        instructions (absolute position) without simulating timing.

        The stream predictor keeps training, RAS/path history track the
        skipped path, the instruction caches are filled with every touched
        line, and the data-cache model's dynamic load index advances past
        the skipped loads (its miss decisions hash that index, so a
        sampled interval draws exactly the miss pattern the full run draws
        at the same position) -- the machine ends up positioned at an
        interval start as if it had executed the prefix, at oracle-walk
        cost rather than timed-simulation cost.  Only callable between
        runs while the front-end is on the correct path.  Returns the
        instructions skipped.
        """
        if self.prediction.awaiting_redirect:
            raise RuntimeError("cannot skip while a misprediction is pending")
        skipped, loads = functional_advance(
            self.prediction, self.hierarchy, instruction_offset,
        )
        self.backend.dcache.skip_loads(loads)
        return skipped

    def run(
        self,
        max_instructions: Optional[int] = None,
        loop: Optional[str] = None,
    ) -> SimulationResult:
        """Run until ``max_instructions`` correct-path instructions commit
        (or the safety cycle limit is hit) and return the results.

        ``loop`` selects the simulation loop: ``"event"`` (default, from
        ``config.sim_loop``) fast-forwards across provably-idle stretches;
        ``"cycle"`` ticks every cycle.  Both produce bit-identical results.
        """
        self.warm_up()
        target = max_instructions or self.config.max_instructions
        limit = self.config.max_cycles or target * _DEFAULT_MAX_CPI
        mode = loop if loop is not None else self.config.sim_loop
        if mode not in ("event", "cycle"):
            raise ValueError(f"unknown simulation loop {mode!r}")
        # The loop below is `step()` unrolled with pre-bound methods: at a
        # few microseconds per simulated cycle, attribute chasing is a
        # measurable fraction of the whole simulation.
        backend = self.backend
        engine = self.engine
        backend_stats = backend.stats
        backend_tick = backend.tick
        fetch_tick = engine.fetch_tick
        prefetch_tick = engine.prefetch_tick
        # Baselines inherit the no-op prefetch_tick; skip the call entirely.
        has_prefetcher = type(engine).prefetch_tick is not FetchEngine.prefetch_tick
        can_accept = engine.can_accept_block
        prediction_tick = self.prediction.tick
        bus = self.hierarchy.bus
        bus_queue = bus._queue   # stable list identity; truthiness = pending
        bus_tick = bus.tick
        fast_forward = self._fast_forward if mode == "event" else None
        while backend_stats.committed_instructions < target and self.cycle < limit:
            cycle = self.cycle
            backend_tick(cycle)
            fetch_tick(cycle, backend)
            if has_prefetcher:
                prefetch_tick(cycle)
            if can_accept():
                prediction_tick(cycle, engine)
            if bus_queue:
                bus_tick(cycle)
            self.cycle = cycle + 1
            if fast_forward is not None:
                fast_forward(limit)
        return self._collect_results()

    # ------------------------------------------------------------------
    def _fast_forward(self, limit: int) -> int:
        """Skip ``self.cycle`` over a provably-idle stretch.

        A stretch of cycles is idle when every per-cycle tick would be a
        pure wait: the bus has nothing to grant, the fetch head is waiting
        out a known latency (or is blocked on a full RUU), the fetch stage
        cannot start a new line access, prediction is stalled on a full
        queue, the prefetcher is quiescent, and the back-end cannot commit
        or redirect yet.  All of those conditions depend only on state that
        changes at *events* (bus grants, deliveries, commits, redirects),
        so once they hold they keep holding until the earliest upcoming
        event.  The per-cycle stall counters that would have been bumped in
        each skipped cycle are replayed in bulk so statistics stay
        bit-identical to the per-cycle loop.

        Returns the number of skipped cycles (0 when not provably idle).
        """
        # 1. The bus must be empty: a queued request is granted every cycle.
        if self._bus._live:
            return 0
        cycle = self.cycle
        if cycle >= limit:
            return 0
        engine = self.engine
        # 2. The fetch stage must have a head line that is purely waiting.
        inflight = engine._inflight
        if not inflight:
            return 0
        head = inflight[0]
        ready = head.ready_cycle
        if ready is None:
            # Demand miss in flight (bus busy -- excluded above) or waiting
            # on an in-flight prefetch that may resolve next tick.
            return 0
        # 3. Prediction must be stalled on a full decoupling queue,
        #    otherwise it deposits a new fetch block every cycle.
        if engine.can_accept_block():
            return 0
        # 4. The fetch stage must not be able to start another line access.
        if len(inflight) < engine.config.fetch_lookahead:
            upcoming = engine._peek_next_line()
            if upcoming is not None and engine._line_on_fast_path(upcoming.line_addr):
                return 0
        # 5. The prefetcher must be provably quiescent.
        prefetch_stalls = engine._prefetch_quiescent()
        if prefetch_stalls is None:
            return 0
        # 6. The back-end must have no commit/redirect before the target.
        backend = self.backend
        redirect = backend.pending_redirect_cycle
        events = []
        if redirect is not None:
            events.append(redirect)
        ruu_head = backend.ruu_head()
        if ruu_head is not None:
            if ruu_head.wrong_path:
                if redirect is None:
                    return 0   # cannot prove when the squash happens
            else:
                completion = ruu_head.completion_cycle
                if completion is None or completion <= cycle:
                    return 0   # commit possible next tick
                events.append(completion)
        # 7. Classify the fetch-head wait and its per-cycle stall counter.
        backend_blocked = False
        if ready > cycle:
            events.append(ready)
            stall_cause = head.source
        else:
            # Head line ready: delivery happens unless the RUU is full.
            if backend.free_slots() > 0:
                return 0
            backend_blocked = True
            stall_cause = "backend-full"
        if not events:
            return 0
        target_cycle = min(events)
        if target_cycle > limit:
            target_cycle = limit
        skipped = target_cycle - cycle
        if skipped <= 0:
            return 0
        # -- replay the counters the per-cycle loop would have produced ----
        stats = engine.stats
        backend.stats.commit_stall_cycles += skipped
        stats.stall_cycles[stall_cause] = (
            stats.stall_cycles.get(stall_cause, 0) + skipped
        )
        if backend_blocked and head.delivered == 0:
            # The per-cycle loop re-enters _deliver each blocked cycle and
            # re-accounts the head line until the first instruction goes
            # through; replayed verbatim to stay bit-identical.
            stats.lines_fetched += skipped
            stats.fetch_source_lines[head.source] += skipped
        if prefetch_stalls:
            stats.prefetch_buffer_stalls += prefetch_stalls * skipped
        self.cycle = target_cycle
        return skipped

    # ------------------------------------------------------------------
    def _collect_results(self) -> SimulationResult:
        engine_stats = self.engine.stats
        backend_stats = self.backend.stats
        prediction_stats = self.prediction.stats
        l1 = self.hierarchy.l1.stats
        l0 = self.hierarchy.l0.stats if self.hierarchy.l0 is not None else None
        l2 = self.hierarchy.l2.stats
        bus = self.hierarchy.bus.stats

        return SimulationResult(
            config_label=self.config.derived_label(),
            workload=self.workload.name,
            cycles=self.cycle,
            committed_instructions=backend_stats.committed_instructions,
            fetch_source_lines=dict(engine_stats.fetch_source_lines),
            fetch_source_instructions=dict(engine_stats.fetch_source_instructions),
            prefetch_source=dict(engine_stats.prefetch_source),
            prefetches_issued=engine_stats.prefetches_issued,
            stream_mispredictions=prediction_stats.stream_mispredictions,
            streams_predicted=prediction_stats.streams_predicted,
            wrong_path_instructions=engine_stats.wrong_path_instructions,
            flushes=engine_stats.flushes,
            l1_hits=l1.hits,
            l1_misses=l1.misses,
            l0_hits=l0.hits if l0 else 0,
            l0_misses=l0.misses if l0 else 0,
            l2_instruction_hits=l2.hits,
            l2_instruction_misses=l2.misses,
            dispatched_instructions=backend_stats.dispatched_instructions,
            squashed_instructions=backend_stats.squashed_instructions,
            loads=self.backend.dcache.stats.loads,
            dl1_misses=self.backend.dcache.stats.dl1_misses,
            bus_grants={
                "data": bus.grants[0],
                "instruction": bus.grants[1],
                "prefetch": bus.grants[2],
            },
            extras={
                "ruu_full_stalls": backend_stats.ruu_full_stalls,
                "commit_stall_cycles": backend_stats.commit_stall_cycles,
                "prefetch_buffer_stalls": engine_stats.prefetch_buffer_stalls,
                "l1_latency": self.hierarchy.l1_latency,
                "l2_latency": self.hierarchy.l2_latency,
                "prebuffer_entries": (
                    self.config.resolved_prebuffer_entries()
                    if self.engine.has_prebuffer else 0
                ),
            },
        )


def simulate(
    config: SimulationConfig,
    workload: Union[Workload, WorkloadProfile, str],
    max_instructions: Optional[int] = None,
) -> SimulationResult:
    """Convenience one-shot API: build the simulator and run it."""
    return Simulator(config, workload).run(max_instructions)
