"""Experiment runner: the one executor behind every sweep.

The paper's figures are produced by sweeping a set of configurations over
a set of benchmarks (and usually over L1 cache sizes).  Those sweeps are
declared as flat lists of typed :class:`~repro.simulator.plan.SimTask`
(see :mod:`repro.simulator.plan`); this module provides the executor that
runs them -- inline or over a ``multiprocessing`` pool -- plus a workload
cache so each synthetic program is built only once per process, and the
environment-controlled defaults used by the benchmark harness.

Sweeps are embarrassingly parallel (one process per simulation), so
``run_tasks`` accepts ``jobs=N`` to fan out over a pool.  Scheduling is
**workload-affine**: tasks are grouped by benchmark and the groups --
not individual tasks -- are placed onto the pool, so one worker
compiles/loads each benchmark's synthetic program, compiled trace and
sampling artifacts exactly once and serves every configuration of that
benchmark; artifacts missing from the persistent store
(:mod:`repro.cache`) are therefore computed by exactly one worker and
published for every later process.  The pool itself is shared across
``run_tasks`` calls (and hence across every ``ExperimentPlan.run`` of a
CLI invocation such as ``repro-clgp figure all``), so workers keep their
in-memory caches between sweeps.  ``jobs=1`` (the default) runs inline
with identical results and identical ordering.  Tasks flagged
``sampled=True`` dispatch to the sampled-simulation runner in
:mod:`repro.sampling` instead of a full run.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..cache.traces import ensure_compiled_trace
from ..workloads.spec2000 import DEFAULT_MIX, SPECINT2000_NAMES, profile_for
from ..workloads.trace import Workload, build_workload
from .config import SimulationConfig
from .plan import ExperimentPlan, SimTask
from .simulator import Simulator
from .stats import SimulationResult, harmonic_mean_ipc

#: Cache of built workloads, keyed by (benchmark name, seed).
_WORKLOAD_CACHE: Dict[tuple, Workload] = {}


def get_workload(name: str) -> Workload:
    """Build (or fetch from cache) the synthetic workload for a benchmark."""
    profile = profile_for(name)
    key = (profile.name, profile.seed)
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = build_workload(profile)
    return _WORKLOAD_CACHE[key]


def clear_workload_cache() -> None:
    _WORKLOAD_CACHE.clear()


def clear_process_caches() -> None:
    """Drop every per-process in-memory cache (workloads, warm-up
    artifacts, functional base passes, checkpoints, compiled traces).

    Leaves the persistent artifact store untouched: afterwards the
    process behaves like a fresh CLI invocation, which is exactly what
    the cold-vs-warm cache benchmarks and tests need to isolate the
    on-disk tier.
    """
    from ..cache.traces import clear_trace_cache
    from ..sampling.checkpoint import clear_checkpoint_store
    from ..sampling.proxy import clear_base_profile_cache
    from .warming import clear_warmup_cache

    clear_workload_cache()
    clear_trace_cache()
    clear_checkpoint_store()
    clear_base_profile_cache()
    clear_warmup_cache()


# ----------------------------------------------------------------------
# environment-controlled defaults for the benchmark harness
# ----------------------------------------------------------------------
def bench_instruction_budget(default: int = 20_000) -> int:
    """Dynamic instructions per run (env: ``REPRO_BENCH_INSTRUCTIONS``)."""
    try:
        return max(1000, int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", default)))
    except ValueError:
        return default


def bench_benchmark_names(default: Optional[Sequence[str]] = None) -> List[str]:
    """Benchmarks to run (env: ``REPRO_BENCH_BENCHMARKS``, ``all`` for the
    full SPECint2000 list)."""
    raw = os.environ.get("REPRO_BENCH_BENCHMARKS", "")
    if not raw:
        return list(default if default is not None else DEFAULT_MIX)
    if raw.strip().lower() == "all":
        return list(SPECINT2000_NAMES)
    names = [n.strip() for n in raw.split(",") if n.strip()]
    for name in names:
        profile_for(name)  # validate early
    return names


def bench_l1_sizes(default: Optional[Sequence[int]] = None) -> List[int]:
    """L1 sizes for sweeps (env: ``REPRO_BENCH_SIZES``, comma-separated,
    suffixes ``K`` allowed)."""
    raw = os.environ.get("REPRO_BENCH_SIZES", "")
    if not raw:
        return list(default) if default is not None else [256, 1024, 4096, 16384, 65536]

    def parse(token: str) -> int:
        token = token.strip().upper()
        if token.endswith("KB"):
            return int(float(token[:-2]) * 1024)
        if token.endswith("K"):
            return int(float(token[:-1]) * 1024)
        if token.endswith("B"):
            return int(token[:-1])
        return int(token)

    return [parse(t) for t in raw.split(",") if t.strip()]


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
def _execute_single(
    config: SimulationConfig,
    benchmark: str,
    max_instructions: Optional[int] = None,
) -> SimulationResult:
    """Run one configuration on one benchmark (the executor primitive
    behind every task; the public entry point is :class:`repro.api.Session`).

    Full runs are deterministic, so with the artifact cache enabled the
    complete :class:`SimulationResult` of an earlier invocation replays
    byte-identically from the store (``--no-result-cache`` /
    ``ExecutionOptions(result_cache=False)`` forces resimulation); a hit
    needs only the workload's *identity*, not the built program.
    """
    from ..cache.results import load_cached_result, store_result

    profile = profile_for(benchmark)
    total = max_instructions or config.max_instructions
    cached = load_cached_result(config, profile.name, profile.seed, total)
    if cached is not None:
        return cached
    workload = get_workload(benchmark)
    # With the artifact cache enabled the correct-path walk replays from
    # a compiled trace (persisted once per workload); disabled, the
    # walker-backed stream produces the bit-identical sequence.
    ensure_compiled_trace(
        workload, max(total, config.resolved_warmup_instructions())
    )
    result = Simulator(config, workload).run(max_instructions)
    store_result(config, profile.name, profile.seed, total, result)
    return result


def _run_task(task: Union[SimTask, tuple]) -> SimulationResult:
    """Pool worker: run one :class:`SimTask` (or legacy task tuple).

    Top-level function so it pickles; the workload cache is the worker
    process's own module-global, so each worker builds a given synthetic
    program at most once no matter how many tasks it serves.  Sampled
    tasks dispatch to the sampled-simulation runner in
    :mod:`repro.sampling`, whose per-process checkpoint/selection caches
    play the same role for the warm-up and profiling passes.
    """
    if isinstance(task, SimTask):
        if task.sampled:
            # Imported lazily: repro.sampling imports this module.
            from ..sampling.sampled import _execute_sampled

            return _execute_sampled(
                task.config, task.benchmark,
                max_instructions=task.max_instructions,
                spec=task.sampling,
            )
        return _execute_single(task.config, task.benchmark,
                               task.max_instructions)
    config, benchmark, max_instructions = task
    return _execute_single(config, benchmark, max_instructions)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/0 -> all cores, negative ->
    ValueError, otherwise the value itself."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError("jobs must be >= 1 (or None/0 for all cores)")
    return jobs


# ----------------------------------------------------------------------
# the shared worker pool (reused across run_tasks / ExperimentPlan.run
# calls so workers keep their in-memory caches between sweeps)
# ----------------------------------------------------------------------
_POOL: Optional[multiprocessing.pool.Pool] = None
_POOL_PROCESSES = 0
_POOL_CACHE_STATE: Optional[tuple] = None


def _worker_init(cache_dir: str, cache_on: bool, result_cache_on: bool) -> None:
    """Apply the parent's resolved artifact-cache settings in a worker.

    ``configure()``/``--no-cache`` state lives in module globals, which
    spawn-start platforms do not inherit (and forked workers freeze at
    fork time); passing the resolved values through the pool initializer
    keeps every worker on the parent's store (and on the parent's
    result-replay policy).
    """
    from ..cache.results import configure_result_cache
    from ..cache.store import configure

    configure(cache_dir=cache_dir, enabled=cache_on)
    configure_result_cache(result_cache_on)


def _shared_pool(processes: int) -> multiprocessing.pool.Pool:
    from ..cache.results import result_cache_enabled
    from ..cache.store import cache_enabled, resolved_cache_dir

    global _POOL, _POOL_PROCESSES, _POOL_CACHE_STATE
    cache_state = (resolved_cache_dir(), cache_enabled(),
                   result_cache_enabled())
    if _POOL is not None and (_POOL_PROCESSES != processes
                              or _POOL_CACHE_STATE != cache_state):
        shutdown_pool()
    if _POOL is None:
        _POOL = multiprocessing.Pool(
            processes=processes,
            initializer=_worker_init,
            initargs=cache_state,
        )
        _POOL_PROCESSES = processes
        _POOL_CACHE_STATE = cache_state
    return _POOL


def shutdown_pool() -> None:
    """Tear down the shared worker pool (atexit, tests).

    ``terminate`` rather than ``close``: shutdown only happens between
    sweeps, so any still-queued chunks are leftovers of a sweep that
    raised -- draining them would block process exit for as long as the
    abandoned simulations take (the behaviour ``with Pool(...)`` used to
    provide via its ``__exit__``).
    """
    global _POOL, _POOL_PROCESSES, _POOL_CACHE_STATE
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_PROCESSES = 0
        _POOL_CACHE_STATE = None


atexit.register(shutdown_pool)


def _task_benchmark(task: Union[SimTask, tuple]) -> str:
    return task.benchmark if isinstance(task, SimTask) else task[1]


def _task_weight(task: Union[SimTask, tuple]) -> int:
    """Scheduling weight of one task: its instruction budget.

    Mixed-budget plans balance far better weighted by instructions than
    by task count (a 100k-instruction run is ~100x a 1k one); sampled
    tasks still carry the full budget -- their fixed profile/warm-up cost
    tracks the budget too, so the budget stays the best available proxy.
    """
    if isinstance(task, SimTask):
        budget = task.max_instructions or task.config.max_instructions
    else:
        config, _benchmark, max_instructions = task
        budget = max_instructions or config.max_instructions
    return max(1, int(budget or 1))


def _store_hits() -> int:
    """Current artifact-store hit counter (0 when caching is disabled)."""
    from ..cache.store import active_store

    store = active_store()
    return store.stats.hits if store is not None else 0


def _result_hits() -> int:
    """Current full-run result-cache hit counter (see repro.cache.results)."""
    from ..cache.results import result_cache_hits

    return result_cache_hits()


def _timed_task(
    index: int, task: Union[SimTask, tuple]
) -> Tuple[int, SimulationResult, float, int, int]:
    """Run one task, measuring wall-clock seconds, store hits and
    full-run result replays (reported distinctly: a result replay skips
    the simulation entirely, an ordinary store hit only skips rebuilding
    one artifact)."""
    hits_before = _store_hits()
    result_hits_before = _result_hits()
    start = time.perf_counter()
    result = _run_task(task)
    return (index, result, time.perf_counter() - start,
            _store_hits() - hits_before,
            _result_hits() - result_hits_before)


def _run_task_chunk(chunk) -> list:
    """Pool worker: run one workload-affine chunk of (index, task) pairs.

    All tasks of a chunk share one benchmark, so the worker builds (or
    loads from the artifact store) that benchmark's program, compiled
    trace, warm-up artifacts and sampling artifacts once and serves
    every configuration from them.  Per-task timing and store-hit deltas
    ride along so progress consumers (:class:`repro.api.RunHandle`) can
    stream them without a second channel.
    """
    return [_timed_task(index, task) for index, task in chunk]


def _affine_chunks(
    tasks: Sequence[Union[SimTask, tuple]], jobs: int
) -> List[List[Tuple[int, Union[SimTask, tuple]]]]:
    """Workload-affine schedule: tasks grouped by benchmark, groups split
    only as far as keeping ``jobs`` workers busy requires.

    Each chunk is single-benchmark (the affinity that makes per-workload
    artifacts a per-worker one-time cost); when there are fewer
    benchmarks than workers the heaviest groups are split so parallelism
    never drops below ``jobs``.  Chunks are balanced by summed
    *instruction budget*, not task count, so plans mixing short and long
    runs split where the work actually is.  Deterministic for a given
    task list.
    """
    groups: Dict[str, List[int]] = {}
    total_weight = 0
    for index, task in enumerate(tasks):
        groups.setdefault(_task_benchmark(task), []).append(index)
        total_weight += _task_weight(task)
    # Per-chunk weight budget that still yields >= max(jobs, #groups)
    # chunks overall.
    target_chunks = max(jobs, len(groups))
    weight_cap = max(1, -(-total_weight // target_chunks))
    weighted_chunks: List[Tuple[int, List[Tuple[int, Union[SimTask, tuple]]]]] = []
    for indices in groups.values():
        current: List[Tuple[int, Union[SimTask, tuple]]] = []
        current_weight = 0
        for index in indices:
            weight = _task_weight(tasks[index])
            if current and current_weight + weight > weight_cap:
                weighted_chunks.append((current_weight, current))
                current, current_weight = [], 0
            current.append((index, tasks[index]))
            current_weight += weight
        if current:
            weighted_chunks.append((current_weight, current))
    # Heaviest chunks first so stragglers start early (load balance);
    # sort() is stable, so equal weights keep group order.
    weighted_chunks.sort(key=lambda entry: entry[0], reverse=True)
    return [chunk for _weight, chunk in weighted_chunks]


def iter_task_results(
    tasks: Sequence[Union[SimTask, tuple]],
    jobs: int = 1,
    cancel=None,
) -> Iterator[Tuple[int, SimulationResult, float, int, int]]:
    """Yield ``(task index, result, seconds, cache hits, result-cache
    hits)`` as tasks finish.

    The incremental counterpart of :func:`run_tasks` and the channel
    :class:`repro.api.RunHandle` streams progress from.  ``jobs=1`` runs
    inline in task order; ``jobs>1`` fans workload-affine chunks over the
    shared pool and yields completions unordered (consumers reassemble by
    index).  ``cancel`` is an optional ``threading.Event``: once set, no
    further task is started -- inline runs stop between tasks, pool runs
    stop between chunk completions and tear the pool down so outstanding
    chunks die with it.
    """
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(tasks) <= 1:
        for index, task in enumerate(tasks):
            if cancel is not None and cancel.is_set():
                return
            yield _timed_task(index, task)
        return
    chunks = _affine_chunks(tasks, jobs)
    # Never fork more workers than there are chunks to serve; a later,
    # larger sweep recreates the pool at its size.
    pool = _shared_pool(min(jobs, len(chunks)))
    # chunksize=1: chunks are coarse (>> pool overhead) and may have very
    # uneven durations; unordered completion is fine because consumers
    # reassemble by task index.
    iterator = pool.imap_unordered(_run_task_chunk, chunks, chunksize=1)
    if cancel is None:
        for completed in iterator:
            yield from completed
        return
    pending = len(chunks)
    while pending:
        if cancel.is_set():
            shutdown_pool()
            return
        try:
            # Short poll so a cancel() does not wait for a whole chunk.
            completed = iterator.next(timeout=0.05)
        except multiprocessing.TimeoutError:
            continue
        except StopIteration:
            return
        pending -= 1
        yield from completed


def run_tasks(
    tasks: Sequence[Union[SimTask, tuple]],
    jobs: int = 1,
) -> List[SimulationResult]:
    """Run :class:`SimTask` entries (or legacy ``(config, benchmark,
    max_instructions)`` tuples), optionally on the shared process pool.
    Results keep task order regardless of ``jobs``."""
    results: List[Optional[SimulationResult]] = [None] * len(tasks)
    for index, result, _seconds, _hits, _result_hits in iter_task_results(
            tasks, jobs=jobs):
        results[index] = result
    return results


# ----------------------------------------------------------------------
# deprecated free-function entry points (v1 surface: repro.api.Session)
# ----------------------------------------------------------------------
def _session_run(plan: ExperimentPlan, jobs: int = 1):
    """Route a legacy call through the default :class:`repro.api.Session`,
    so shims return results identical to the façade path.

    ``jobs`` keeps its legacy meaning (``None``/``0`` = all cores,
    negative = ValueError): it is resolved here, because inside
    :class:`ExecutionOptions` a ``None`` would mean "inherit the
    session's default" instead.
    """
    from ..api.session import default_session
    from ..api.spec import ExecutionOptions

    return default_session().run(
        plan, options=ExecutionOptions(jobs=resolve_jobs(jobs)))


def run_single(
    config: SimulationConfig,
    benchmark: str,
    max_instructions: Optional[int] = None,
) -> SimulationResult:
    """Run one configuration on one benchmark.

    .. deprecated:: 1.1
        Use :meth:`repro.api.Session.run` with an
        :class:`repro.api.ExperimentSpec` (or an ``ExperimentPlan``).
    """
    from ..api._deprecation import warn_legacy

    warn_legacy("repro.simulator.runner.run_single",
                "repro.api.Session.run(ExperimentSpec(...))")
    plan = ExperimentPlan("legacy-run-single")
    plan.add(config, benchmark, max_instructions)
    return _session_run(plan).results[0]


def run_benchmarks(
    config: SimulationConfig,
    benchmarks: Iterable[str],
    max_instructions: Optional[int] = None,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> List[SimulationResult]:
    """Run one configuration across several benchmarks.

    .. deprecated:: 1.1
        Use :meth:`repro.api.Session.run` with an
        :class:`repro.api.ExperimentSpec` naming the benchmarks.
    """
    from ..api._deprecation import warn_legacy

    warn_legacy("repro.simulator.runner.run_benchmarks",
                "repro.api.Session.run(ExperimentSpec(...))")
    plan = ExperimentPlan("legacy-run-benchmarks")
    for name in benchmarks:
        plan.add(config, name, max_instructions,
                 sampled=sampled, sampling=sampling)
    return _session_run(plan, jobs=jobs).results


def run_mix(
    config: SimulationConfig,
    benchmarks: Optional[Iterable[str]] = None,
    max_instructions: Optional[int] = None,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[str, object]:
    """Run a configuration on a benchmark mix and aggregate.

    Returns ``{"results": [...], "hmean_ipc": float}``.

    .. deprecated:: 1.1
        Use :meth:`repro.api.Session.run`; ``RunResult.hmean_by_key()``
        (or :func:`harmonic_mean_ipc` over ``results``) covers the
        aggregation.
    """
    from ..api._deprecation import warn_legacy

    warn_legacy("repro.simulator.runner.run_mix",
                "repro.api.Session.run(ExperimentSpec(...))")
    names = list(benchmarks) if benchmarks is not None else list(DEFAULT_MIX)
    plan = ExperimentPlan("legacy-run-mix")
    for name in names:
        plan.add(config, name, max_instructions,
                 sampled=sampled, sampling=sampling)
    results = _session_run(plan, jobs=jobs).results
    return {"results": results, "hmean_ipc": harmonic_mean_ipc(results)}


def sweep_l1_sizes(
    configs_by_size,
    benchmarks: Optional[Iterable[str]] = None,
    max_instructions: Optional[int] = None,
    jobs: int = 1,
    sampled: bool = False,
    sampling=None,
) -> Dict[int, Dict[str, object]]:
    """Run ``{size: config}`` (or ``{size: [configs]}``) over a benchmark mix.

    Returns ``{size: {label: {"results": [...], "hmean_ipc": float}}}``.

    .. deprecated:: 1.1
        Use :meth:`repro.api.Session.run` with an
        :class:`repro.api.ExperimentSpec` carrying an ``l1_sizes`` sweep
        axis.
    """
    from ..api._deprecation import warn_legacy

    warn_legacy("repro.simulator.runner.sweep_l1_sizes",
                "repro.api.Session.run(ExperimentSpec(..., l1_sizes=...))")
    names = list(benchmarks) if benchmarks is not None else list(DEFAULT_MIX)
    plan = ExperimentPlan("legacy-sweep-l1-sizes")
    occurrences: Dict[tuple, int] = {}
    for size, configs in configs_by_size.items():
        if isinstance(configs, SimulationConfig):
            configs = [configs]
        for config in configs:
            label = config.derived_label()
            # Configs that share a label at one size stay separate task
            # groups; the output keeps the last one (label collisions can
            # only surface one entry in the returned mapping anyway).
            occurrence = occurrences.get((size, label), 0)
            occurrences[(size, label)] = occurrence + 1
            for name in names:
                plan.add(config, name, max_instructions,
                         key=(size, label, occurrence),
                         sampled=sampled, sampling=sampling)
    out: Dict[int, Dict[str, object]] = {}
    for (size, label, _), results in _session_run(
            plan, jobs=jobs).by_key().items():
        out.setdefault(size, {})[label] = {
            "results": results,
            "hmean_ipc": harmonic_mean_ipc(results),
        }
    return out
