"""Experiment runner: multi-benchmark, multi-configuration sweeps.

The paper's figures are produced by sweeping a set of configurations over
a set of benchmarks (and usually over L1 cache sizes).  This module
provides those loops, a workload cache so each synthetic program is built
only once per process, and simple helpers used by the benchmark harness
and the examples.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

from ..workloads.spec2000 import DEFAULT_MIX, SPECINT2000_NAMES, profile_for
from ..workloads.trace import Workload, build_workload
from .config import SimulationConfig
from .simulator import Simulator
from .stats import SimulationResult, harmonic_mean_ipc

#: Cache of built workloads, keyed by (benchmark name, seed).
_WORKLOAD_CACHE: Dict[tuple, Workload] = {}


def get_workload(name: str) -> Workload:
    """Build (or fetch from cache) the synthetic workload for a benchmark."""
    profile = profile_for(name)
    key = (profile.name, profile.seed)
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = build_workload(profile)
    return _WORKLOAD_CACHE[key]


def clear_workload_cache() -> None:
    _WORKLOAD_CACHE.clear()


# ----------------------------------------------------------------------
# environment-controlled defaults for the benchmark harness
# ----------------------------------------------------------------------
def bench_instruction_budget(default: int = 20_000) -> int:
    """Dynamic instructions per run (env: ``REPRO_BENCH_INSTRUCTIONS``)."""
    try:
        return max(1000, int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", default)))
    except ValueError:
        return default


def bench_benchmark_names(default: Optional[Sequence[str]] = None) -> List[str]:
    """Benchmarks to run (env: ``REPRO_BENCH_BENCHMARKS``, ``all`` for the
    full SPECint2000 list)."""
    raw = os.environ.get("REPRO_BENCH_BENCHMARKS", "")
    if not raw:
        return list(default if default is not None else DEFAULT_MIX)
    if raw.strip().lower() == "all":
        return list(SPECINT2000_NAMES)
    names = [n.strip() for n in raw.split(",") if n.strip()]
    for name in names:
        profile_for(name)  # validate early
    return names


def bench_l1_sizes(default: Optional[Sequence[int]] = None) -> List[int]:
    """L1 sizes for sweeps (env: ``REPRO_BENCH_SIZES``, comma-separated,
    suffixes ``K`` allowed)."""
    raw = os.environ.get("REPRO_BENCH_SIZES", "")
    if not raw:
        return list(default) if default is not None else [256, 1024, 4096, 16384, 65536]

    def parse(token: str) -> int:
        token = token.strip().upper()
        if token.endswith("KB"):
            return int(float(token[:-2]) * 1024)
        if token.endswith("K"):
            return int(float(token[:-1]) * 1024)
        if token.endswith("B"):
            return int(token[:-1])
        return int(token)

    return [parse(t) for t in raw.split(",") if t.strip()]


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
def run_single(
    config: SimulationConfig,
    benchmark: str,
    max_instructions: Optional[int] = None,
) -> SimulationResult:
    """Run one configuration on one benchmark."""
    workload = get_workload(benchmark)
    return Simulator(config, workload).run(max_instructions)


def run_benchmarks(
    config: SimulationConfig,
    benchmarks: Iterable[str],
    max_instructions: Optional[int] = None,
) -> List[SimulationResult]:
    """Run one configuration across several benchmarks."""
    return [run_single(config, name, max_instructions) for name in benchmarks]


def run_mix(
    config: SimulationConfig,
    benchmarks: Optional[Iterable[str]] = None,
    max_instructions: Optional[int] = None,
) -> Dict[str, object]:
    """Run a configuration on a benchmark mix and aggregate.

    Returns ``{"results": [...], "hmean_ipc": float}``.
    """
    names = list(benchmarks) if benchmarks is not None else list(DEFAULT_MIX)
    results = run_benchmarks(config, names, max_instructions)
    return {"results": results, "hmean_ipc": harmonic_mean_ipc(results)}


def sweep_l1_sizes(
    configs_by_size,
    benchmarks: Optional[Iterable[str]] = None,
    max_instructions: Optional[int] = None,
) -> Dict[int, Dict[str, object]]:
    """Run ``{size: config}`` (or ``{size: [configs]}``) over a benchmark mix.

    Returns ``{size: {label: {"results": [...], "hmean_ipc": float}}}``.
    """
    names = list(benchmarks) if benchmarks is not None else list(DEFAULT_MIX)
    out: Dict[int, Dict[str, object]] = {}
    for size, configs in configs_by_size.items():
        if isinstance(configs, SimulationConfig):
            configs = [configs]
        per_size: Dict[str, object] = {}
        for config in configs:
            per_size[config.derived_label()] = run_mix(
                config, names, max_instructions
            )
        out[size] = per_size
    return out
